"""Figure 3 — probability mass functions of the Sobel ED operations."""

from benchmarks._common import shared_setup, write_result
from repro.experiments.fig3_pmf import fig3_profiles, render_pmf_ascii


def test_fig3_pmf(benchmark):
    setup = shared_setup()
    profiles = benchmark.pedantic(
        fig3_profiles, args=(setup.images,), rounds=1, iterations=1
    )
    blocks = []
    for name, data in profiles.items():
        stats = data["stats"]
        blocks.append(
            f"{name} {data['signature']}: "
            f"operand correlation {stats['operand_correlation']:.3f}, "
            f"{stats['mass_within_diag_band']:.1%} of probability mass "
            f"within the diagonal band, support "
            f"{stats['support_fraction']:.2%} of the input grid\n"
            + render_pmf_ascii(data["pmf"], bins=24)
        )
    write_result("fig3_pmf", "\n\n".join(blocks))

    # The paper's qualitative observation: operand values are typically
    # very close (mass concentrated near the diagonal).
    for data in profiles.values():
        assert data["stats"]["operand_correlation"] > 0.8
