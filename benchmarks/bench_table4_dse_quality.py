"""Table 4 — front distance of the proposed algorithm vs random sampling."""

from benchmarks._common import shared_setup, sized, write_result
from repro.experiments.table4_dse import table4_distances
from repro.utils.tabulate import format_table


def test_table4_dse_quality(benchmark):
    setup = shared_setup()
    budgets = (
        (10**3, 10**4, 10**5) if sized(0, 1) else (10**3, 10**4)
    )
    result = benchmark.pedantic(
        table4_distances,
        args=(setup,),
        kwargs={
            "budgets": budgets,
            "n_train": sized(300, 1500),
            "n_test": sized(150, 1500),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r.algorithm,
            f"{r.evaluations:.0e}",
            r.pareto_size,
            f"{r.to_optimal_avg:.5f}",
            f"{r.to_optimal_max:.5f}",
            f"{r.from_optimal_avg:.5f}",
            f"{r.from_optimal_max:.5f}",
        ]
        for r in result.rows
    ]
    write_result(
        "table4_dse_quality",
        format_table(
            ["Algorithm", "#eval", "#Pareto", "to avg", "to max",
             "from avg", "from max"],
            rows,
            title=(
                "Table 4: distance to the optimal Pareto front "
                f"(optimal: {result.optimal_size} configs out of "
                f"{result.optimal_evaluations:.3g})"
            ),
        ),
    )

    by_key = {(r.algorithm, r.evaluations): r for r in result.rows}
    # Budgets are *exact* model-call counts since the DSE accounting
    # fix (the seed heuristic silently overspent its nominal budget by
    # the discarded batch tails, ~30x at this scale, which made the
    # old comparison unfair to random sampling).  The paper shape that
    # holds at honestly matched budgets: the heuristic always finds
    # more front members and lands closer to the optimal front
    # (to-optimal precision); covering the *whole* front
    # (from-optimal) additionally needs an adequate budget, so that is
    # asserted at the larger budget.
    for budget in budgets[:2]:
        proposed = by_key[("Proposed", budget)]
        sampled = by_key[("Random sampling", budget)]
        assert proposed.pareto_size > sampled.pareto_size
        assert proposed.to_optimal_avg < sampled.to_optimal_avg
    largest = budgets[:2][-1]
    assert (
        by_key[("Proposed", largest)].from_optimal_avg
        < by_key[("Random sampling", largest)].from_optimal_avg
    )
