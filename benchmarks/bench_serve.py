"""Serving-layer benchmark — coalescing, warm answers, clean shutdown.

Starts an in-process ``repro serve`` server on a fresh store and drives
it like N impatient clients:

1. **cold** — one job pays the full pipeline;
2. **coalesced** — N concurrent identical submissions while a pass is
   in flight must produce exactly one additional pipeline pass;
3. **warm** — a fresh server process (same store, empty memory cache)
   must answer from store-cached stages with zero synthesis and zero
   model refits, and a repeat submission must be a memory hit.

Asserted contract (also the PR's acceptance bar): N concurrent
identical submissions cost one engine pass; warm answers recompute
nothing; the server shuts down without leaking shared-memory segments.

Results land in ``results/serve.txt``; the machine-readable doc of each
run is appended to the ``BENCH_serve.json`` trajectory (a JSON array)
in the working tree.

Run ``python benchmarks/bench_serve.py --smoke`` for the tiny CI
variant (fewer clients, smaller budget).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import urllib.request
from pathlib import Path

from benchmarks._common import (
    bench_metrics,
    metrics_mark,
    timed,
    write_result,
)

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_serve.json")

WORKLOAD = "sobel"


def _smoke() -> bool:
    return os.environ.get("REPRO_SERVE_SMOKE", "0") not in (
        "0", "", "false",
    )


def _api(base, path, method="GET", body=None, key="sk-bench"):
    request = urllib.request.Request(
        base + path, method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Authorization": f"Bearer {key}"},
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def _run_job(base, payload, wait=600):
    job = _api(base, "/v1/jobs", "POST", payload)["job"]
    return _api(base, f"/v1/jobs/{job['job_id']}?wait={wait}")["job"]


def _make_server(store_dir):
    from repro.serve import (
        ApiKeyRegistry,
        Coordinator,
        ServeApp,
        ServerThread,
    )
    from repro.store import ArtifactStore

    app = ServeApp(
        Coordinator(store=ArtifactStore(store_dir)),
        ApiKeyRegistry("bench=sk-bench"),
    )
    return ServerThread(app).start()


def test_serve_roundtrip():
    smoke = _smoke()
    clients = 4 if smoke else 8
    payload = {
        "workload": WORKLOAD,
        "scale": 0.001 if smoke else 0.002,
        "images": 1 if smoke else 2,
        "train": 12 if smoke else 24,
        "evals": 300 if smoke else 2_000,
        "quality_target": 0.8,
    }

    with tempfile.TemporaryDirectory(
        prefix="repro-bench-serve-"
    ) as tmp:
        server = _make_server(tmp)
        base = server.base_url
        mark = metrics_mark()

        # 1. cold: one job pays the pipeline
        with timed("serve.cold") as t:
            cold = _run_job(base, payload)
        cold_s = t.seconds
        assert cold["status"] == "done", cold
        assert cold["source"] == "cold", cold["source"]

        # 2. coalesced: N racing submissions of a *new* computation
        race = dict(payload, seed=1)
        jobs = []

        def submit():
            jobs.append(_run_job(base, race))

        threads = [
            threading.Thread(target=submit) for _ in range(clients)
        ]
        with timed("serve.race") as t:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        race_s = t.seconds
        assert all(j["status"] == "done" for j in jobs)
        sources = sorted(j["source"] for j in jobs)
        stats = _api(base, "/v1/stats")["stats"]
        # the acceptance bar: one pass for the whole crowd
        assert stats["pipeline_passes"] == 2, stats
        assert sources.count("coalesced") == clients - 1, sources
        fronts = {json.dumps(j["result"]["front"]) for j in jobs}
        assert len(fronts) == 1  # every client got the same answer

        # 3a. memory-warm repeat on the live server
        with timed("serve.memory") as t:
            warm_memory = _run_job(base, payload)
        memory_s = t.seconds
        assert warm_memory["source"] == "memory"
        assert warm_memory["result"]["front"] == cold["result"]["front"]

        ledger_runs = _api(base, "/v1/ledger")["runs"]
        assert len(ledger_runs) == clients + 2
        server.stop()

        # 3b. store-warm on a fresh server (empty memory cache)
        server = _make_server(tmp)
        base = server.base_url
        with timed("serve.store") as t:
            warm_store = _run_job(base, payload)
        store_s = t.seconds
        assert warm_store["source"] == "store", warm_store["source"]
        cache = warm_store["result"]["stage_cache"]
        assert set(cache.values()) == {"hit"}, cache
        engine_stats = warm_store["result"]["engine_stats"]
        assert engine_stats["synth_misses"] == 0, engine_stats
        assert engine_stats["model_fits"] == 0, engine_stats
        assert (warm_store["result"]["front"]
                == cold["result"]["front"])
        server.stop()

        # clean shutdown: no shared-memory segments left behind
        from repro.core.runtime import get_runtime

        segments = get_runtime().tracked_segments()
        assert segments == [], segments

    speedup_memory = cold_s / max(memory_s, 1e-9)
    speedup_store = cold_s / max(store_s, 1e-9)
    lines = [
        f"workload {WORKLOAD}: cold {cold_s:.2f}s",
        f"{clients} concurrent clients: 1 pass, {race_s:.2f}s wall",
        f"memory-warm repeat: {memory_s*1e3:.1f} ms "
        f"({speedup_memory:.0f}x)",
        f"store-warm (fresh server): {store_s:.2f}s "
        f"({speedup_store:.1f}x)",
        "no leaked shm segments after shutdown",
    ]
    write_result(
        "serve",
        "\n".join(lines) + f"\n({'smoke' if smoke else 'full'} mode)",
    )

    doc = {
        "mode": "smoke" if smoke else "full",
        "workload": WORKLOAD,
        "clients": clients,
        "cold_seconds": round(cold_s, 3),
        "race_seconds": round(race_s, 3),
        "memory_seconds": round(memory_s, 4),
        "store_seconds": round(store_s, 3),
        "memory_speedup": round(speedup_memory, 1),
        "store_speedup": round(speedup_store, 2),
        "pipeline_passes": stats["pipeline_passes"],
        "coalesced": stats["coalesced"],
        "ledger_runs": len(ledger_runs),
        "metrics": bench_metrics(mark),
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            trajectory = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")

    # a warm answer must be dramatically cheaper than the cold pass
    assert speedup_memory >= 10, (cold_s, memory_s)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-budget variant for CI",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_SERVE_SMOKE"] = "1"
    test_serve_roundtrip()
    print("bench_serve: OK")
