"""§4.2 — model estimation vs full analysis speed (paper: 0.01 s vs 10 s)."""

from benchmarks._common import shared_setup, sized, write_result
from repro.experiments.speedup import estimation_speedup


def test_estimation_speedup(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        estimation_speedup,
        args=(setup,),
        kwargs={
            "n_analysis": sized(10, 30),
            "n_estimates": sized(2000, 10000),
            "n_train": sized(100, 500),
            "n_kernels": sized(5, 50),
            "n_images": sized(2, 4),
        },
        rounds=1,
        iterations=1,
    )
    write_result(
        "estimation_speedup",
        (
            "Generic GF, per configuration:\n"
            f"  full analysis (simulate + synthesise): "
            f"{result.analysis_seconds_per_config * 1e3:9.2f} ms\n"
            f"  model estimate:                        "
            f"{result.estimate_seconds_per_config * 1e3:9.4f} ms\n"
            f"  speed-up: {result.speedup:,.0f}x "
            "(paper reports ~1000x: 10 s vs 0.01 s)"
        ),
    )
    # the paper's three-orders-of-magnitude claim
    assert result.speedup > 1000
