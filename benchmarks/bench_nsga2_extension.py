"""Extension bench: NSGA-II vs Algorithm 1 at equal evaluation budgets.

Not a paper artefact — the paper's Algorithm 1 is a hill climber; NSGA-II
is the natural population-based alternative.  Both explore the same
reduced Sobel space with the same models; fronts are compared against
the exhaustive optimum, like Table 4.
"""

import numpy as np

from benchmarks._common import shared_setup, sized, write_result
from repro.accelerators import SobelEdgeDetector, profile_accelerator
from repro.core import (
    AcceleratorEvaluator,
    exhaustive_search,
    heuristic_pareto_construction,
    reduce_library,
)
from repro.core.modeling import (
    build_training_set,
    fit_engines,
    select_best_model,
)
from repro.core.nsga2 import nsga2_search
from repro.core.pareto import front_distances
from repro.utils.tabulate import format_table


def _run():
    setup = shared_setup()
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(
        accelerator, setup.images, rng=setup.seed
    )
    space = reduce_library(accelerator, setup.library, profiles)
    evaluator = AcceleratorEvaluator(accelerator, setup.images)
    train = build_training_set(
        space, evaluator, sized(250, 1500), rng=setup.seed
    )
    test = build_training_set(
        space, evaluator, sized(120, 1500), rng=setup.seed + 1
    )
    qor = select_best_model(
        fit_engines(space, train, test, target="qor",
                    engines=["Random Forest"], seed=setup.seed)
    ).model
    hw = select_best_model(
        fit_engines(space, train, test, target="area",
                    engines=["Random Forest"], seed=setup.seed)
    ).model
    optimal = exhaustive_search(space, qor, hw)
    low = optimal.points.min(axis=0)
    high = optimal.points.max(axis=0)

    budget = sized(10_000, 100_000)
    alg1 = heuristic_pareto_construction(
        space, qor, hw, max_evaluations=budget, rng=setup.seed
    )
    pop = 100
    nsga = nsga2_search(
        space, qor, hw, population_size=pop,
        generations=budget // pop - 1, rng=setup.seed,
    )
    rows = []
    for name, result in (("Algorithm 1", alg1), ("NSGA-II", nsga)):
        stats = front_distances(
            result.points, optimal.points, bounds=(low, high)
        )
        rows.append(
            [name, result.evaluations, len(result),
             f"{stats['to_optimal_avg']:.5f}",
             f"{stats['from_optimal_avg']:.5f}",
             f"{stats['from_optimal_max']:.5f}"]
        )
    return rows


def test_nsga2_extension(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    write_result(
        "nsga2_extension",
        format_table(
            ["explorer", "#eval", "#Pareto", "to avg", "from avg",
             "from max"],
            rows,
            title="Extension: NSGA-II vs Algorithm 1 "
                  "(same models, same budget)",
        ),
    )
    # both explorers must land close to the optimal front
    for row in rows:
        assert float(row[4]) < 0.1
