"""Evaluation-engine throughput — interpreted vs compiled vs parallel.

Measures configurations/second of the *real* QoR evaluation path on the
Sobel accelerator in three stages:

* ``interpreted`` — the seed path: per-(image x scenario) dict
  interpretation of the dataflow graph plus a scalar SSIM per run;
* ``compiled``    — the engine: one ``GraphProgram`` pass over the
  stacked run batch plus batched SSIM with precomputed golden stats;
* ``parallel``    — ``EvaluationEngine.evaluate_many`` (full analysis,
  simulation + synthesis) with a 2-process pool vs in-process.

The engine targets the paper's many-runs regime (many benchmark images
and/or kernel scenarios per evaluation), where per-run interpretation and
per-call SSIM overheads dominate; the benchmark geometry — many small
tiles — reflects that.  Compiled results are asserted bit-identical to
the interpreter on randomised inputs and assignments before timing.

The *generation-batch* section measures the configuration-axis batched
``evaluate_many`` against the per-config loop on NSGA-II-shaped
generations (C in {8, 32, 128} offspring built with
:func:`repro.core.nsga2.make_offspring`): results are asserted
byte-identical, the C = 32 speed-up must stay >= 2x, and the
machine-readable doc of each run is appended to the
``BENCH_engine.json`` trajectory (a JSON array) in the working tree.

Run ``python benchmarks/bench_engine_throughput.py --smoke`` (or set
``REPRO_ENGINE_SMOKE=1``) for the CI variant, which runs only the
generation-batch section; the library is store-cached
(``REPRO_STORE_DIR``), so a warmed store skips characterisation.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_engine_throughput.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks._common import (
    bench_metrics,
    build_engine,
    metrics_mark,
    shared_setup,
    sized,
    throughput,
    write_result,
)
from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.engine import NO_CONFIG_BATCH_ENV
from repro.core.nsga2 import make_offspring
from repro.core.preprocessing import reduce_library
from repro.imaging.datasets import benchmark_images
from repro.imaging.metrics import ssim

#: Tile geometry of the throughput runs (many small runs per evaluation).
TILE_SHAPE = (24, 32)

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_engine.json")

#: Generation sizes of the configuration-axis batched section.
GENERATION_SIZES = (8, 32, 128)

#: Acceptance floor: batched evaluate_many speed-up at C = 32.
SPEEDUP_FLOOR = 2.0


def _smoke() -> bool:
    return os.environ.get("REPRO_ENGINE_SMOKE", "0") not in (
        "0", "", "false",
    )


def _assert_bit_identical(space, graph, rng) -> None:
    """Compiled execution must match the interpreter bit for bit."""
    program = graph.compile()
    for _ in range(8):
        inputs = {
            node.name: rng.integers(
                0, 1 << (2 * node.width), size=257
            )
            for node in graph.inputs()
        }
        config = space.random_configuration(rng)
        impls = space.assignment_callables(config)
        for assignment in (None, impls):
            expected = graph.evaluate_interpreted(inputs, assignment)
            got = program.execute(inputs, assignment)
            assert np.array_equal(expected, got)


def test_engine_throughput():
    setup = shared_setup()
    sobel = SobelEdgeDetector()
    graph = sobel.graph
    images = benchmark_images(sized(16, 32), shape=TILE_SHAPE)
    profiles = profile_accelerator(sobel, images, rng=setup.seed)
    space = reduce_library(sobel, setup.library, profiles)
    configs = space.random_configurations(
        sized(20, 60), rng=setup.seed + 1
    )

    _assert_bit_identical(
        space, graph, np.random.default_rng(setup.seed + 2)
    )

    # Seed path: cached per-run inputs/goldens, interpreted evaluation.
    runs = []
    for image in images:
        inputs = sobel.window_inputs(image)
        golden = graph.evaluate_interpreted(inputs).reshape(image.shape)
        runs.append((inputs, golden))

    def interpreted_qor(config) -> float:
        impls = space.assignment_callables(config)
        total = 0.0
        for inputs, golden in runs:
            out = graph.evaluate_interpreted(inputs, impls).reshape(
                golden.shape
            )
            total += ssim(golden.astype(float), out.astype(float))
        return total / len(runs)

    engine = build_engine(sobel, images)

    def compiled_qor(config) -> float:
        return engine.qor(space.assignment_callables(config))

    for config in configs[:3]:
        assert abs(interpreted_qor(config) - compiled_qor(config)) < 1e-9

    interp_cps = throughput(interpreted_qor, configs)
    compiled_cps = throughput(compiled_qor, configs)
    qor_speedup = compiled_cps / interp_cps

    # Full analysis (simulation + synthesis): serial vs 2-process pool.
    full_configs = configs[: sized(10, 30)]
    serial_engine = build_engine(sobel, images, workers=None)
    start = time.perf_counter()
    serial_results = serial_engine.evaluate_many(space, full_configs)
    serial_cps = len(full_configs) / (time.perf_counter() - start)
    parallel_engine = build_engine(sobel, images, workers=2)
    start = time.perf_counter()
    parallel_results = parallel_engine.evaluate_many(space, full_configs)
    parallel_cps = len(full_configs) / (time.perf_counter() - start)
    assert parallel_results == serial_results

    write_result(
        "engine_throughput",
        (
            f"Sobel, {len(images)} runs of {TILE_SHAPE[0]}x"
            f"{TILE_SHAPE[1]} px, {len(configs)} configurations\n"
            "QoR evaluation (single process):\n"
            f"  interpreted (seed):    {interp_cps:8.1f} configs/s\n"
            f"  compiled + batched:    {compiled_cps:8.1f} configs/s\n"
            f"  speed-up:              {qor_speedup:8.2f}x\n"
            f"full analysis ({len(full_configs)} configs):\n"
            f"  serial:                {serial_cps:8.1f} configs/s\n"
            f"  2 workers:             {parallel_cps:8.1f} configs/s "
            f"({os.cpu_count()} CPU(s) available)"
        ),
    )
    assert qor_speedup >= 3.0
    # The parallel row is informational: whether a 2-process pool beats
    # the in-process path depends on available cores and pool start-up
    # cost relative to this (deliberately small) workload.


def _best_of(repeats, fn):
    """Best (minimum) wall seconds of ``repeats`` calls, plus last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_generation_batch():
    """Batched vs per-config ``evaluate_many`` on NSGA-II generations."""
    setup = shared_setup()
    sobel = SobelEdgeDetector()
    # The search-loop regime the batched pass targets: a small stacked
    # run batch re-evaluated for every offspring of every generation,
    # where per-config dispatch overhead dominates the arithmetic.
    images = benchmark_images(2, shape=TILE_SHAPE)
    profiles = profile_accelerator(sobel, images, rng=setup.seed)
    space = reduce_library(sobel, setup.library, profiles)
    engine = build_engine(sobel, images)
    rng = np.random.default_rng(setup.seed + 3)
    mark = metrics_mark()

    def generation(count):
        population = np.stack(
            [space.random_configuration(rng) for _ in range(count)]
        ).astype(np.int64)
        rank = np.zeros(count, dtype=np.int64)
        crowd = np.full(count, np.inf)
        children = make_offspring(space, population, rank, crowd, rng)
        return [tuple(int(g) for g in row) for row in children]

    batches = {c: generation(c) for c in GENERATION_SIZES}

    # Warm synthesis memo + stacked LUTs so the timings below measure
    # the steady-state search loop, not one-time characterisation.
    for configs in batches.values():
        engine.evaluate_many(space, configs)

    repeats = 3
    rows, speedups = [], {}
    saved = os.environ.get(NO_CONFIG_BATCH_ENV)
    for count, configs in sorted(batches.items()):
        try:
            os.environ[NO_CONFIG_BATCH_ENV] = "1"
            per_s, per_results = _best_of(
                repeats, lambda: engine.evaluate_many(space, configs)
            )
        finally:
            if saved is None:
                os.environ.pop(NO_CONFIG_BATCH_ENV, None)
            else:
                os.environ[NO_CONFIG_BATCH_ENV] = saved
        batch_s, batch_results = _best_of(
            repeats, lambda: engine.evaluate_many(space, configs)
        )
        # Byte-identity of the whole generation, not a tolerance check.
        assert batch_results == per_results
        speedups[count] = per_s / batch_s if batch_s > 0 else float(
            "inf"
        )
        rows.append(
            f"  C = {count:4d}: per-config {per_s * 1e3:8.2f} ms   "
            f"batched {batch_s * 1e3:8.2f} ms   "
            f"speed-up {speedups[count]:6.2f}x   identical"
        )

    metrics = bench_metrics(mark)
    config_batches = int(
        metrics.get("counters", {}).get("engine.config_batches", 0)
    )
    write_result(
        "engine_generation_batch",
        (
            f"Sobel, {len(images)} runs of {TILE_SHAPE[0]}x"
            f"{TILE_SHAPE[1]} px, NSGA-II generations "
            f"(best of {repeats}, warm synthesis)\n"
            + "\n".join(rows) + "\n"
            f"configuration-axis batches executed: {config_batches}\n"
            f"acceptance floor at C = 32: {SPEEDUP_FLOOR:.1f}x"
        ),
    )

    doc = {
        "version": 1,
        "bench": "engine_generation_batch",
        "mode": "smoke" if _smoke() else "full",
        "tile_shape": list(TILE_SHAPE),
        "runs": len(images),
        "repeats": repeats,
        "generation_sizes": list(GENERATION_SIZES),
        "speedups": {str(c): round(s, 4) for c, s in speedups.items()},
        "speedup_floor": SPEEDUP_FLOOR,
        "identical": True,
        "config_batches": config_batches,
        "metrics": metrics,
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            if isinstance(previous, list):
                trajectory = previous
        except (OSError, json.JSONDecodeError):
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(
        json.dumps(trajectory, sort_keys=True, indent=2) + "\n"
    )

    # Acceptance bar: the batched pass actually ran, and a 32-config
    # generation is at least 2x faster than the per-config loop.
    assert config_batches > 0
    assert speedups[32] >= SPEEDUP_FLOOR


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI variant: generation-batch section only",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_ENGINE_SMOKE"] = "1"
    if not _smoke():
        test_engine_throughput()
    test_generation_batch()
    print("bench_engine_throughput: OK")
