"""Evaluation-engine throughput — interpreted vs compiled vs parallel.

Measures configurations/second of the *real* QoR evaluation path on the
Sobel accelerator in three stages:

* ``interpreted`` — the seed path: per-(image x scenario) dict
  interpretation of the dataflow graph plus a scalar SSIM per run;
* ``compiled``    — the engine: one ``GraphProgram`` pass over the
  stacked run batch plus batched SSIM with precomputed golden stats;
* ``parallel``    — ``EvaluationEngine.evaluate_many`` (full analysis,
  simulation + synthesis) with a 2-process pool vs in-process.

The engine targets the paper's many-runs regime (many benchmark images
and/or kernel scenarios per evaluation), where per-run interpretation and
per-call SSIM overheads dominate; the benchmark geometry — many small
tiles — reflects that.  Compiled results are asserted bit-identical to
the interpreter on randomised inputs and assignments before timing.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._common import (
    build_engine,
    shared_setup,
    sized,
    throughput,
    write_result,
)
from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.preprocessing import reduce_library
from repro.imaging.datasets import benchmark_images
from repro.imaging.metrics import ssim

#: Tile geometry of the throughput runs (many small runs per evaluation).
TILE_SHAPE = (24, 32)


def _assert_bit_identical(space, graph, rng) -> None:
    """Compiled execution must match the interpreter bit for bit."""
    program = graph.compile()
    for _ in range(8):
        inputs = {
            node.name: rng.integers(
                0, 1 << (2 * node.width), size=257
            )
            for node in graph.inputs()
        }
        config = space.random_configuration(rng)
        impls = space.assignment_callables(config)
        for assignment in (None, impls):
            expected = graph.evaluate_interpreted(inputs, assignment)
            got = program.execute(inputs, assignment)
            assert np.array_equal(expected, got)


def test_engine_throughput():
    setup = shared_setup()
    sobel = SobelEdgeDetector()
    graph = sobel.graph
    images = benchmark_images(sized(16, 32), shape=TILE_SHAPE)
    profiles = profile_accelerator(sobel, images, rng=setup.seed)
    space = reduce_library(sobel, setup.library, profiles)
    configs = space.random_configurations(
        sized(20, 60), rng=setup.seed + 1
    )

    _assert_bit_identical(
        space, graph, np.random.default_rng(setup.seed + 2)
    )

    # Seed path: cached per-run inputs/goldens, interpreted evaluation.
    runs = []
    for image in images:
        inputs = sobel.window_inputs(image)
        golden = graph.evaluate_interpreted(inputs).reshape(image.shape)
        runs.append((inputs, golden))

    def interpreted_qor(config) -> float:
        impls = space.assignment_callables(config)
        total = 0.0
        for inputs, golden in runs:
            out = graph.evaluate_interpreted(inputs, impls).reshape(
                golden.shape
            )
            total += ssim(golden.astype(float), out.astype(float))
        return total / len(runs)

    engine = build_engine(sobel, images)

    def compiled_qor(config) -> float:
        return engine.qor(space.assignment_callables(config))

    for config in configs[:3]:
        assert abs(interpreted_qor(config) - compiled_qor(config)) < 1e-9

    interp_cps = throughput(interpreted_qor, configs)
    compiled_cps = throughput(compiled_qor, configs)
    qor_speedup = compiled_cps / interp_cps

    # Full analysis (simulation + synthesis): serial vs 2-process pool.
    full_configs = configs[: sized(10, 30)]
    serial_engine = build_engine(sobel, images, workers=None)
    start = time.perf_counter()
    serial_results = serial_engine.evaluate_many(space, full_configs)
    serial_cps = len(full_configs) / (time.perf_counter() - start)
    parallel_engine = build_engine(sobel, images, workers=2)
    start = time.perf_counter()
    parallel_results = parallel_engine.evaluate_many(space, full_configs)
    parallel_cps = len(full_configs) / (time.perf_counter() - start)
    assert parallel_results == serial_results

    write_result(
        "engine_throughput",
        (
            f"Sobel, {len(images)} runs of {TILE_SHAPE[0]}x"
            f"{TILE_SHAPE[1]} px, {len(configs)} configurations\n"
            "QoR evaluation (single process):\n"
            f"  interpreted (seed):    {interp_cps:8.1f} configs/s\n"
            f"  compiled + batched:    {compiled_cps:8.1f} configs/s\n"
            f"  speed-up:              {qor_speedup:8.2f}x\n"
            f"full analysis ({len(full_configs)} configs):\n"
            f"  serial:                {serial_cps:8.1f} configs/s\n"
            f"  2 workers:             {parallel_cps:8.1f} configs/s "
            f"({os.cpu_count()} CPU(s) available)"
        ),
    )
    assert qor_speedup >= 3.0
    # The parallel row is informational: whether a 2-process pool beats
    # the in-process path depends on available cores and pool start-up
    # cost relative to this (deliberately small) workload.
