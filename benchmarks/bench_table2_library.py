"""Table 2 — approximate circuits included in the library."""

from benchmarks._common import shared_setup, write_result
from repro.experiments.table2_library import table2_counts
from repro.utils.tabulate import format_table


def test_table2_library(benchmark):
    setup = shared_setup()
    counts = benchmark.pedantic(
        table2_counts, args=(setup.library,), rounds=1, iterations=1
    )
    rows = [
        [f"{kind} {width}-bit", data["generated"], data["paper"],
         f"{data['fraction']:.1%}"]
        for (kind, width), data in counts.items()
    ]
    write_result(
        "table2_library",
        format_table(
            ["Operation", "# generated", "# paper", "fraction"],
            rows,
            title="Table 2: library size per operation "
                  "(generated at the run's scale vs paper)",
        ),
    )
    assert all(d["generated"] > 0 for d in counts.values())
