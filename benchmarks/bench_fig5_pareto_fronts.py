"""Figure 5 — Pareto fronts: proposed vs random sampling vs uniform."""

from benchmarks._common import shared_setup, sized, write_result
from repro.core.pipeline import AutoAxConfig
from repro.experiments.fig5_fronts import fig5_fronts
from repro.experiments.table5_space import default_cases
from repro.utils.tabulate import format_table


def test_fig5_pareto_fronts(benchmark):
    setup = shared_setup()
    config = AutoAxConfig(
        n_train=sized(200, 4000),
        n_test=sized(100, 1000),
        max_evaluations=sized(20_000, 10**6),
        seed=setup.seed,
    )
    cases = default_cases(
        setup, n_kernels=sized(5, 50), n_gf_images=sized(2, 4)
    )
    results = benchmark.pedantic(
        fig5_fronts,
        args=(setup,),
        kwargs={"config": config, "cases": cases},
        rounds=1,
        iterations=1,
    )
    blocks = []
    for case in results:
        rows = []
        for name, front in case.fronts.items():
            ssim = front.points[:, 0]
            area = front.points[:, 1]
            rows.append(
                [
                    name,
                    len(front.points),
                    front.evaluated,
                    f"{front.hypervolume:.1f}",
                    f"[{ssim.min():.3f}, {ssim.max():.3f}]",
                    f"[{area.min():.0f}, {area.max():.0f}]",
                ]
            )
        blocks.append(
            format_table(
                ["method", "#front", "#analysed", "hypervolume",
                 "SSIM range", "area range"],
                rows,
                title=f"Fig. 5 — {case.problem}",
            )
        )
        proposed = case.fronts["proposed"]
        series = sorted(
            zip(proposed.points[:, 1], proposed.points[:, 0],
                proposed.energy)
        )
        lines = ["  area        SSIM     energy   (proposed front)"]
        step = max(1, len(series) // 12)
        for area, ssim, energy in series[::step]:
            lines.append(f"  {area:9.1f}  {ssim:.4f}  {energy:9.1f}")
        blocks.append("\n".join(lines))
    write_result("fig5_pareto_fronts", "\n\n".join(blocks))

    for case in results:
        proposed = case.fronts["proposed"]
        uniform = case.fronts["uniform"]
        # the automated methodology always finds a denser front than the
        # manual uniform-selection heuristic
        assert len(proposed.points) > len(uniform.points)
    # ...and for the filters (many operations) it clearly dominates both
    # baselines on hypervolume, the paper's headline comparison
    gf_cases = [c for c in results if "GF" in c.problem]
    better = sum(
        c.fronts["proposed"].hypervolume
        >= max(c.fronts["random"].hypervolume,
               c.fronts["uniform"].hypervolume)
        for c in gf_cases
    )
    assert better >= 1
