"""Store-backend benchmark — cold/warm pipeline cost per topology.

Runs the same tiny workload pipeline against all three store backends:

1. **sqlite**  — the default single-tree store;
2. **sharded** — N hash-sharded subtrees under one root;
3. **remote**  — an HTTP store served by an in-process ``repro serve``.

For each backend the pipeline runs twice on a fresh root: the **cold**
pass pays synthesis and model fitting, the **warm** pass must answer
entirely from the store — zero synthesis misses, zero model refits,
every stage a cache hit, byte-identical front.  That is the PR's
acceptance bar: switching the backend changes where bytes live, never
what the pipeline computes or recomputes.

Results land in ``results/store_backends.txt``; the machine-readable
doc of each run is appended to the ``BENCH_store_backends.json``
trajectory (a JSON array) in the working tree.

Run ``python benchmarks/bench_store_backends.py --smoke`` for the tiny
CI variant.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from benchmarks._common import (
    bench_metrics,
    metrics_mark,
    timed,
    write_result,
)

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_store_backends.json")

WORKLOAD = "sobel"


def _smoke() -> bool:
    return os.environ.get("REPRO_STORE_SMOKE", "0") not in (
        "0", "", "false",
    )


def _pipeline(store, smoke):
    from repro.experiments.setup import run_workload_pipeline

    _, result = run_workload_pipeline(
        WORKLOAD,
        scale=0.001 if smoke else 0.002,
        n_images=1 if smoke else 2,
        train=12 if smoke else 24,
        evals=300 if smoke else 2_000,
        seed=0,
        store=store,
    )
    return result


def _assert_warm(name, cold, warm):
    assert set(warm.stage_cache.values()) == {"hit"}, (
        name, warm.stage_cache,
    )
    stats = warm.engine_stats
    assert stats.get("synth_misses", 0) == 0, (name, stats)
    assert stats.get("model_fits", 0) == 0, (name, stats)
    assert warm.final_configs == cold.final_configs, name
    assert (warm.final_points.tolist()
            == cold.final_points.tolist()), name


def _backend_cases(tmp):
    """Yield ``(name, store, cleanup)`` for the three topologies."""
    from repro.serve import (
        ApiKeyRegistry,
        Coordinator,
        ServeApp,
        ServerThread,
    )
    from repro.store import ArtifactStore, ShardedBackend, open_store

    yield (
        "sqlite",
        ArtifactStore(Path(tmp) / "sqlite"),
        lambda: None,
    )
    yield (
        "sharded",
        ArtifactStore(
            backend=ShardedBackend(Path(tmp) / "sharded", shards=4)
        ),
        lambda: None,
    )
    server = ServerThread(
        ServeApp(
            Coordinator(store=ArtifactStore(Path(tmp) / "served")),
            ApiKeyRegistry(None),
        )
    ).start()
    yield "remote", open_store(server.base_url), server.stop


def test_store_backends():
    smoke = _smoke()
    mark = metrics_mark()
    rows = []

    with tempfile.TemporaryDirectory(
        prefix="repro-bench-store-"
    ) as tmp:
        for name, store, cleanup in _backend_cases(tmp):
            try:
                with timed(f"store.{name}.cold") as t:
                    cold = _pipeline(store, smoke)
                cold_s = t.seconds
                with timed(f"store.{name}.warm") as t:
                    warm = _pipeline(store, smoke)
                warm_s = t.seconds
                _assert_warm(name, cold, warm)
                rows.append(
                    {
                        "backend": name,
                        "uri_scheme": store.backend.scheme,
                        "cold_seconds": round(cold_s, 3),
                        "warm_seconds": round(warm_s, 3),
                        "speedup": round(cold_s / max(warm_s, 1e-9),
                                         1),
                    }
                )
            finally:
                cleanup()

    lines = [
        f"{row['backend']:>8}: cold {row['cold_seconds']:.2f}s, "
        f"warm {row['warm_seconds']:.2f}s "
        f"({row['speedup']:.1f}x, 0 synth misses, 0 refits)"
        for row in rows
    ]
    write_result(
        "store_backends",
        "\n".join(lines)
        + f"\n({'smoke' if smoke else 'full'} mode)",
    )

    doc = {
        "mode": "smoke" if smoke else "full",
        "workload": WORKLOAD,
        "backends": rows,
        "metrics": bench_metrics(mark),
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            trajectory = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")

    # the warm pass must be much cheaper than the cold one everywhere
    for row in rows:
        assert row["speedup"] >= 2, row


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-budget variant for CI",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_STORE_SMOKE"] = "1"
    test_store_backends()
    print("bench_store_backends: OK")
