"""Shared infrastructure of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
experiment setup (characterised library + benchmark images) is built once
per session and cached on disk; results are printed and archived under
``results/``.

Environment knobs:

* ``REPRO_SCALE``       — library scale relative to Table 2 (default 0.02;
                          1.0 regenerates the paper-size library).
* ``REPRO_PAPER_SCALE`` — set to 1 to run paper-size experiment settings
                          (1500/1500 training configurations, 10**6 DSE
                          evaluations, 384x256 images).  Expect hours.
* ``REPRO_STORE_DIR``   — persistent experiment-store root (library
                          cache, stage artifacts, run ledger; default
                          ``.repro-store``).
* ``REPRO_CACHE_DIR``   — legacy cache root, honoured as the store
                          fallback; blank values are rejected.
* ``REPRO_WORKERS``     — worker processes for real evaluation (default:
                          in-process; picked up by the evaluation engine).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.setup import (
    DEFAULT_SHAPE,
    PAPER_SHAPE,
    ExperimentSetup,
    build_engine,
    default_setup,
    experiment_store,
)
from repro.telemetry import get_metrics

__all__ = [
    "RESULTS_DIR",
    "paper_scale",
    "shared_setup",
    "sized",
    "write_result",
    "build_engine",
    "experiment_store",
    "throughput",
    "timed",
    "metrics_mark",
    "bench_metrics",
]

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))

_SETUP: Optional[ExperimentSetup] = None


def paper_scale() -> bool:
    """True when paper-size experiment settings are requested."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false")


def shared_setup() -> ExperimentSetup:
    """Session-cached experiment setup shared by all benchmarks."""
    global _SETUP
    if _SETUP is None:
        if paper_scale():
            _SETUP = default_setup(
                n_images=24, image_shape=PAPER_SHAPE
            )
        else:
            _SETUP = default_setup(n_images=4, image_shape=DEFAULT_SHAPE)
    return _SETUP


def sized(default: int, paper: int) -> int:
    """Pick the experiment size for the current scale mode."""
    return paper if paper_scale() else default


def write_result(name: str, text: str) -> None:
    """Print a result block and archive it under ``results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


class timed:
    """Time one block on the monotonic clock, into the metrics registry.

    ``with timed("cold") as t: ...`` leaves the elapsed wall seconds in
    ``t.seconds`` and records the same value as a
    ``bench.<name>_seconds`` histogram observation, so the telemetry
    snapshot attached to every ``BENCH_*.json`` doc carries each
    measured phase alongside the subsystem counters it triggered.
    """

    __slots__ = ("name", "seconds", "_start")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
        get_metrics().observe(
            f"bench.{self.name}_seconds", self.seconds
        )


def metrics_mark() -> Dict:
    """Counter checkpoint; pass to :func:`bench_metrics` to diff."""
    return get_metrics().mark()


def bench_metrics(mark: Optional[Dict] = None) -> Dict:
    """The telemetry ``metrics`` sub-object of a ``BENCH_*.json`` doc.

    Counters are diffed against ``mark`` (when given) so the doc only
    reports what the benchmark itself did; histograms are absolute.
    """
    return get_metrics().snapshot(since=mark)


def throughput(fn: Callable[[object], object], items) -> float:
    """Apply ``fn`` to every item and return items/second."""
    items = list(items)
    with timed("throughput") as t:
        for item in items:
            fn(item)
    return len(items) / t.seconds if t.seconds > 0 else float("inf")
