"""Search-layer benchmark — parallel portfolio vs the serial hill climber.

Both contenders get the *same exact* model-evaluation budget per seed
(metered by :class:`~repro.core.budget.EvaluationBudget`, so no
discarded batch tail goes uncounted) and are scored by the dominated
hypervolume of their final fronts under a per-seed joint reference
point.  A single trajectory is high-variance — the portfolio's value is
precisely that it hedges a hill climber that rutted early with
independent islands and migration — so the contest runs over several
seeds and compares *mean* hypervolume.  Asserted contract (also the
PR's acceptance bar): every run's evaluation count equals the requested
budget exactly, and the portfolio's mean front hypervolume at equal
budget beats the serial hill climber's.

Results land in ``results/search_portfolio.txt``; the machine-readable
doc of each run is appended to the ``BENCH_search.json`` trajectory (a
JSON array) in the working tree.

Run ``python benchmarks/bench_search.py --smoke`` (or set
``REPRO_SEARCH_SMOKE=1``) for the tiny CI variant; the library is
store-cached (``REPRO_STORE_DIR``), so a warmed store skips the
characterisation cost entirely.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_search.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks._common import (
    bench_metrics,
    metrics_mark,
    timed,
    write_result,
)
from repro.accelerators.profiler import profile_accelerator
from repro.core.budget import EvaluationBudget
from repro.core.pareto import hypervolume_2d
from repro.core.preprocessing import reduce_library
from repro.experiments.setup import (
    build_workload_engine,
    fit_search_models,
    workload_setup,
)
from repro.search import HillClimbStrategy, PortfolioRunner

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_search.json")

WORKLOAD = "sobel"
STRATEGIES = ("hill", "random", "nsga2:population_size=24")


def _smoke() -> bool:
    return os.environ.get("REPRO_SEARCH_SMOKE", "0") not in (
        "0", "", "false",
    )


def _minimised(points: np.ndarray) -> np.ndarray:
    return np.stack([-points[:, 0], points[:, 1]], axis=1)


def _build_models(scale: float):
    setup = workload_setup(
        WORKLOAD, scale=scale, n_images=2, image_shape=(48, 64), seed=0,
    )
    profiles = profile_accelerator(
        setup.accelerator, setup.images, rng=0
    )
    space = reduce_library(setup.accelerator, setup.library, profiles)
    engine = build_workload_engine(setup)
    qor_model, hw_model = fit_search_models(
        space, engine, 40, 20, engines=("K-Neighbors",), seed=0,
    )
    return space, qor_model, hw_model


def test_search_portfolio():
    smoke = _smoke()
    budget = 500 if smoke else 800
    seeds = range(3) if smoke else range(8)
    space, qor_model, hw_model = _build_models(
        0.02 if smoke else 0.05
    )
    workers = min(4, os.cpu_count() or 1)
    mark = metrics_mark()

    hv_serial_all, hv_portfolio_all, rows = [], [], []
    serial_s = portfolio_s = 0.0
    for seed in seeds:
        with timed("search.serial") as t:
            serial = HillClimbStrategy().run(
                space, qor_model, hw_model,
                budget=EvaluationBudget(budget), rng=seed,
            )
        serial_s += t.seconds

        with timed("search.portfolio") as t:
            portfolio = PortfolioRunner(
                space, qor_model, hw_model,
                strategies=STRATEGIES, rounds=2, seed=seed,
                workers=workers,
            ).run(budget)
        portfolio_s += t.seconds

        # Exact budget accounting: both spend precisely the asked
        # budget (the fixed hill climber counts discarded batch tails,
        # the portfolio tops up strategy remainders).
        assert serial.evaluations == budget
        assert portfolio.evaluations == budget

        both = np.vstack(
            [_minimised(serial.points), _minimised(portfolio.points)]
        )
        reference = (
            float(both[:, 0].max()) + 1.0,
            float(both[:, 1].max()) * 1.05 + 1e-9,
        )
        hv_s = hypervolume_2d(_minimised(serial.points), reference)
        hv_p = hypervolume_2d(_minimised(portfolio.points), reference)
        hv_serial_all.append(hv_s)
        hv_portfolio_all.append(hv_p)
        rows.append(
            f"  seed {seed}: serial hv {hv_s:12.2f} "
            f"(front {len(serial):3d})   portfolio hv {hv_p:12.2f} "
            f"(front {len(portfolio):3d})   ratio "
            f"{hv_p / hv_s if hv_s > 0 else float('inf'):6.3f}"
        )

    mean_serial = float(np.mean(hv_serial_all))
    mean_portfolio = float(np.mean(hv_portfolio_all))
    ratio = mean_portfolio / mean_serial if mean_serial > 0 else (
        float("inf")
    )
    rate_serial = mean_serial / (serial_s / len(hv_serial_all))
    rate_portfolio = mean_portfolio / (
        portfolio_s / len(hv_portfolio_all)
    )
    rate_ratio = (
        rate_portfolio / rate_serial if rate_serial > 0
        else float("inf")
    )

    write_result(
        "search_portfolio",
        (
            f"workload {WORKLOAD}, budget {budget} evaluations/seed, "
            f"{len(hv_serial_all)} seeds "
            f"({'smoke' if smoke else 'full'} mode)\n"
            + "\n".join(rows) + "\n"
            f"mean hypervolume: serial {mean_serial:12.2f}   "
            f"portfolio {mean_portfolio:12.2f}\n"
            f"mean-hypervolume ratio at equal budget: {ratio:6.3f}x\n"
            f"hypervolume/second ratio:               "
            f"{rate_ratio:6.3f}x\n"
            f"wall time: serial {serial_s:7.3f}s   "
            f"portfolio {portfolio_s:7.3f}s"
        ),
    )
    doc = {
        "version": 1,
        "bench": "search_portfolio",
        "workload": WORKLOAD,
        "mode": "smoke" if smoke else "full",
        "budget": budget,
        "seeds": len(hv_serial_all),
        "serial_seconds": round(serial_s, 4),
        "portfolio_seconds": round(portfolio_s, 4),
        "serial_hypervolume_mean": mean_serial,
        "portfolio_hypervolume_mean": mean_portfolio,
        "hypervolume_ratio": round(ratio, 4),
        "hv_per_second_ratio": round(rate_ratio, 4),
        "strategies": list(STRATEGIES),
        "metrics": bench_metrics(mark),
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            if isinstance(previous, list):
                trajectory = previous
        except (OSError, json.JSONDecodeError):
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(
        json.dumps(trajectory, sort_keys=True, indent=2) + "\n"
    )

    # Acceptance bar: the portfolio must beat the serial hill climber
    # on mean front hypervolume at the same exact budget.
    assert mean_portfolio > mean_serial


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-budget variant for CI",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_SEARCH_SMOKE"] = "1"
    test_search_portfolio()
    print("bench_search: OK")
