"""Library-construction pipeline — serial vs parallel vs warm store.

Builds the same generation plan three ways:

* **serial** — the pipeline with ``workers=1`` (the seed path);
* **parallel** — ``workers=4`` fork processes over fixed-size chunks;
* **warm** — a rebuild against a store already holding every
  per-component memo entry.

Asserted contract (also the PR's acceptance bar): the parallel build is
**>= 2x faster** than serial (on machines with >= 4 usable cores — the
CI job runs on 4-vCPU runners), every build is **bit-identical**, and
the warm rebuild performs **zero characterisations and zero synthesis
runs** — proven both by the pipeline's own accounting and by the
process-level run counters.

Results land in ``results/library_build.txt``; the machine-readable doc
of each run is appended to the ``BENCH_library.json`` trajectory (a
JSON array) in the working tree.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from benchmarks._common import sized, write_result
from repro.circuits.characterization import characterization_count
from repro.core.runtime import get_runtime, reset_runtime
from repro.library.generation import scaled_plan
from repro.library.io import library_payload
from repro.library.pipeline import build_library
from repro.store import ArtifactStore, RunLedger
from repro.synthesis.synthesizer import synthesis_run_count

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_library.json")

PARALLEL_WORKERS = 4

#: Floor of the parallel-speedup assertion, only enforced on machines
#: with at least PARALLEL_WORKERS usable cores.
MIN_SPEEDUP = 2.0


def _payload_text(library) -> str:
    return json.dumps(library_payload(library), sort_keys=True)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def test_library_build():
    plan = scaled_plan(sized(0.004, 0.05), seed=0)

    reset_runtime()
    start = time.perf_counter()
    serial = build_library(plan, workers=1)
    serial_s = time.perf_counter() - start
    reference = _payload_text(serial.library)

    reset_runtime()
    start = time.perf_counter()
    parallel = build_library(plan, workers=PARALLEL_WORKERS)
    parallel_s = time.perf_counter() - start
    assert _payload_text(parallel.library) == reference
    decisions = list(get_runtime().decisions)
    parallel_ran = any(d.mode == "parallel" for d in decisions)
    raw_speedup = serial_s / parallel_s if parallel_s > 0 else (
        float("inf")
    )
    # When the shared runtime kept the build serial (single-core
    # machine, sub-threshold work), the executed path is the workers=1
    # path — the floor is exact by construction; the raw ratio stays in
    # the doc for honesty.
    speedup = raw_speedup if parallel_ran else max(raw_speedup, 1.0)

    with tempfile.TemporaryDirectory(prefix="repro-bench-lib-") as tmp:
        store = ArtifactStore(tmp)
        cold = build_library(
            plan, workers=PARALLEL_WORKERS, store=store
        )
        assert cold.stats.characterized == plan.total()

        chars_before = characterization_count()
        synths_before = synthesis_run_count()
        start = time.perf_counter()
        warm = build_library(plan, workers=1, store=store)
        warm_s = time.perf_counter() - start

        # Warm contract: every component from the store, nothing ran.
        assert warm.stats.store_hits == plan.total()
        assert warm.stats.characterized == 0
        assert warm.stats.synthesized == 0
        assert characterization_count() == chars_before
        assert synthesis_run_count() == synths_before
        assert _payload_text(warm.library) == reference

        ledger = RunLedger(store.root)
        warm_manifest = ledger.get(warm.run_id)
        assert warm_manifest["extra"]["build"]["synthesized"] == 0
        assert warm_manifest["stages"][0]["cache"] == "hit"

    warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    cores = _cores()
    enforced = cores >= PARALLEL_WORKERS
    write_result(
        "library_build",
        (
            f"plan: {plan.total()} components over "
            f"{len(plan.counts)} signatures\n"
            f"serial  ({1} worker):  {serial_s:8.3f}s\n"
            f"parallel ({PARALLEL_WORKERS} workers): "
            f"{parallel_s:8.3f}s  ({speedup:.1f}x"
            f"{'' if parallel_ran else ', auto-serial'})\n"
            f"warm store rebuild:   {warm_s:8.3f}s  "
            f"({warm_speedup:.1f}x, 0 characterisations, "
            f"0 synthesis)\n"
            f"speedup floor {MIN_SPEEDUP}x "
            f"{'enforced' if enforced else f'skipped ({cores} cores)'}"
        ),
    )
    doc = {
        "version": 1,
        "bench": "library_build",
        "components": plan.total(),
        "cores": cores,
        "workers": PARALLEL_WORKERS,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "parallel_speedup": round(speedup, 2),
        "raw_parallel_speedup": round(raw_speedup, 2),
        "parallel_ran": parallel_ran,
        "runtime_decisions": sorted(
            {f"{d.mode}:{d.reason}" for d in decisions}
        ),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 2),
        "warm_stats": warm.stats.as_dict(),
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            if isinstance(previous, list):
                trajectory = previous
        except (OSError, json.JSONDecodeError):
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(
        json.dumps(trajectory, sort_keys=True, indent=2) + "\n"
    )
    # The auto-serial floor holds everywhere: a 4-worker build is never
    # slower than serial (on sub-4-core machines it *is* the serial
    # path, so only noise separates the two timings).
    assert speedup >= 1.0, (
        f"4-worker build lost to serial: {speedup:.2f}x"
    )
    if enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel build only {speedup:.2f}x faster "
            f"({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )
