"""Persistent-store warm-up — cold vs warm pipeline runs.

Runs the same small workload pipeline twice against one experiment
store: the *cold* run pays for profiling, real-evaluated training sets,
model fitting, DSE and final analysis; the *warm* run resolves every
stage from the content-addressed cache.  Asserted contract (also the
PR's acceptance bar): the warm run performs **zero synthesis runs and
zero model refits** and completes **>= 5x faster**.

Results land in ``results/store_warmup.txt``; the machine-readable doc
of each run is appended to the ``BENCH_store.json`` trajectory (a JSON
array) in the working tree.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks._common import sized, write_result
from repro.core.modeling import fit_count
from repro.core.pipeline import AutoAx, AutoAxConfig, PIPELINE_STAGES
from repro.experiments.setup import workload_setup
from repro.store import ArtifactStore, RunLedger

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_store.json")

WORKLOAD = "sobel"


def _pipeline(setup, store):
    config = AutoAxConfig(
        n_train=sized(24, 150),
        n_test=sized(12, 75),
        engines=("K-Neighbors",),
        max_evaluations=sized(2_000, 20_000),
        seed=setup.seed,
    )
    return AutoAx(
        setup.accelerator,
        setup.library,
        setup.images,
        scenarios=setup.scenarios,
        config=config,
        store=store,
        run_kind="bench",
        run_label=f"bench_store:{WORKLOAD}",
    )


def test_store_warmup():
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ArtifactStore(tmp)
        setup = workload_setup(
            WORKLOAD, scale=0.002, n_images=2,
            image_shape=(48, 64), use_cache=False,
        )

        start = time.perf_counter()
        cold = _pipeline(setup, store).run()
        cold_s = time.perf_counter() - start
        assert set(cold.stage_cache.values()) == {"miss"}

        fits_before = fit_count()
        start = time.perf_counter()
        warm = _pipeline(setup, store).run()
        warm_s = time.perf_counter() - start

        # Warm contract: every stage from cache, no synthesis, no refit.
        assert set(warm.stage_cache.values()) == {"hit"}
        assert warm.engine_stats["synth_misses"] == 0
        assert fit_count() == fits_before
        assert np.allclose(cold.final_points, warm.final_points)

        ledger = RunLedger(store.root)
        manifests = ledger.runs()
        assert len(manifests) == 2
        warm_manifest = ledger.get(warm.run_id)
        assert all(
            stage["cache"] == "hit"
            for stage in warm_manifest["stages"]
        )

        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        stage_lines = "\n".join(
            f"  {name:20s} cold {cold.timings[name]:8.3f}s   "
            f"warm {warm.timings[name]:8.3f}s"
            for name in PIPELINE_STAGES
        )
        write_result(
            "store_warmup",
            (
                f"workload {WORKLOAD}, {len(setup.images)} images, "
                f"store at tmp\n"
                f"cold run: {cold_s:8.3f}s  (all stages miss)\n"
                f"warm run: {warm_s:8.3f}s  (all stages hit, "
                f"0 synthesis, 0 refits)\n"
                f"speed-up: {speedup:8.1f}x\n"
                f"{stage_lines}"
            ),
        )
        doc = {
            "version": 1,
            "bench": "store_warmup",
            "workload": WORKLOAD,
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(speedup, 2),
            "warm_stage_cache": warm.stage_cache,
            "warm_engine_stats": warm.engine_stats,
        }
        trajectory = []
        if BENCH_JSON.is_file():
            try:
                previous = json.loads(BENCH_JSON.read_text())
                if isinstance(previous, list):
                    trajectory = previous
            except (OSError, json.JSONDecodeError):
                trajectory = []
        trajectory.append(doc)
        BENCH_JSON.write_text(
            json.dumps(trajectory, sort_keys=True, indent=2) + "\n"
        )
        assert speedup >= 5.0
