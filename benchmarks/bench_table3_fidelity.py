"""Table 3 — fidelity of models for the Sobel ED across learning engines."""

from benchmarks._common import shared_setup, sized, write_result
from repro.experiments.table3_fidelity import table3_fidelity
from repro.utils.tabulate import format_table


def test_table3_fidelity(benchmark):
    setup = shared_setup()
    n_train = sized(500, 1500)
    n_test = sized(500, 1500)
    rows = benchmark.pedantic(
        table3_fidelity,
        args=(setup,),
        kwargs={"n_train": n_train, "n_test": n_test},
        rounds=1,
        iterations=1,
    )
    table = [
        [r.engine, f"{r.ssim_train:.0%}", f"{r.ssim_test:.0%}",
         f"{r.area_train:.0%}", f"{r.area_test:.0%}"]
        for r in rows
    ]
    write_result(
        "table3_fidelity",
        format_table(
            ["Learning algorithm", "SSIM train", "SSIM test",
             "Area train", "Area test"],
            table,
            title=f"Table 3: model fidelity (Sobel ED, "
                  f"{n_train} train / {n_test} test configurations)",
        ),
    )

    by_name = {r.engine: r for r in rows}
    forest = by_name["Random Forest"]
    naive = by_name["Naive model"]
    tree = by_name["Decision Tree"]
    gp = by_name["Gaussian process"]
    sgd = by_name["Stochastic Gradient Descent"]

    # Paper shape: the random forest clearly beats the naive models...
    assert forest.ssim_test > naive.ssim_test + 0.03
    assert forest.area_test > naive.area_test + 0.03
    # ...plain decision trees and Gaussian processes overfit...
    assert tree.ssim_train - tree.ssim_test > 0.03
    assert gp.ssim_train - gp.ssim_test > 0.05
    # ...SGD on unscaled features collapses on at least one target
    # (paper: 25% SSIM / 74% area; here the area model collapses)...
    assert min(sgd.ssim_test, sgd.area_test) < 0.6
    # ...and the bottom of the ranking is held by the same engines as in
    # the paper (MLP, Gaussian process, kernel ridge, SGD, naive).
    bottom = {r.engine for r in rows[-3:]}
    assert bottom <= {
        "MLP neural network", "Gaussian process", "Kernel ridge",
        "Stochastic Gradient Descent", "Naive model",
    }
