"""Table 1 — the number of operations in target accelerators."""

from benchmarks._common import write_result
from repro.experiments.table1_operations import (
    PAPER_TABLE1,
    TABLE1_COLUMNS,
    table1_rows,
)
from repro.utils.tabulate import format_table


def test_table1_operations(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    headers = ["Problem"] + [
        f"{kind}{width}" for kind, width in TABLE1_COLUMNS
    ] + ["Total", "Paper"]
    table_rows = [
        [r["problem"], *r["counts"], r["total"],
         "match" if r["matches_paper"] else "MISMATCH"]
        for r in rows
    ]
    write_result(
        "table1_operations",
        format_table(headers, table_rows,
                     title="Table 1: operations per accelerator"),
    )
    assert all(r["matches_paper"] for r in rows)
    assert [r["total"] for r in rows] == [5, 11, 17]
