"""Figure 4 — correlation of estimated vs real (synthesised) area."""

import numpy as np

from benchmarks._common import shared_setup, sized, write_result
from repro.experiments.fig4_correlation import fig4_correlation
from repro.utils.tabulate import format_table


def _ascii_scatter(real, est, bins=18):
    lo = min(real.min(), est.min())
    hi = max(real.max(), est.max())
    span = hi - lo or 1.0
    grid = [[" "] * bins for _ in range(bins)]
    for r, e in zip(real, est):
        col = min(int((r - lo) / span * (bins - 1)), bins - 1)
        row = min(int((e - lo) / span * (bins - 1)), bins - 1)
        grid[bins - 1 - row][col] = "o"
    for k in range(bins):  # the identity diagonal
        r = bins - 1 - k
        if grid[r][k] == " ":
            grid[r][k] = "."
    return "\n".join("".join(row) for row in grid)


def test_fig4_area_correlation(benchmark):
    setup = shared_setup()
    series = benchmark.pedantic(
        fig4_correlation,
        args=(setup,),
        kwargs={"n_train": sized(400, 1500), "n_test": sized(400, 1500)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [s.engine, f"{s.pearson_r:.4f}", f"{s.relative_rmse:.2%}"]
        for s in series
    ]
    blocks = [
        format_table(
            ["Engine", "Pearson r", "relative RMSE"],
            rows,
            title="Fig. 4: estimated vs real area (held-out configs)",
        )
    ]
    for s in series:
        blocks.append(
            f"\n{s.engine} (x: real area, y: estimated, '.': identity)\n"
            + _ascii_scatter(s.real_area, s.estimated_area)
        )
    write_result("fig4_area_correlation", "\n".join(blocks))

    by_name = {s.engine: s for s in series}
    # the learned forest tracks real area more tightly than the naive sum
    assert (
        by_name["Random Forest"].relative_rmse
        < by_name["Naive model"].relative_rmse
    )
    assert by_name["Random Forest"].pearson_r > 0.9
