"""Workload-registry throughput — configs/sec through the batched engine.

For every registered workload, materialises the (accelerator, images,
scenarios) bundle, builds a small per-signature candidate pool and times
the *real QoR* path — one compiled ``GraphProgram`` pass over the stacked
(image x scenario) run batch plus batched SSIM — over a set of random
configurations.  The table shows how evaluation cost scales with window
size, op-slot count and scenario count across the whole catalog.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import sized, throughput, write_result
from repro.core.configuration import ConfigurationSpace
from repro.core.engine import EvaluationEngine
from repro.library.generation import GenerationPlan, generate_library
from repro.workloads import WORKLOADS, build_bundle

#: Candidate components per operation signature (throughput, not DSE).
POOL_PER_SIGNATURE = 6

#: Benchmark tile geometry (many runs of modest size).
TILE_SHAPE = (48, 64)


def _candidate_space(accelerator) -> ConfigurationSpace:
    """A configuration space over a small generated candidate pool."""
    signatures = sorted(accelerator.op_inventory())
    plan = GenerationPlan(
        {sig: POOL_PER_SIGNATURE for sig in signatures},
        seed=0,
        sample_size=1 << 10,
    )
    library = generate_library(plan)
    slots = accelerator.op_slots()
    choices = [library.components(slot.signature) for slot in slots]
    wmeds = [[0.0] * len(group) for group in choices]
    return ConfigurationSpace(slots, choices, wmeds)


def test_workload_throughput():
    n_configs = sized(12, 40)
    rows = []
    for workload in WORKLOADS:
        bundle = build_bundle(
            workload.name, n_images=sized(2, 8), image_shape=TILE_SHAPE
        )
        space = _candidate_space(bundle.accelerator)
        engine = EvaluationEngine(
            bundle.accelerator, bundle.images, bundle.scenarios
        )
        configs = space.random_configurations(n_configs, rng=1)
        assignments = [space.assignment_callables(c) for c in configs]
        qors = [engine.qor(a) for a in assignments]  # warm + sanity
        assert all(0.0 <= q <= 1.0 for q in qors)
        rate = throughput(engine.qor, assignments)
        rows.append(
            (
                workload.name,
                bundle.accelerator.window,
                space.n_slots,
                len(bundle.scenarios or [None]),
                engine.run_count,
                rate,
            )
        )

    lines = [
        f"{'workload':<14} {'win':>3} {'slots':>5} {'scen':>4} "
        f"{'runs':>4} {'configs/s':>10}"
    ]
    for name, window, slots, scen, runs, rate in rows:
        lines.append(
            f"{name:<14} {window:>3} {slots:>5} {scen:>4} "
            f"{runs:>4} {rate:>10.1f}"
        )
    write_result("bench_workloads_throughput", "\n".join(lines))

    # Every catalog entry must sustain a usable real-evaluation rate
    # through the compiled batch path.
    assert all(rate > 1.0 for *_, rate in rows)


if __name__ == "__main__":
    test_workload_throughput()
