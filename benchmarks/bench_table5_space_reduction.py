"""Table 5 — design-space size after each methodology step."""

from benchmarks._common import shared_setup, sized, write_result
from repro.core.pipeline import AutoAxConfig
from repro.experiments.table5_space import default_cases, table5_sizes
from repro.utils.tabulate import format_table


def test_table5_space_reduction(benchmark):
    setup = shared_setup()
    config = AutoAxConfig(
        n_train=sized(200, 4000),
        n_test=sized(100, 1000),
        max_evaluations=sized(20_000, 10**6),
        seed=setup.seed,
    )
    cases = default_cases(
        setup,
        n_kernels=sized(5, 50),
        n_gf_images=sized(2, 4),
    )
    rows = benchmark.pedantic(
        table5_sizes,
        args=(setup,),
        kwargs={"config": config, "cases": cases},
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r.problem,
            f"{r.all_possible:.2e}",
            f"{r.all_possible_paper_scale:.2e}",
            f"{r.after_preprocessing:.2e}",
            r.pseudo_pareto,
            r.final_pareto,
        ]
        for r in rows
    ]
    write_result(
        "table5_space_reduction",
        format_table(
            ["Application", "all possible", "(paper-scale lib)",
             "after preprocessing", "pseudo Pareto", "final Pareto"],
            table,
            title="Table 5: design-space size after each step",
        ),
    )

    for r in rows:
        # each step shrinks the candidate set by orders of magnitude
        assert r.all_possible / r.after_preprocessing > 10
        assert r.after_preprocessing / r.pseudo_pareto > 10
        assert r.final_pareto <= r.pseudo_pareto
    # op-count ordering carries over to space sizes
    assert rows[0].all_possible < rows[1].all_possible
    assert rows[1].all_possible < rows[2].all_possible
