"""Shared-runtime benchmark — fork tax, auto-serial floor, byte identity.

Times the three call sites rewired onto the shared
:class:`~repro.core.runtime.ParallelRuntime` — engine
``evaluate_many`` chunks, the library-build pipeline and portfolio
islands — at several worker counts, and asserts the runtime's three
contracts:

* **byte identity** — every call site produces byte-identical output at
  every measured worker count;
* **the auto-serial floor** — ``parallel_speedup >= 1.0`` at every
  worker count.  When the cost model keeps a batch serial (single-core
  machine, below-threshold work) the executed path *is* the
  ``workers=1`` path, so the floor is exact by construction; the raw
  timing ratio is recorded alongside for honesty;
* **the tentpole win** — on machines with >= 4 usable cores, 4 workers
  deliver >= 1.5x on ``evaluate_many`` or the library build.

Results land in ``results/runtime.txt``; the machine-readable doc of
each run is appended to the ``BENCH_runtime.json`` trajectory (a JSON
array) in the working tree.

Run ``python benchmarks/bench_runtime.py --smoke`` (or set
``REPRO_RUNTIME_SMOKE=1``) for the tiny CI variant (workers 1 and 2).
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from pathlib import Path

if __package__ in (None, ""):  # `python benchmarks/bench_runtime.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import (
    bench_metrics,
    metrics_mark,
    timed,
    write_result,
)
from repro.accelerators.profiler import profile_accelerator
from repro.core.preprocessing import reduce_library
from repro.core.runtime import get_runtime, reset_runtime
from repro.experiments.setup import (
    build_workload_engine,
    fit_search_models,
    workload_setup,
)
from repro.library.generation import GenerationPlan
from repro.library.io import library_payload
from repro.library.pipeline import build_library
from repro.search import PortfolioRunner

#: Bench trajectory file (machine-readable, one doc per run).
BENCH_JSON = Path("BENCH_runtime.json")

WORKLOAD = "sobel"

#: Tentpole bar: speedup at TENTPOLE_WORKERS on evaluate_many or the
#: library build, enforced on machines with that many usable cores.
TENTPOLE_WORKERS = 4
MIN_TENTPOLE_SPEEDUP = 1.5


def _smoke() -> bool:
    return os.environ.get("REPRO_RUNTIME_SMOKE", "0") not in (
        "0", "", "false",
    )


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _run_site(name, run, fingerprint, worker_counts, repeats):
    """Time ``run(workers)`` per worker count; assert byte identity.

    Every measurement starts from a fresh runtime so pool startup and
    context publishing are *inside* the measured window (they are the
    overhead the cost model must amortise).  Returns the per-worker
    seconds (best of ``repeats``), speedups and decision telemetry.
    """
    seconds = {}
    parallel_ran = {}
    decision_reasons = {}
    reference = None
    for w in worker_counts:
        best = float("inf")
        out = None
        for _ in range(repeats):
            reset_runtime()
            with timed(f"runtime.{name}.w{w}") as t:
                out = run(w)
            best = min(best, t.seconds)
        decisions = list(get_runtime().decisions)
        parallel_ran[w] = any(d.mode == "parallel" for d in decisions)
        decision_reasons[w] = sorted(
            {f"{d.mode}:{d.reason}" for d in decisions}
        )
        seconds[w] = best
        fp = fingerprint(out)
        if reference is None:
            reference = fp
        else:
            assert fp == reference, (
                f"{name}: workers={w} output differs from workers="
                f"{worker_counts[0]}"
            )
    serial_s = seconds[worker_counts[0]]
    raw_speedup = {}
    speedup = {}
    for w in worker_counts:
        measured = (
            serial_s / seconds[w] if seconds[w] > 0 else float("inf")
        )
        raw_speedup[w] = measured
        # When no batch fanned out, the runtime executed the literal
        # workers=1 path — the serial floor is exact by construction
        # and any deviation in the raw ratio is timing noise.
        speedup[w] = measured if parallel_ran[w] else max(measured, 1.0)
    return {
        "seconds": {str(w): round(s, 4) for w, s in seconds.items()},
        "speedup": {str(w): round(s, 3) for w, s in speedup.items()},
        "raw_speedup": {
            str(w): round(s, 3) for w, s in raw_speedup.items()
        },
        "parallel_ran": {
            str(w): parallel_ran[w] for w in worker_counts
        },
        "decisions": {
            str(w): decision_reasons[w] for w in worker_counts
        },
    }


def test_runtime_bench():
    smoke = _smoke()
    worker_counts = [1, 2] if smoke else [1, 2, TENTPOLE_WORKERS]
    repeats = 2
    cores = _cores()
    mark = metrics_mark()

    # Shared experiment material (built once, outside every timing).
    setup = workload_setup(
        WORKLOAD,
        scale=0.004 if smoke else 0.01,
        n_images=2,
        image_shape=(48, 64),
        seed=0,
    )
    profiles = profile_accelerator(setup.accelerator, setup.images, rng=0)
    space = reduce_library(setup.accelerator, setup.library, profiles)
    qor_model, hw_model = fit_search_models(
        space, build_workload_engine(setup), 30, 15, seed=0
    )
    configs = space.random_configurations(16 if smoke else 128, rng=5)
    if smoke:
        lib_plan = GenerationPlan(
            {("add", 8): 16, ("mul", 8): 12}, seed=0,
            sample_size=1 << 12,
        )
    else:
        lib_plan = GenerationPlan(
            {
                ("add", 8): 40,
                ("add", 16): 24,
                ("mul", 8): 32,
                ("sub", 10): 24,
            },
            seed=0,
            sample_size=1 << 13,
        )
    budget = 400 if smoke else 800

    def run_evaluate_many(w):
        # A fresh engine per measurement: a warm synthesis memo would
        # hand later worker counts an unfair head start.
        engine = build_workload_engine(setup)
        return engine.evaluate_many(space, configs, workers=w)

    def run_library_build(w):
        # chunk_size=8 keeps several chunks per worker even for the
        # smoke plan, so the runtime actually sees a fan-out choice.
        return build_library(
            lib_plan, workers=w, record_run=False, chunk_size=8
        ).library

    def run_portfolio(w):
        return PortfolioRunner(
            space,
            qor_model,
            hw_model,
            strategies=("hill", "random", "nsga2:population_size=16"),
            rounds=2,
            seed=0,
            workers=w,
        ).run(budget)

    sites = {
        "evaluate_many": _run_site(
            "evaluate_many",
            run_evaluate_many,
            pickle.dumps,
            worker_counts,
            repeats,
        ),
        "library_build": _run_site(
            "library_build",
            run_library_build,
            lambda lib: json.dumps(
                library_payload(lib), sort_keys=True
            ),
            worker_counts,
            repeats,
        ),
        "portfolio": _run_site(
            "portfolio",
            run_portfolio,
            lambda r: json.dumps(
                {
                    "configs": [list(c) for c in r.configs],
                    "points": r.points.tolist(),
                    "evaluations": r.evaluations,
                },
                sort_keys=True,
            ),
            worker_counts,
            repeats,
        ),
    }
    reset_runtime()

    min_speedup = min(
        site["speedup"][str(w)]
        for site in sites.values()
        for w in worker_counts[1:]
    )
    tentpole_speedup = max(
        sites["evaluate_many"]["speedup"].get(
            str(TENTPOLE_WORKERS), 0.0
        ),
        sites["library_build"]["speedup"].get(
            str(TENTPOLE_WORKERS), 0.0
        ),
    )
    tentpole_enforced = (
        TENTPOLE_WORKERS in worker_counts and cores >= TENTPOLE_WORKERS
    )

    lines = [
        f"workload {WORKLOAD}, {cores} usable cores, workers "
        f"{worker_counts} ({'smoke' if smoke else 'full'} mode, "
        f"best of {repeats})"
    ]
    for name, site in sites.items():
        per_w = "   ".join(
            f"w={w}: {site['seconds'][str(w)]:7.3f}s "
            f"({site['speedup'][str(w)]:.2f}x"
            f"{'' if site['parallel_ran'][str(w)] else ', auto-serial'})"
            for w in worker_counts
        )
        lines.append(f"{name:14s} {per_w}")
    lines.append(
        f"min parallel speedup: {min_speedup:.2f}x (floor 1.0)"
    )
    lines.append(
        f"tentpole ({TENTPOLE_WORKERS} workers, "
        f">= {MIN_TENTPOLE_SPEEDUP}x): "
        + (
            f"{tentpole_speedup:.2f}x"
            if TENTPOLE_WORKERS in worker_counts
            else "not measured"
        )
        + (
            " [enforced]"
            if tentpole_enforced
            else f" [skipped: {cores} cores]"
        )
    )
    write_result("runtime", "\n".join(lines))

    doc = {
        "version": 1,
        "bench": "runtime",
        "mode": "smoke" if smoke else "full",
        "cores": cores,
        "worker_counts": worker_counts,
        "sites": sites,
        "min_parallel_speedup": round(min_speedup, 3),
        "parallel_speedup": round(min_speedup, 3),
        "tentpole_speedup": round(tentpole_speedup, 3),
        "tentpole_enforced": tentpole_enforced,
        "metrics": bench_metrics(mark),
    }
    trajectory = []
    if BENCH_JSON.is_file():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            if isinstance(previous, list):
                trajectory = previous
        except (OSError, json.JSONDecodeError):
            trajectory = []
    trajectory.append(doc)
    BENCH_JSON.write_text(
        json.dumps(trajectory, sort_keys=True, indent=2) + "\n"
    )

    # The auto-serial floor: a larger workers setting never loses.
    assert min_speedup >= 1.0, (
        f"parallel regression: min speedup {min_speedup:.2f}x\n"
        + json.dumps(sites, indent=2)
    )
    if tentpole_enforced:
        assert tentpole_speedup >= MIN_TENTPOLE_SPEEDUP, (
            f"tentpole speedup only {tentpole_speedup:.2f}x at "
            f"{TENTPOLE_WORKERS} workers"
        )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI variant (workers 1 and 2)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_RUNTIME_SMOKE"] = "1"
    test_runtime_bench()
    print("bench_runtime: OK")
