"""Ablation benches for the design choices called out in DESIGN.md §6."""

from benchmarks._common import shared_setup, sized, write_result
from repro.experiments.ablations import (
    ablate_hw_features,
    ablate_model_selection,
    ablate_preprocessing,
    ablate_qor_features,
    ablate_restarts,
)
from repro.utils.tabulate import format_table


def test_ablation_fidelity_vs_r2(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        ablate_model_selection,
        args=(setup,),
        kwargs={"n_train": sized(300, 1500), "n_test": sized(200, 1500)},
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_fidelity_vs_r2",
        format_table(
            ["selection criterion", "chosen engine", "test fidelity",
             "real front hypervolume"],
            [
                ["fidelity (paper)", result.by_fidelity,
                 f"{result.fidelity_of_fidelity_choice:.1%}",
                 f"{result.front_hv_fidelity_choice:.1f}"],
                ["R^2 accuracy", result.by_r2,
                 f"{result.fidelity_of_r2_choice:.1%}",
                 f"{result.front_hv_r2_choice:.1f}"],
            ],
            title="Ablation: model selection by fidelity vs accuracy",
        ),
    )
    assert (
        result.fidelity_of_fidelity_choice
        >= result.fidelity_of_r2_choice
    )


def test_ablation_preprocessing(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        ablate_preprocessing, args=(setup,), rounds=1, iterations=1
    )
    write_result(
        "ablation_preprocessing",
        format_table(
            ["library reduction", "per-op sizes", "real front HV"],
            [
                ["WMED Pareto filter (paper)",
                 str(result.pareto_sizes),
                 f"{result.pareto_front_hv:.1f}"],
                ["random subset (control)",
                 str(result.random_sizes),
                 f"{result.random_front_hv:.1f}"],
            ],
            title="Ablation: WMED-guided library pre-processing",
        ),
    )
    assert result.pareto_front_hv > 0


def test_ablation_restarts(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        ablate_restarts,
        args=(setup,),
        kwargs={"max_evaluations": sized(5000, 10**5)},
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_restarts",
        format_table(
            ["search strategy", "#Pareto", "estimated front HV"],
            [
                ["hill climbing + restarts (Alg. 1)",
                 result.with_restarts_size,
                 f"{result.with_restarts_hv:.1f}"],
                ["hill climbing, no restarts",
                 result.without_restarts_size,
                 f"{result.without_restarts_hv:.1f}"],
                ["random sampling",
                 result.random_sampling_size,
                 f"{result.random_sampling_hv:.1f}"],
            ],
            title="Ablation: stagnation restarts in Algorithm 1",
        ),
    )
    assert result.with_restarts_size >= result.random_sampling_size


def test_ablation_qor_features(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        ablate_qor_features,
        args=(setup,),
        kwargs={"n_train": sized(300, 1500), "n_test": sized(200, 1500)},
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_qor_features",
        format_table(
            ["QoR feature set", "test fidelity"],
            [
                ["WMED only (paper)",
                 f"{result.fidelity_wmed_only:.1%}"],
                ["WMED + error variance",
                 f"{result.fidelity_wmed_plus_variance:.1%}"],
            ],
            title="Ablation: QoR-model features (paper §4.1.2: adding "
                  "error variance does not help)",
        ),
    )
    # the paper's finding: no meaningful improvement from the variance
    assert (
        result.fidelity_wmed_plus_variance
        <= result.fidelity_wmed_only + 0.02
    )


def test_ablation_hw_features(benchmark):
    setup = shared_setup()
    result = benchmark.pedantic(
        ablate_hw_features,
        args=(setup,),
        kwargs={"n_train": sized(300, 1500), "n_test": sized(200, 1500)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [features, f"{fidelity:.1%}"]
        for features, fidelity in
        result.fidelity_by_feature_set.items()
    ]
    write_result(
        "ablation_hw_features",
        format_table(
            ["hardware features per component", "area-model fidelity"],
            rows,
            title="Ablation: hardware-model feature sets "
                  "(paper: -2% without power/delay)",
        ),
    )
    assert len(result.fidelity_by_feature_set) == 3
