#!/usr/bin/env python
"""From Pareto front to RTL: export a chosen approximate design.

Runs a small autoAx exploration of the Sobel edge detector, picks the
cheapest design meeting an SSIM constraint from the final front, and
writes the composed, synthesis-optimised gate netlist out as structural
Verilog — the artefact one would hand to a real ASIC flow.

Run time: ~1 minute.
"""

from pathlib import Path

from repro import (
    AutoAx,
    AutoAxConfig,
    SobelEdgeDetector,
    benchmark_images,
    generate_library,
    scaled_plan,
)
from repro.netlist import to_verilog
from repro.synthesis import optimize

SSIM_FLOOR = 0.9
OUTPUT = Path("sobel_approx.v")


def main() -> None:
    accelerator = SobelEdgeDetector()
    library = generate_library(scaled_plan(scale=0.01, floor=48))
    images = benchmark_images(4, shape=(128, 192))
    config = AutoAxConfig(
        n_train=120, n_test=60, max_evaluations=8_000, seed=0
    )
    result = AutoAx(accelerator, library, images, config=config).run()

    candidates = [
        (point, genes)
        for point, genes in zip(result.final_points,
                                result.final_configs)
        if point[0] >= SSIM_FLOOR
    ]
    if not candidates:
        raise SystemExit(f"no front member reaches SSIM {SSIM_FLOOR}")
    (ssim_value, area), genes = min(
        candidates, key=lambda item: item[0][1]
    )
    print(f"selected design: SSIM {ssim_value:.4f} @ {area:.1f} um^2")
    print("component assignment:")
    records = result.space.records(genes)
    for op, record in records.items():
        print(f"  {op:8s} -> {record.name}")

    netlist = accelerator.to_netlist(records)
    optimize(netlist)
    OUTPUT.write_text(to_verilog(netlist, module_name="sobel_approx"))
    print(f"\nwrote {OUTPUT} ({netlist.gate_count()} gates, "
          f"{netlist.area():.1f} um^2)")


if __name__ == "__main__":
    main()
