#!/usr/bin/env python
"""Workload-registry tour: every registered scenario through one engine.

Walks the built-in workload catalog (the paper's three case studies plus
the parameterized N x N window family), materialises each workload into
an (accelerator, images, scenarios) bundle and runs the compiled batched
engine on its exact configuration, printing the per-workload shape of
the problem: window size, replaceable op slots, scenario count, runs per
evaluation and golden output statistics.

Then picks one family workload and runs the full autoAx DSE on it, using
a library generated to cover exactly that workload's signatures.

Run time: ~2 minutes on a laptop.
"""

import numpy as np

from repro.core.pipeline import AutoAx, AutoAxConfig
from repro.experiments.setup import workload_setup
from repro.workloads import WORKLOADS, build_bundle


def tour() -> None:
    print(f"{len(WORKLOADS)} registered workloads\n")
    header = (
        f"{'workload':<14} {'window':>6} {'slots':>5} "
        f"{'scenarios':>9} {'runs':>5}  golden output mean"
    )
    print(header)
    print("-" * len(header))
    for workload in WORKLOADS:
        bundle = build_bundle(
            workload.name, n_images=2, image_shape=(48, 64)
        )
        accelerator = bundle.accelerator
        scenarios = bundle.scenarios or [None]
        goldens = [
            accelerator.golden(image, extra=extra)
            for image in bundle.images
            for extra in scenarios
        ]
        mean = float(np.mean([g.mean() for g in goldens]))
        print(
            f"{workload.name:<14} "
            f"{accelerator.window}x{accelerator.window:<4} "
            f"{len(accelerator.op_slots()):>5} "
            f"{len(scenarios):>9} {bundle.run_count:>5}  {mean:8.2f}"
        )


def explore(name: str = "box3_6b") -> None:
    print(f"\nRunning the autoAx pipeline on workload {name!r}...")
    setup = workload_setup(
        name, scale=0.005, n_images=2, image_shape=(64, 96)
    )
    config = AutoAxConfig(
        n_train=60, n_test=30, max_evaluations=2_000, seed=0
    )
    result = AutoAx(
        setup.accelerator,
        setup.library,
        setup.images,
        scenarios=setup.scenarios,
        config=config,
    ).run()
    print(f"  QoR model {result.qor_model.name} "
          f"({result.qor_model.fidelity_test:.1%}), "
          f"HW model {result.hw_model.name} "
          f"({result.hw_model.fidelity_test:.1%})")
    print(f"  final front ({len(result.final_configs)} points):")
    for ssim_score, area in result.final_points[
        result.final_points[:, 1].argsort()
    ]:
        print(f"    SSIM {ssim_score:.4f}  area {area:9.1f} um^2")


def main() -> None:
    tour()
    explore()


if __name__ == "__main__":
    main()
