#!/usr/bin/env python
"""Gaussian-filter case studies — the paper's §4.2.

Approximates both Gaussian filters:

* the **fixed** filter (constant MCM coefficients, 11 operations), and
* the **generic** filter (runtime coefficients, 17 operations, QoR
  averaged over a sweep of kernels),

and compares the resulting real-evaluated Pareto fronts of the proposed
method against random sampling and uniform selection (Fig. 5).

Run time: a few minutes.
"""

from repro import AutoAxConfig
from repro.experiments import default_setup, fig5_fronts
from repro.experiments.table5_space import default_cases
from repro.utils.tabulate import format_table


def main() -> None:
    setup = default_setup(n_images=4)
    config = AutoAxConfig(
        n_train=150, n_test=75, max_evaluations=10_000, seed=0
    )
    cases = default_cases(setup, n_kernels=8, n_gf_images=2)
    gaussian_cases = [c for c in cases if c[0] != "Sobel ED"]

    results = fig5_fronts(setup, config=config, cases=gaussian_cases)
    for case in results:
        print(f"\n== {case.problem} ==")
        rows = []
        for name, front in case.fronts.items():
            ssim = front.points[:, 0]
            area = front.points[:, 1]
            rows.append(
                (
                    name,
                    len(front.points),
                    front.evaluated,
                    f"{front.hypervolume:.1f}",
                    f"[{ssim.min():.3f}, {ssim.max():.3f}]",
                    f"[{area.min():.0f}, {area.max():.0f}]",
                )
            )
        print(
            format_table(
                ["method", "#front", "#analysed", "hypervolume",
                 "SSIM range", "area range"],
                rows,
            )
        )
        hv = {n: f.hypervolume for n, f in case.fronts.items()}
        best = max(hv, key=hv.get)
        print(f"best hypervolume: {best}")

        proposed = case.fronts["proposed"]
        print("\nproposed front (SSIM / area / energy):")
        order = proposed.points[:, 1].argsort()
        for i in order[:: max(1, len(order) // 10)]:
            print(f"  {proposed.points[i, 0]:.4f}  "
                  f"{proposed.points[i, 1]:9.1f}  "
                  f"{proposed.energy[i]:9.1f}")


if __name__ == "__main__":
    main()
