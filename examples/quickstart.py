#!/usr/bin/env python
"""Quickstart: approximate a Sobel edge detector with autoAx.

Builds a small approximate-component library, runs the full three-step
methodology (profile -> reduce -> model -> explore -> verify) and prints
the final Pareto front of real (SSIM, area) trade-offs.

Run time: ~1 minute on a laptop.
"""

from repro import (
    AutoAx,
    AutoAxConfig,
    SobelEdgeDetector,
    benchmark_images,
    generate_library,
    scaled_plan,
)


def main() -> None:
    print("Generating and characterising the component library...")
    library = generate_library(scaled_plan(scale=0.01, floor=48))
    print(f"  {len(library)} components: {library.summary()}")

    images = benchmark_images(4, shape=(128, 192))
    accelerator = SobelEdgeDetector()
    print(f"\nAccelerator: {accelerator.name}")
    print(f"  replaceable operations: "
          f"{[s.name for s in accelerator.op_slots()]}")

    config = AutoAxConfig(
        n_train=150,
        n_test=75,
        max_evaluations=10_000,
        seed=0,
    )
    print("\nRunning the autoAx pipeline...")
    result = AutoAx(accelerator, library, images, config=config).run()

    sizes = result.summary_row()
    print(f"\nDesign space: {sizes['all_possible']:.3g} configurations"
          f" -> {sizes['after_preprocessing']:.3g} after library"
          " pre-processing")
    print(f"QoR model: {result.qor_model.name} "
          f"(test fidelity {result.qor_model.fidelity_test:.1%})")
    print(f"HW model:  {result.hw_model.name} "
          f"(test fidelity {result.hw_model.fidelity_test:.1%})")
    print(f"Pseudo Pareto set: {len(result.pseudo_pareto)} configurations"
          f" from {result.pseudo_pareto.evaluations} model evaluations")

    print(f"\nFinal Pareto front ({len(result.final_configs)} designs):")
    print(f"  {'SSIM':>7s}  {'area (um^2)':>12s}")
    order = result.final_points[:, 1].argsort()
    for ssim_value, area in result.final_points[order]:
        print(f"  {ssim_value:7.4f}  {area:12.1f}")

    # Compare against the accurate accelerator (exact circuit everywhere).
    from repro.core import AcceleratorEvaluator

    evaluator = AcceleratorEvaluator(accelerator, images)
    exact_cfg = result.space.exact_configuration()
    exact_area = evaluator.hardware(result.space.records(exact_cfg)).area
    good = result.final_points[result.final_points[:, 0] >= 0.95]
    if len(good):
        cheapest = good[good[:, 1].argmin()]
        saving = 1.0 - cheapest[1] / exact_area
        print(f"\nAccurate accelerator area: {exact_area:.1f} um^2.")
        print(f"At SSIM >= 0.95 the cheapest approximate design saves "
              f"{saving:.0%} area.")


if __name__ == "__main__":
    main()
