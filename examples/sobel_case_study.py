#!/usr/bin/env python
"""Sobel edge detector case study — the paper's §4.1, step by step.

Walks through the methodology exactly as the paper presents it:

1. library pre-processing: operand PMFs (Fig. 3) and the per-operation
   reduced libraries;
2. model construction: fidelity of several learning engines (Table 3);
3. model-based DSE: Algorithm 1 vs random sampling against the optimal
   front of the reduced space (Table 4, scaled).

Run time: a few minutes.
"""

import numpy as np

from repro import benchmark_images
from repro.experiments import (
    default_setup,
    fig3_profiles,
    render_pmf_ascii,
    table3_fidelity,
    table4_distances,
)
from repro.utils.tabulate import format_table


def main() -> None:
    setup = default_setup(n_images=6)
    print(f"Library: {setup.library.summary()}")

    # -- Step 1: profiling (Fig. 3) -------------------------------------
    print("\n== Operand PMFs of the Sobel operations (Fig. 3) ==")
    profiles = fig3_profiles(setup.images)
    for name, data in profiles.items():
        stats = data["stats"]
        print(f"\n{name} {data['signature']}: operand correlation "
              f"{stats['operand_correlation']:.3f}, "
              f"{stats['mass_within_diag_band']:.0%} of mass near the "
              "diagonal")
        print(render_pmf_ascii(data["pmf"], bins=20))

    # -- Step 2: model construction (Table 3) -----------------------------
    print("\n== Learning-engine fidelity (Table 3) ==")
    rows = table3_fidelity(setup, n_train=400, n_test=400)
    print(
        format_table(
            ["Engine", "SSIM train", "SSIM test", "Area train",
             "Area test"],
            [
                (
                    r.engine,
                    f"{r.ssim_train:.0%}",
                    f"{r.ssim_test:.0%}",
                    f"{r.area_train:.0%}",
                    f"{r.area_test:.0%}",
                )
                for r in rows
            ],
        )
    )

    # -- Step 3: DSE quality (Table 4) ------------------------------------
    print("\n== Front distance to the optimal Pareto front (Table 4) ==")
    t4 = table4_distances(setup, budgets=(10**3, 10**4),
                          n_train=300, n_test=150)
    print(f"optimal front: {t4.optimal_size} configurations out of "
          f"{t4.optimal_evaluations}")
    print(
        format_table(
            ["Algorithm", "#eval", "#Pareto", "to avg", "to max",
             "from avg", "from max"],
            [
                (
                    r.algorithm,
                    r.evaluations,
                    r.pareto_size,
                    f"{r.to_optimal_avg:.5f}",
                    f"{r.to_optimal_max:.5f}",
                    f"{r.from_optimal_avg:.5f}",
                    f"{r.from_optimal_max:.5f}",
                )
                for r in t4.rows
            ],
        )
    )


if __name__ == "__main__":
    main()
