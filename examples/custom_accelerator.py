#!/usr/bin/env python
"""Bring your own accelerator: approximating a custom cross edge detector.

The methodology is not tied to the three case studies — any dataflow
graph of adds/subs/muls over a 3x3 window works.  This example defines a
cross-shaped Laplacian edge detector

    out = clip(|4*x4 - (x1 + x3 + x5 + x7)|, 0, 255)

from scratch with the public API, then runs the full autoAx pipeline on
it.

Run time: ~1 minute.
"""

from repro import (
    AutoAx,
    AutoAxConfig,
    ImageAccelerator,
    benchmark_images,
    generate_library,
    scaled_plan,
)
from repro.accelerators.graph import DataflowGraph, NodeKind


class CrossEdgeDetector(ImageAccelerator):
    """4-neighbour Laplacian magnitude: 2x add8, 1x add9, 1x sub10."""

    name = "cross_ed"

    def _build_graph(self) -> DataflowGraph:
        g = DataflowGraph(self.name)
        for k in range(9):
            g.add_input(f"x{k}", 8)
        g.add_op("add_v", NodeKind.ADD, 8, "x1", "x7")
        g.add_op("add_h", NodeKind.ADD, 8, "x3", "x5")
        g.add_op("add_n", NodeKind.ADD, 9, "add_v", "add_h")
        g.add_shl("centre4", "x4", 2)
        g.add_op("sub", NodeKind.SUB, 10, "centre4", "add_n")
        g.add_abs("mag", "sub")
        g.add_clip("out", "mag", 0, 255)
        g.set_output("out")
        return g


def main() -> None:
    accelerator = CrossEdgeDetector()
    print(f"Custom accelerator: {accelerator.name}")
    print(f"  operation inventory: {accelerator.op_inventory()}")

    library = generate_library(scaled_plan(scale=0.01, floor=48))
    images = benchmark_images(4, shape=(128, 192))

    config = AutoAxConfig(
        n_train=120, n_test=60, max_evaluations=8_000, seed=0
    )
    result = AutoAx(accelerator, library, images, config=config).run()

    print(f"\nreduced space: {result.reduced_space_size:.3g} of "
          f"{result.initial_space_size:.3g} configurations")
    print(f"QoR model test fidelity: "
          f"{result.qor_model.fidelity_test:.1%}; HW: "
          f"{result.hw_model.fidelity_test:.1%}")
    print(f"\nFinal front ({len(result.final_configs)} designs), "
          "cheapest five:")
    order = result.final_points[:, 1].argsort()
    for ssim_value, area in result.final_points[order][:5]:
        print(f"  SSIM {ssim_value:.4f} @ {area:.1f} um^2")

    # Inspect the component mix of the best >=0.9 SSIM design.
    good = [
        (p, c)
        for p, c in zip(result.final_points, result.final_configs)
        if p[0] >= 0.9
    ]
    if good:
        point, config_genes = min(good, key=lambda pc: pc[0][1])
        print(f"\ncheapest design with SSIM >= 0.9 "
              f"(SSIM {point[0]:.4f}, {point[1]:.1f} um^2):")
        for op, record in result.space.records(config_genes).items():
            print(f"  {op:8s} -> {record.name} "
                  f"(area {record.hardware.area:.1f})")


if __name__ == "__main__":
    main()
