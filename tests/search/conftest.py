"""Fixtures of the search-layer tests: fitted models + call counting."""

from __future__ import annotations

import pytest

from repro.core.modeling import (
    build_training_set,
    fit_engines,
    select_best_model,
)


class CountingModel:
    """Estimation-model wrapper that counts every configuration predicted.

    The ground truth of the budget-accounting contract: whatever a
    search reports as ``evaluations`` must equal the number of
    configurations that actually reached ``predict``.
    """

    def __init__(self, model):
        self.model = model
        self.configs_predicted = 0
        self.calls = 0

    def predict(self, configs):
        self.configs_predicted += len(configs)
        self.calls += 1
        return self.model.predict(configs)


@pytest.fixture(scope="module")
def models(sobel_space, sobel_evaluator):
    train = build_training_set(sobel_space, sobel_evaluator, 50, rng=0)
    test = build_training_set(sobel_space, sobel_evaluator, 25, rng=1)
    qor = select_best_model(
        fit_engines(sobel_space, train, test, target="qor",
                    engines=["K-Neighbors"])
    ).model
    hw = select_best_model(
        fit_engines(sobel_space, train, test, target="area",
                    engines=["K-Neighbors"])
    ).model
    return qor, hw


@pytest.fixture()
def count_models(models):
    """Factory: fresh counting wrappers around the fitted models."""

    def make():
        qor, hw = models
        return CountingModel(qor), CountingModel(hw)

    return make
