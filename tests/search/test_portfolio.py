"""Portfolio runner: determinism, merging, checkpoints and resume."""

import numpy as np
import pytest

from repro.core.pareto import dominates
from repro.errors import StoreError
from repro.search import HillClimbStrategy, PortfolioRunner
from repro.store import ArtifactStore, RunLedger


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _run(space, models, *, workers=None, store=None, rounds=2,
         strategies=("hill", "nsga2:population_size=12", "random"),
         budget=500, seed=11, resume_from=None):
    qor, hw = models
    return PortfolioRunner(
        space, qor, hw, strategies=strategies, rounds=rounds,
        seed=seed, workers=workers, store=store,
    ).run(budget, resume_from=resume_from)


class TestPortfolioRun:
    def test_front_mutually_nondominated(self, sobel_space, models):
        result = _run(sobel_space, models)
        minimised = np.stack(
            [-result.points[:, 0], result.points[:, 1]], axis=1
        )
        for i in range(len(minimised)):
            for j in range(len(minimised)):
                assert not dominates(minimised[i], minimised[j])
        for config in result.configs:
            sobel_space.validate_configuration(config)

    def test_budget_spent_exactly(self, sobel_space, models):
        result = _run(sobel_space, models, budget=437)
        assert result.evaluations == 437
        assert sum(r.evaluations for r in result.islands) == 437

    def test_bit_identical_across_workers(self, sobel_space, models):
        serial = _run(sobel_space, models, workers=None)
        parallel = _run(sobel_space, models, workers=3)
        assert serial.configs == parallel.configs
        assert np.array_equal(serial.points, parallel.points)
        assert serial.evaluations == parallel.evaluations
        assert [
            (r.round, r.island, r.evaluations) for r in serial.islands
        ] == [
            (r.round, r.island, r.evaluations) for r in parallel.islands
        ]

    def test_deterministic_same_seed(self, sobel_space, models):
        a = _run(sobel_space, models, seed=4)
        b = _run(sobel_space, models, seed=4)
        assert a.configs == b.configs
        assert np.array_equal(a.points, b.points)


class TestCheckpointResume:
    def test_manifest_and_checkpoint_recorded(
        self, sobel_space, models, store
    ):
        result = _run(sobel_space, models, store=store, rounds=3)
        assert result.run_id is not None
        ledger = RunLedger(store.root)
        manifest = ledger.get(result.run_id)
        assert manifest["kind"] == "search"
        assert manifest["status"] == "complete"
        assert len(manifest["stages"]) == 3
        extra = manifest["extra"]
        assert extra["evaluations"] == result.evaluations
        payload = store.get(
            extra["checkpoint"]["kind"], extra["checkpoint"]["key"]
        )
        assert payload["round"] == 3
        assert payload["spent"] == result.evaluations
        assert len(payload["front"]["configs"]) == len(result)

    def test_interrupted_run_resumes_bit_identical(
        self, sobel_space, models, store
    ):
        """Kill the search after round 0; resume must reconverge exactly."""

        class Exploding(HillClimbStrategy):
            def run(self, *args, **kwargs):
                state = kwargs.get("state")
                if state.get("ran"):
                    raise RuntimeError("simulated crash")
                state["ran"] = True
                return super().run(*args, **kwargs)

        strategies = ("hill", "random")
        reference = _run(
            sobel_space, models, strategies=strategies, rounds=3,
            budget=450, seed=9,
        )

        qor, hw = models
        with pytest.raises(RuntimeError, match="simulated crash"):
            PortfolioRunner(
                sobel_space, qor, hw,
                strategies=(Exploding(), "random"), rounds=3,
                seed=9, store=store,
            ).run(450)
        partial = RunLedger(store.root).latest()
        assert partial["status"] == "partial"
        assert partial["extra"]["round"] == 1

        resumed = _run(
            sobel_space, models, strategies=strategies, rounds=3,
            budget=450, seed=9, store=store,
            resume_from=partial["run_id"],
        )
        assert resumed.configs == reference.configs
        assert np.array_equal(resumed.points, reference.points)
        assert resumed.evaluations == reference.evaluations
        manifest = RunLedger(store.root).get(resumed.run_id)
        assert manifest["status"] == "complete"
        assert manifest["extra"]["resumed_from"] == partial["run_id"]

    def test_resume_of_complete_run_returns_front(
        self, sobel_space, models, store
    ):
        done = _run(sobel_space, models, store=store)
        again = _run(
            sobel_space, models, store=store, resume_from=done.run_id,
        )
        assert again.configs == done.configs
        assert again.evaluations == done.evaluations
        assert again.run_id == done.run_id  # nothing new recorded

    def test_resume_rejects_mismatched_strategies(
        self, sobel_space, models, store
    ):
        done = _run(sobel_space, models, store=store)
        with pytest.raises(StoreError, match="do not match"):
            _run(
                sobel_space, models, store=store,
                strategies=("random",), resume_from=done.run_id,
            )

    def test_resume_without_store_rejected(self, sobel_space, models):
        with pytest.raises(StoreError, match="store"):
            _run(sobel_space, models, resume_from="nope")
