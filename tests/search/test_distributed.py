"""Distributed search: leases, worker crash recovery, topology identity.

The contract under test is the paper's determinism bar lifted onto a
work queue: however many workers execute the islands — in threads, in
processes, through a remote store, or after one of them dies mid-round
— the merged front is bit-identical to the single-process run.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import StoreError
from repro.search import DistributedExecutor, PortfolioRunner, run_worker
from repro.search.distributed import (
    ITEM_KIND,
    LEASE_KIND,
    QUEUE_KIND,
    RESULT_KIND,
    _acquire_lease,
    lease_key,
    lease_ttl,
)
from repro.store import ArtifactStore

STRATEGIES = ("hill", "nsga2:population_size=12", "random")


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _run(space, models, *, store=None, executor=None, budget=500,
         seed=11, rounds=2, strategies=STRATEGIES):
    qor, hw = models
    return PortfolioRunner(
        space, qor, hw, strategies=strategies, rounds=rounds,
        seed=seed, store=store, executor=executor,
    ).run(budget)


def _worker_main(store, **kwargs):
    try:
        run_worker(store, **kwargs)
    except StoreError:
        pass  # the served store shut down under us — test is over


def _drain_in_thread(store, *, n=1, idle_timeout=10.0, poll=0.02):
    """Start ``n`` worker threads draining ``store``; returns them."""
    threads = [
        threading.Thread(
            target=_worker_main,
            args=(store,),
            kwargs={
                "poll": poll,
                "idle_timeout": idle_timeout,
                "worker_id": f"test-worker-{i}",
            },
            daemon=True,
        )
        for i in range(n)
    ]
    for thread in threads:
        thread.start()
    return threads


def _assert_same_front(a, b):
    assert a.configs == b.configs
    assert np.array_equal(a.points, b.points)
    assert a.evaluations == b.evaluations
    assert [
        (r.round, r.island, r.strategy, r.evaluations, r.front_size)
        for r in a.islands
    ] == [
        (r.round, r.island, r.strategy, r.evaluations, r.front_size)
        for r in b.islands
    ]


class TestLeases:
    def test_fresh_lease_is_exclusive(self, store):
        assert _acquire_lease(store, "q", "item-1", "alice", ttl=30.0)
        assert not _acquire_lease(store, "q", "item-1", "bob",
                                  ttl=30.0)

    def test_expired_lease_is_taken_over(self, store):
        assert _acquire_lease(store, "q", "item-1", "alice", ttl=0.1)
        time.sleep(0.2)
        assert _acquire_lease(store, "q", "item-1", "bob", ttl=30.0)
        doc = store.get(LEASE_KIND, lease_key("item-1"))
        assert doc["worker"] == "bob"

    def test_ttl_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "2.5")
        assert lease_ttl() == 2.5
        monkeypatch.delenv("REPRO_LEASE_TTL")
        assert lease_ttl() == 30.0


class TestExecutor:
    def test_unbound_round_rejected(self):
        with pytest.raises(StoreError, match="not bound"):
            DistributedExecutor().run_round(0, [])

    def test_bind_requires_store(self):
        with pytest.raises(StoreError, match="store"):
            DistributedExecutor().bind(None, "q", context=None)

    def test_round_timeout_names_the_problem(self, store):
        executor = DistributedExecutor(
            poll_interval=0.02, timeout=0.2
        )
        executor.bind(store, "q", context=("ctx",))
        task = (0, {"rng": 1}, np.zeros((0, 2)), [], {}, 100)
        with pytest.raises(StoreError, match="workers running"):
            executor.run_round(0, [task])

    def test_distributed_requires_store(self, sobel_space, models):
        with pytest.raises(StoreError, match="store"):
            _run(sobel_space, models, store=None,
                 executor=DistributedExecutor())


class TestTopologyIdentity:
    def test_single_worker_matches_serial(
        self, sobel_space, models, store
    ):
        serial = _run(sobel_space, models)
        _drain_in_thread(store, n=1)
        dist = _run(
            sobel_space, models, store=store,
            executor=DistributedExecutor(
                poll_interval=0.02, timeout=120
            ),
        )
        _assert_same_front(serial, dist)

    def test_two_workers_match_serial(
        self, sobel_space, models, store
    ):
        serial = _run(sobel_space, models)
        _drain_in_thread(store, n=2)
        dist = _run(
            sobel_space, models, store=store,
            executor=DistributedExecutor(
                poll_interval=0.02, timeout=120
            ),
        )
        _assert_same_front(serial, dist)

    def test_queue_swept_after_run(self, sobel_space, models, store):
        _drain_in_thread(store, n=1)
        _run(
            sobel_space, models, store=store,
            executor=DistributedExecutor(
                poll_interval=0.02, timeout=120
            ),
        )
        for kind in (ITEM_KIND, RESULT_KIND, LEASE_KIND,
                     "search-context"):
            assert store.keys(kind) == []
        [qkey] = store.keys(QUEUE_KIND)
        assert store.get(QUEUE_KIND, qkey)["status"] == "done"

    def test_crashed_worker_lease_lapses_and_run_completes(
        self, sobel_space, models, store, monkeypatch
    ):
        """Items leased by a dead worker are re-executed bit-identically.

        Simulated crash: every item of round 0 is leased by a phantom
        worker that will never produce results.  With a short TTL the
        leases lapse and the live worker takes the items over.
        """
        monkeypatch.setenv("REPRO_LEASE_TTL", "0.5")
        serial = _run(sobel_space, models)

        executor = DistributedExecutor(poll_interval=0.02, timeout=120)
        original_run_round = executor.run_round
        state = {"sabotaged": False}

        def sabotaging_run_round(round_i, tasks):
            if not state["sabotaged"]:
                state["sabotaged"] = True
                from repro.search.distributed import item_key

                for task in tasks:
                    ikey = item_key(executor.queue_id, round_i,
                                    task[0])
                    assert _acquire_lease(
                        store, executor.queue_id, ikey,
                        "phantom-worker", ttl=0.5,
                    )
            return original_run_round(round_i, tasks)

        monkeypatch.setattr(executor, "run_round",
                            sabotaging_run_round)

        # Bind first so the phantom leases exist before the worker
        # starts scanning; the worker must wait out the TTL.
        _drain_in_thread(store, n=1, idle_timeout=20.0)
        dist = _run(sobel_space, models, store=store,
                    executor=executor)
        _assert_same_front(serial, dist)


class TestRemoteTopology:
    def test_remote_store_worker_matches_serial(
        self, sobel_space, models, tmp_path
    ):
        """Driver and worker meet only through a served HTTP store."""
        from repro.serve import (
            ApiKeyRegistry,
            Coordinator,
            ServeApp,
            ServerThread,
        )
        from repro.store import open_store

        serial = _run(sobel_space, models)

        app = ServeApp(
            Coordinator(
                store=ArtifactStore(tmp_path / "served")
            ),
            ApiKeyRegistry(None),
        )
        server = ServerThread(app).start()
        try:
            remote_store = open_store(server.base_url)
            _drain_in_thread(remote_store, n=1, idle_timeout=30.0)
            dist = _run(
                sobel_space, models, store=remote_store,
                executor=DistributedExecutor(
                    poll_interval=0.05, timeout=240
                ),
            )
        finally:
            server.stop()
        _assert_same_front(serial, dist)
