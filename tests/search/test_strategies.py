"""Budget-exactness of every strategy, verified against real call counts.

The acceptance bar of the accounting bugfix: with a counting-wrapper
model, each strategy's reported ``evaluations`` equals the number of
configurations passed to ``predict``, and the hill climber never issues
more model calls than ``max_evaluations``.
"""

import pytest

from repro.core.budget import EvaluationBudget
from repro.core.dse import heuristic_pareto_construction
from repro.errors import DSEError
from repro.search import PortfolioRunner, make_strategy


class TestHillClimberAccounting:
    """Regression: discarded batch tails must be counted (issue headline)."""

    def test_never_exceeds_max_evaluations(self, sobel_space,
                                           count_models):
        cq, ch = count_models()
        result = heuristic_pareto_construction(
            sobel_space, cq, ch, max_evaluations=257, rng=0,
            batch_size=64,
        )
        # Every configuration sent to the models is accounted for —
        # including the batch tails discarded after accepted moves and
        # restarts, which the seed implementation under-counted.
        assert cq.configs_predicted == result.evaluations
        assert ch.configs_predicted == result.evaluations
        assert cq.configs_predicted <= 257

    def test_spends_budget_exactly(self, sobel_space, count_models):
        cq, ch = count_models()
        result = heuristic_pareto_construction(
            sobel_space, cq, ch, max_evaluations=300, rng=3,
        )
        assert result.evaluations == 300
        assert cq.configs_predicted == 300

    def test_many_accepted_moves_still_exact(self, sobel_space,
                                             count_models):
        """Small batches + frequent inserts maximise discarded tails."""
        cq, ch = count_models()
        result = heuristic_pareto_construction(
            sobel_space, cq, ch, max_evaluations=199, rng=1,
            batch_size=8, stagnation_limit=3,
        )
        assert cq.configs_predicted == result.evaluations == 199


class TestStrategyAccounting:
    """Property: evaluations == true predict counts for all strategies."""

    @pytest.mark.parametrize(
        "spec,budget",
        [
            ("hill", 300),
            ("nsga2:population_size=20", 300),
            ("random", 200),
            ("exhaustive:batch_size=64", 150),
        ],
    )
    def test_evaluations_match_model_calls(
        self, spec, budget, sobel_space, count_models
    ):
        cq, ch = count_models()
        strategy = make_strategy(spec)
        result = strategy.run(
            sobel_space, cq, ch, budget=EvaluationBudget(budget), rng=2,
        )
        assert cq.configs_predicted == result.evaluations
        assert ch.configs_predicted == result.evaluations
        assert result.evaluations <= budget

    def test_portfolio_evaluations_exact(self, sobel_space,
                                         count_models):
        cq, ch = count_models()
        result = PortfolioRunner(
            sobel_space, cq, ch,
            strategies=("hill", "nsga2:population_size=12", "random"),
            rounds=2, seed=5, workers=None,
        ).run(401)
        # The portfolio spends the requested budget to the last call
        # (strategies with quantised spends are topped up by random
        # sampling) and every call is accounted.
        assert result.evaluations == 401
        assert cq.configs_predicted == 401
        assert ch.configs_predicted == 401

    def test_nsga2_tiny_slice_falls_back_to_sampling(
        self, sobel_space, count_models
    ):
        cq, ch = count_models()
        strategy = make_strategy("nsga2:population_size=40")
        result = strategy.run(
            sobel_space, cq, ch, budget=EvaluationBudget(5), rng=0,
        )
        assert result.evaluations == 5 == cq.configs_predicted

    def test_unlimited_budget_rejected(self, sobel_space, models):
        """Strategies size work from the budget; uncapped would hang."""
        qor, hw = models
        for spec in ("hill", "nsga2", "random"):
            with pytest.raises(DSEError, match="finite"):
                make_strategy(spec).run(
                    sobel_space, qor, hw, budget=EvaluationBudget(),
                    rng=0,
                )

    def test_exhaustive_caps_at_space_size(self, sobel_space,
                                           count_models):
        if sobel_space.size() > 50_000:
            pytest.skip("space too large for exhaustive reference")
        cq, ch = count_models()
        strategy = make_strategy("exhaustive")
        result = strategy.run(
            sobel_space, cq, ch,
            budget=EvaluationBudget(10**9), rng=0,
        )
        assert result.evaluations == sobel_space.size()
        assert cq.configs_predicted == result.evaluations


class TestMakeStrategy:
    def test_known_names(self):
        for spec, name in (
            ("hill", "hill"),
            ("nsga2", "nsga2"),
            ("random", "random"),
            ("exhaustive", "exhaustive"),
        ):
            assert make_strategy(spec).name == name

    def test_spec_arguments(self):
        strategy = make_strategy(
            "hill:stagnation_limit=7,batch_size=16"
        )
        assert strategy.stagnation_limit == 7
        assert strategy.batch_size == 16
        assert strategy.spec == "hill:stagnation_limit=7,batch_size=16"

    def test_unknown_name_and_bad_args(self):
        with pytest.raises(DSEError, match="unknown search strategy"):
            make_strategy("simulated-annealing")
        with pytest.raises(DSEError, match="bad arguments"):
            make_strategy("hill:frobnicate=1")
        with pytest.raises(DSEError, match="malformed"):
            make_strategy("hill:oops")
