"""Unit tests of the evaluation-budget ledger and metered estimator."""

import numpy as np
import pytest

from repro.core.budget import EvaluationBudget, MeteredEstimator
from repro.errors import BudgetExceededError, DSEError


class _Flat:
    """Fake model: predicts zeros, remembers nothing."""

    def predict(self, configs):
        return np.zeros(len(configs))


class TestEvaluationBudget:
    def test_grant_and_charge(self):
        budget = EvaluationBudget(10)
        assert budget.grant(4) == 4
        budget.charge(4)
        assert budget.spent == 4
        assert budget.remaining == 6
        assert budget.grant(100) == 6
        budget.charge(6)
        assert budget.exhausted
        assert budget.grant(1) == 0

    def test_charge_over_budget_raises(self):
        budget = EvaluationBudget(3)
        budget.charge(3)
        with pytest.raises(BudgetExceededError):
            budget.charge(1)
        assert budget.spent == 3  # failed charge did not commit

    def test_unlimited_budget_tracks_spend(self):
        budget = EvaluationBudget(None)
        budget.charge(1_000_000)
        assert budget.spent == 1_000_000
        assert not budget.exhausted
        assert budget.grant(7) == 7

    def test_invalid_values(self):
        with pytest.raises(DSEError):
            EvaluationBudget(0)
        budget = EvaluationBudget(5)
        with pytest.raises(DSEError):
            budget.grant(-1)
        with pytest.raises(DSEError):
            budget.charge(-1)


class TestMeteredEstimator:
    def test_counts_every_configuration(self):
        budget = EvaluationBudget(10)
        estimator = MeteredEstimator(_Flat(), _Flat(), budget)
        out = estimator.estimate([(0,), (1,), (2,)])
        assert out.shape == (3, 2)
        assert estimator.count == 3
        assert budget.spent == 3

    def test_refuses_overdraw_before_model_call(self):
        class Exploding:
            def predict(self, configs):  # pragma: no cover - must not run
                raise AssertionError("model called past the budget")

        budget = EvaluationBudget(2)
        estimator = MeteredEstimator(Exploding(), Exploding(), budget)
        with pytest.raises(BudgetExceededError):
            estimator.estimate([(0,), (1,), (2,)])
        assert budget.spent == 0

    def test_empty_batch_is_free(self):
        budget = EvaluationBudget(1)
        estimator = MeteredEstimator(_Flat(), _Flat(), budget)
        assert estimator.estimate([]).shape == (0, 2)
        assert budget.spent == 0
