"""Unit tests of the evaluation-budget ledger and metered estimator."""

import numpy as np
import pytest

from repro.core.budget import EvaluationBudget, MeteredEstimator
from repro.errors import BudgetExceededError, DSEError


class _Flat:
    """Fake model: predicts zeros, remembers nothing."""

    def predict(self, configs):
        return np.zeros(len(configs))


class TestEvaluationBudget:
    def test_grant_and_charge(self):
        budget = EvaluationBudget(10)
        assert budget.grant(4) == 4
        budget.charge(4)
        assert budget.spent == 4
        assert budget.remaining == 6
        assert budget.grant(100) == 6
        budget.charge(6)
        assert budget.exhausted
        assert budget.grant(1) == 0

    def test_charge_over_budget_raises(self):
        budget = EvaluationBudget(3)
        budget.charge(3)
        with pytest.raises(BudgetExceededError):
            budget.charge(1)
        assert budget.spent == 3  # failed charge did not commit

    def test_unlimited_budget_tracks_spend(self):
        budget = EvaluationBudget(None)
        budget.charge(1_000_000)
        assert budget.spent == 1_000_000
        assert not budget.exhausted
        assert budget.grant(7) == 7

    def test_invalid_values(self):
        with pytest.raises(DSEError):
            EvaluationBudget(0)
        budget = EvaluationBudget(5)
        with pytest.raises(DSEError):
            budget.grant(-1)
        with pytest.raises(DSEError):
            budget.charge(-1)


class TestMeteredEstimator:
    def test_counts_every_configuration(self):
        budget = EvaluationBudget(10)
        estimator = MeteredEstimator(_Flat(), _Flat(), budget)
        out = estimator.estimate([(0,), (1,), (2,)])
        assert out.shape == (3, 2)
        assert estimator.count == 3
        assert budget.spent == 3

    def test_refuses_overdraw_before_model_call(self):
        class Exploding:
            def predict(self, configs):  # pragma: no cover - must not run
                raise AssertionError("model called past the budget")

        budget = EvaluationBudget(2)
        estimator = MeteredEstimator(Exploding(), Exploding(), budget)
        with pytest.raises(BudgetExceededError):
            estimator.estimate([(0,), (1,), (2,)])
        assert budget.spent == 0

    def test_empty_batch_is_free(self):
        budget = EvaluationBudget(1)
        estimator = MeteredEstimator(_Flat(), _Flat(), budget)
        assert estimator.estimate([]).shape == (0, 2)
        assert budget.spent == 0


class TestBudgetConcurrency:
    """The serving layer shares one budget across threads; spend must
    land on the nominal total exactly — never past it, never short of
    what was granted."""

    def test_hammered_charge_never_overspends(self):
        import threading

        budget = EvaluationBudget(1_000)
        overdrafts = []

        def worker():
            for _ in range(100):
                try:
                    budget.charge(1)
                except BudgetExceededError:
                    overdrafts.append(1)

        threads = [threading.Thread(target=worker) for _ in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 20 x 100 = 2000 attempted, cap 1000: exactly 1000 land.
        assert budget.spent == 1_000
        assert len(overdrafts) == 1_000
        assert budget.exhausted

    def test_hammered_reserve_spends_budget_exactly(self):
        import threading

        budget = EvaluationBudget(997)  # prime: no lucky alignment
        granted = []
        lock = threading.Lock()

        def worker():
            while True:
                got = budget.reserve(13)
                if got == 0:
                    return
                with lock:
                    granted.append(got)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(granted) == 997
        assert budget.spent == 997

    def test_reserve_caps_and_commits(self):
        budget = EvaluationBudget(10)
        assert budget.reserve(7) == 7
        assert budget.reserve(7) == 3
        assert budget.reserve(7) == 0
        assert budget.spent == 10
        with pytest.raises(DSEError):
            budget.reserve(-1)

    def test_unlimited_reserve_grants_everything(self):
        budget = EvaluationBudget(None)
        assert budget.reserve(1_000_000) == 1_000_000
        assert budget.spent == 1_000_000

    def test_budget_pickles_without_lock(self):
        import pickle

        budget = EvaluationBudget(50)
        budget.charge(20)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.total == 50
        assert clone.spent == 20
        clone.charge(30)  # the rebuilt lock works
        with pytest.raises(BudgetExceededError):
            clone.charge(1)

    def test_metered_estimator_hammered_spend_matches_count(self):
        import threading

        budget = EvaluationBudget(600)
        estimator = MeteredEstimator(_Flat(), _Flat(), budget)
        rejected = []

        def worker():
            for _ in range(50):
                try:
                    estimator.estimate([(0,), (1,)])
                except BudgetExceededError:
                    rejected.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 8 x 50 x 2 = 800 attempted; exactly the 600 cap lands, and
        # the estimator's own count agrees with the ledger.
        assert budget.spent == 600
        assert estimator.count == 600
        assert len(rejected) == 100

    def test_metered_estimator_pickles_without_lock(self):
        import pickle

        estimator = MeteredEstimator(
            _Flat(), _Flat(), EvaluationBudget(10)
        )
        estimator.estimate([(0,)])
        clone = pickle.loads(pickle.dumps(estimator))
        assert clone.count == 1
        clone.estimate([(1,)])
        assert clone.budget.spent == 2
