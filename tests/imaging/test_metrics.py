import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.datasets import synthetic_image
from repro.imaging.metrics import BatchedSsim, mse, psnr, ssim, ssim_batch


@pytest.fixture(scope="module")
def image():
    return synthetic_image(0, shape=(64, 96)).astype(float)


class TestMSE:
    def test_identity(self, image):
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert mse(a, b) == 4.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(4), np.zeros(4))


class TestPSNR:
    def test_identical_is_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_monotone_in_noise(self, image):
        rng = np.random.default_rng(0)
        small = image + rng.normal(0, 1, image.shape)
        large = image + rng.normal(0, 8, image.shape)
        assert psnr(image, small) > psnr(image, large)


class TestSSIM:
    def test_identity(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_symmetry(self, image):
        rng = np.random.default_rng(1)
        other = np.clip(image + rng.normal(0, 10, image.shape), 0, 255)
        assert ssim(image, other) == pytest.approx(
            ssim(other, image), abs=1e-12
        )

    def test_bounded(self, image):
        inverted = 255.0 - image
        value = ssim(image, inverted)
        assert -1.0 <= value <= 1.0

    def test_degrades_with_noise(self, image):
        rng = np.random.default_rng(2)
        mild = np.clip(image + rng.normal(0, 2, image.shape), 0, 255)
        harsh = np.clip(image + rng.normal(0, 30, image.shape), 0, 255)
        assert ssim(image, mild) > ssim(image, harsh)

    def test_constant_shift_high_similarity(self, image):
        shifted = np.clip(image + 2.0, 0, 255)
        assert ssim(image, shifted) > 0.95

    def test_invalid_data_range(self, image):
        with pytest.raises(ValueError):
            ssim(image, image, data_range=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=20),
           st.floats(min_value=0.5, max_value=10.0))
    def test_noise_never_beats_identity(self, seed, sigma):
        img = synthetic_image(1, shape=(32, 48)).astype(float)
        noisy = np.clip(
            img + np.random.default_rng(seed).normal(0, sigma, img.shape),
            0, 255,
        )
        assert ssim(img, noisy) <= 1.0 + 1e-9


class TestBatchedSsim:
    @pytest.fixture(scope="class")
    def stacks(self):
        rng = np.random.default_rng(3)
        reference = np.stack(
            [
                synthetic_image(k, shape=(48, 64)).astype(float)
                for k in range(4)
            ]
        )
        test = np.clip(
            reference + rng.normal(0, 15, reference.shape), 0, 255
        )
        return reference, test

    def test_matches_scalar_ssim(self, stacks):
        reference, test = stacks
        batch = ssim_batch(reference, test)
        scalar = np.array(
            [ssim(reference[k], test[k]) for k in range(4)]
        )
        assert np.allclose(batch, scalar, atol=1e-12)

    def test_identity_stack(self, stacks):
        reference, _ = stacks
        assert np.allclose(ssim_batch(reference, reference), 1.0)

    def test_reference_reuse(self, stacks):
        """One precomputed reference scores many test stacks."""
        reference, test = stacks
        scorer = BatchedSsim(reference)
        assert np.allclose(scorer(test), ssim_batch(reference, test))
        assert np.allclose(scorer(reference), 1.0)

    def test_shape_validation(self, stacks):
        reference, _ = stacks
        with pytest.raises(ValueError):
            BatchedSsim(reference[0])  # 2-D, not a stack
        scorer = BatchedSsim(reference)
        with pytest.raises(ValueError):
            scorer(reference[:, :24, :])

    def test_invalid_data_range(self, stacks):
        reference, _ = stacks
        with pytest.raises(ValueError):
            BatchedSsim(reference, data_range=0.0)
