import numpy as np
import pytest

from repro.imaging.datasets import DEFAULT_SHAPE, benchmark_images, synthetic_image


class TestSyntheticImage:
    def test_shape_and_dtype(self):
        img = synthetic_image(0)
        assert img.shape == DEFAULT_SHAPE
        assert img.dtype == np.uint8

    def test_deterministic(self):
        assert np.array_equal(synthetic_image(3), synthetic_image(3))

    def test_indices_differ(self):
        assert not np.array_equal(synthetic_image(0), synthetic_image(1))

    def test_custom_shape(self):
        img = synthetic_image(0, shape=(32, 48))
        assert img.shape == (32, 48)

    def test_uses_full_dynamic_range(self):
        img = synthetic_image(0)
        assert img.min() == 0
        assert img.max() == 255

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            synthetic_image(-1)

    def test_neighbour_correlation(self):
        """Natural-image statistics: adjacent pixels are correlated
        (the property behind the paper's Fig. 3 PMFs)."""
        img = synthetic_image(0).astype(float)
        left = img[:, :-1].reshape(-1)
        right = img[:, 1:].reshape(-1)
        corr = np.corrcoef(left, right)[0, 1]
        assert corr > 0.9


class TestBenchmarkImages:
    def test_count(self):
        imgs = benchmark_images(3, shape=(16, 16))
        assert len(imgs) == 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            benchmark_images(0)

    def test_images_are_prefix_stable(self):
        a = benchmark_images(2, shape=(16, 16))
        b = benchmark_images(3, shape=(16, 16))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
