import pytest

from repro.errors import NetlistError
from repro.netlist.cells import CELLS, macro_cell
from repro.netlist.netlist import CONST0, CONST1, Netlist


class TestConstruction:
    def test_new_nets_unique(self):
        nl = Netlist()
        nets = nl.new_nets(5)
        assert len(set(nets)) == 5
        assert CONST0 not in nets and CONST1 not in nets

    def test_add_input_output(self):
        nl = Netlist()
        a = nl.add_input("a", 4)
        assert len(a) == 4
        nl.add_output("y", a)
        assert nl.outputs["y"] == a

    def test_duplicate_port_rejected(self):
        nl = Netlist()
        nl.add_input("a", 2)
        with pytest.raises(NetlistError):
            nl.add_input("a", 2)
        nl.add_output("y", [CONST0])
        with pytest.raises(NetlistError):
            nl.add_output("y", [CONST0])

    def test_gate_pin_counts_checked(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        with pytest.raises(NetlistError):
            nl.add_gate(CELLS["AND2"], [a[0]])
        with pytest.raises(NetlistError):
            nl.add_gate(CELLS["AND2"], a, outputs=[1, 2])

    def test_area_power_counts(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        nl.add_gate(CELLS["AND2"], a)
        nl.add_gate(CELLS["XOR2"], a)
        assert nl.gate_count() == 2
        assert nl.area() == pytest.approx(
            CELLS["AND2"].area + CELLS["XOR2"].area
        )
        assert nl.cell_histogram() == {"AND2": 1, "XOR2": 1}


class TestValidation:
    def test_cycle_detected(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        n1 = nl.new_net()
        n2 = nl.new_net()
        nl.add_gate(CELLS["AND2"], [a[0], n2], outputs=[n1])
        nl.add_gate(CELLS["AND2"], [a[0], n1], outputs=[n2])
        nl.add_output("y", [n1])
        with pytest.raises(NetlistError, match="cycle"):
            nl.validate()

    def test_multiple_drivers_detected(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        n = nl.new_net()
        nl.add_gate(CELLS["AND2"], a, outputs=[n])
        nl.add_gate(CELLS["OR2"], a, outputs=[n])
        nl.add_output("y", [n])
        with pytest.raises(NetlistError, match="drivers"):
            nl.validate()

    def test_undriven_output_detected(self):
        nl = Netlist()
        nl.add_input("a", 1)
        nl.add_output("y", [99])
        with pytest.raises(NetlistError):
            nl.validate()

    def test_valid_netlist_passes(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        (out,) = nl.add_gate(CELLS["AND2"], a)
        nl.add_output("y", [out])
        nl.validate()


class TestInstantiate:
    def _and_block(self):
        inner = Netlist("inner")
        a = inner.add_input("a", 2)
        (out,) = inner.add_gate(CELLS["AND2"], a)
        inner.add_output("y", [out])
        return inner

    def test_copies_gates(self):
        outer = Netlist("outer")
        x = outer.add_input("x", 2)
        result = outer.instantiate(self._and_block(), {"a": x})
        assert outer.gate_count() == 1
        assert "y" in result and len(result["y"]) == 1

    def test_width_mismatch(self):
        outer = Netlist()
        x = outer.add_input("x", 3)
        with pytest.raises(NetlistError):
            outer.instantiate(self._and_block(), {"a": x})

    def test_missing_port(self):
        outer = Netlist()
        with pytest.raises(NetlistError):
            outer.instantiate(self._and_block(), {})

    def test_constants_map_through(self):
        inner = Netlist("inner")
        inner.add_input("a", 1)
        inner.add_output("y", [CONST1])
        outer = Netlist()
        x = outer.add_input("x", 1)
        result = outer.instantiate(inner, {"a": x})
        assert result["y"] == [CONST1]


class TestMacroCell:
    def test_macro_flag(self):
        m = macro_cell("M", 10.0, 0.1, 2.0, 4, 4)
        assert m.is_macro
        assert not CELLS["FA"].is_macro

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            macro_cell("M", -1.0, 0.1, 2.0, 4, 4)
