"""Structural builders must implement exactly their behavioural models.

These are the load-bearing tests of the netlist substrate: for every
circuit family and several parameterisations, the raw netlist and the
synthesised netlist are simulated against ``circuit.evaluate``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    AlmostCorrectAdder,
    GeArAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.base import ExactAdder, ExactMultiplier, ExactSubtractor
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    MitchellMultiplier,
    PerforatedMultiplier,
    RecursiveApproxMultiplier,
    TruncatedMultiplier,
)
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.errors import NetlistError
from repro.netlist.builders import build_netlist
from repro.netlist.simulate import simulate
from repro.synthesis.synthesizer import optimize
from repro.utils.bitops import bit_mask


def assert_equivalent(circuit, n_samples=600, seed=0, optimized=True):
    netlist = build_netlist(circuit)
    if optimized:
        optimize(netlist)
        netlist.validate()
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << circuit.width, n_samples)
    b = rng.integers(0, 1 << circuit.width, n_samples)
    got = simulate(netlist, {"a": a, "b": b})["y"]
    want = np.asarray(circuit.evaluate(a, b)) & bit_mask(
        circuit.result_width
    )
    assert np.array_equal(got, want), circuit.name


CASES = [
    ExactAdder(4),
    ExactAdder(8),
    ExactAdder(16),
    TruncatedAdder(8, 1, "zero"),
    TruncatedAdder(8, 5, "half"),
    TruncatedAdder(8, 8, "copy"),
    LowerOrAdder(8, 1),
    LowerOrAdder(8, 8),
    AlmostCorrectAdder(8, 1),
    AlmostCorrectAdder(8, 5),
    AlmostCorrectAdder(9, 4),
    QuAdAdder(8, [4, 4], [0, 2]),
    QuAdAdder(9, [3, 3, 3], [0, 3, 2]),
    QuAdAdder(16, [4, 4, 4, 4], [0, 4, 2, 1]),
    GeArAdder(8, 2, 2),
    GeArAdder(16, 4, 4),
    ExactSubtractor(10),
    ExactSubtractor(16),
    TruncatedSubtractor(10, 3, "zero"),
    TruncatedSubtractor(10, 6, "copy"),
    TruncatedSubtractor(16, 8, "zero"),
    BlockSubtractor(10, [5, 5], [0, 3]),
    BlockSubtractor(16, [4, 6, 6], [0, 2, 4]),
    ExactMultiplier(4),
    ExactMultiplier(8),
    BrokenArrayMultiplier(8, 4, 6),
    BrokenArrayMultiplier(8, 10, 3),
    TruncatedMultiplier(8, 3, 2),
    PerforatedMultiplier(8, [1, 4]),
    RecursiveApproxMultiplier(4, [0, 3]),
    RecursiveApproxMultiplier(8, []),
    RecursiveApproxMultiplier(8, [0, 5, 10, 15]),
    RecursiveApproxMultiplier(8, list(range(16))),
]


@pytest.mark.parametrize("circuit", CASES, ids=lambda c: c.name)
def test_netlist_equivalence(circuit):
    assert_equivalent(circuit)


@pytest.mark.parametrize("circuit", CASES[:8], ids=lambda c: c.name)
def test_unoptimised_netlist_equivalence(circuit):
    assert_equivalent(circuit, optimized=False)


class TestMacroBuilders:
    @pytest.mark.parametrize(
        "circuit",
        [MitchellMultiplier(8, 6), DrumMultiplier(8, 4)],
        ids=lambda c: c.name,
    )
    def test_macro_structure(self, circuit):
        netlist = build_netlist(circuit)
        netlist.validate()
        assert netlist.gate_count() == 1
        gate = next(netlist.live_gates())
        assert gate.cell.is_macro
        assert gate.cell.area > 0

    def test_mitchell_cheaper_than_exact_array(self):
        exact = build_netlist(ExactMultiplier(8))
        optimize(exact)
        mitchell = build_netlist(MitchellMultiplier(8, 6))
        assert mitchell.area() < exact.area()

    def test_drum_smaller_for_smaller_k(self):
        a4 = build_netlist(DrumMultiplier(8, 4)).area()
        a6 = build_netlist(DrumMultiplier(8, 6)).area()
        assert a4 < a6


class TestBuilderDispatch:
    def test_unknown_family_rejected(self):
        class Fake:
            pass

        with pytest.raises(NetlistError):
            build_netlist(Fake())


class TestHardwareTrends:
    def test_truncation_shrinks_adders(self):
        areas = []
        for t in (0, 3, 6):
            nl = build_netlist(TruncatedAdder(8, t, "zero"))
            optimize(nl)
            areas.append(nl.area())
        assert areas[0] > areas[1] > areas[2]

    def test_speculation_shortens_critical_path(self):
        from repro.synthesis.timing import critical_path_delay

        exact = build_netlist(ExactAdder(16))
        optimize(exact)
        aca = build_netlist(AlmostCorrectAdder(16, 4))
        optimize(aca)
        assert critical_path_delay(aca) < critical_path_delay(exact)

    def test_bam_cheaper_than_exact(self):
        exact = build_netlist(ExactMultiplier(8))
        optimize(exact)
        bam = build_netlist(BrokenArrayMultiplier(8, 8, 4))
        optimize(bam)
        assert bam.area() < exact.area()


@settings(max_examples=20, deadline=None)
@given(
    blocks=st.lists(
        st.integers(min_value=1, max_value=5), min_size=1, max_size=4
    ).filter(lambda b: sum(b) <= 10),
)
def test_random_quad_netlists_equivalent(blocks):
    """Property: any valid QuAd partition lowers to an equivalent netlist."""
    width = sum(blocks)
    predictions = [0] + [
        min(2, sum(blocks[:k])) for k in range(1, len(blocks))
    ]
    circuit = QuAdAdder(width, blocks, predictions)
    assert_equivalent(circuit, n_samples=200)
