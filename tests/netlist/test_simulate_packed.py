"""Bit-packed simulation: equivalence with word mode, pack/unpack."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.library.generation import (
    enumerate_adders,
    enumerate_multipliers,
    enumerate_subtractors,
)
from repro.netlist.builders import build_netlist
from repro.netlist.cells import macro_cell
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import (
    PACKED_THRESHOLD,
    pack_bits,
    simulate,
    simulate_packed,
    unpack_bits,
)


class TestPackUnpack:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 200, 1024])
    def test_roundtrip(self, n, rng):
        bits = rng.integers(0, 2, size=n)
        words = pack_bits(bits)
        assert words.dtype == np.dtype("<u8")
        assert words.size == (n + 63) // 64
        assert np.array_equal(unpack_bits(words, n), bits)

    def test_tail_lanes_zero_filled(self):
        words = pack_bits(np.ones(5, dtype=np.int64))
        assert int(words[0]) == 0b11111


def random_netlists():
    """Structurally diverse netlists from every circuit family.

    Macro-bearing netlists (DRUM/Mitchell lower to opaque cells) are
    excluded — they are not simulatable in either mode.
    """
    circuits = (
        enumerate_adders(5, 12, rng=3)
        + enumerate_subtractors(5, 6, rng=4)
        + enumerate_multipliers(4, 10, rng=5)
    )
    out = []
    for circuit in circuits:
        netlist = build_netlist(circuit)
        if any(g.cell.is_macro for g in netlist.live_gates()):
            continue
        out.append((circuit.name, netlist))
    return out


class TestEquivalence:
    @pytest.mark.parametrize(
        "name,netlist", random_netlists(), ids=lambda v: str(v)
        if isinstance(v, str) else "",
    )
    def test_packed_equals_word_mode(self, name, netlist, rng):
        inputs = {
            port: rng.integers(0, 1 << len(nets), size=333)
            for port, nets in netlist.inputs.items()
        }
        word = simulate(netlist, inputs, packed=False)
        packed = simulate_packed(netlist, inputs)
        assert set(word) == set(packed)
        for port in word:
            assert np.array_equal(word[port], packed[port]), (
                name, port,
            )

    def test_auto_mode_picks_packed_above_threshold(self, rng):
        netlist = build_netlist(enumerate_adders(4, 1)[0])
        n = PACKED_THRESHOLD
        inputs = {
            "a": rng.integers(0, 16, size=n),
            "b": rng.integers(0, 16, size=n),
        }
        auto = simulate(netlist, inputs)
        forced = simulate(netlist, inputs, packed=True)
        word = simulate(netlist, inputs, packed=False)
        for port in word:
            assert np.array_equal(auto[port], word[port])
            assert np.array_equal(forced[port], word[port])

    def test_constants_and_scalar_broadcast(self):
        nl = Netlist()
        nl.add_input("a", 1)
        nl.add_output("y", [1, 0, 1])  # CONST1, CONST0, CONST1
        vec = np.zeros(200, dtype=np.int64)
        out = simulate(nl, {"a": vec}, packed=True)["y"]
        assert np.array_equal(out, np.full(200, 0b101))

    def test_mixed_scalar_and_vector_inputs(self, rng):
        netlist = build_netlist(enumerate_adders(4, 1)[0])
        b = rng.integers(0, 16, size=256)
        packed = simulate(netlist, {"a": 7, "b": b}, packed=True)
        word = simulate(
            netlist, {"a": np.full(256, 7), "b": b}, packed=False
        )
        for port in word:
            assert np.array_equal(packed[port], word[port])

    def test_scalar_only_falls_back_to_word_mode(self):
        netlist = build_netlist(enumerate_adders(4, 1)[0])
        out = simulate(netlist, {"a": 3, "b": 5}, packed=True)
        assert all(np.isscalar(v) or v.ndim == 0 for v in out.values())


class TestErrors:
    def test_missing_input_packed(self):
        netlist = build_netlist(enumerate_adders(4, 1)[0])
        with pytest.raises(NetlistError, match="missing"):
            simulate(netlist, {"a": np.zeros(256)}, packed=True)

    def test_macro_not_simulatable_packed(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        cell = macro_cell("M", 1.0, 0.1, 1.0, 2, 1)
        outs = nl.add_gate(cell, a)
        nl.add_output("y", outs)
        with pytest.raises(NetlistError, match="macro"):
            simulate(nl, {"a": np.zeros(256, dtype=np.int64)},
                     packed=True)
