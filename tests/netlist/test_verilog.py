import re

import pytest

from repro.circuits.adders import QuAdAdder, TruncatedAdder
from repro.circuits.base import ExactAdder, ExactSubtractor
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    MitchellMultiplier,
)
from repro.library.component import record_from_circuit
from repro.netlist.builders import build_netlist
from repro.netlist.verilog import _sanitize, to_verilog
from repro.synthesis.synthesizer import optimize


class TestSanitize:
    def test_plain_name_unchanged(self):
        assert _sanitize("add8_exact") == "add8_exact"

    def test_illegal_chars_replaced(self):
        assert _sanitize("a-b.c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert _sanitize("8bit").startswith("m_")


class TestToVerilog:
    def test_module_structure(self):
        text = to_verilog(build_netlist(ExactAdder(8)))
        assert text.startswith("module add8_exact")
        assert "input  [7:0] a;" in text
        assert "input  [7:0] b;" in text
        assert "output [8:0] y;" in text
        assert text.rstrip().endswith("endmodule")

    def test_one_assign_per_fa(self):
        nl = build_netlist(ExactAdder(4))
        text = to_verilog(nl)
        # each FA contributes a sum and a carry assign
        assert text.count("assign") >= 2 * 4

    def test_balanced_module_endmodule(self):
        for circuit in (
            TruncatedAdder(8, 3, "half"),
            QuAdAdder(8, [4, 4], [0, 2]),
            ExactSubtractor(10),
            BrokenArrayMultiplier(8, 5, 4),
        ):
            text = to_verilog(build_netlist(circuit))
            assert len(re.findall(r"^module ", text, re.M)) == len(
                re.findall(r"^endmodule", text, re.M)
            )

    def test_constants_rendered(self):
        text = to_verilog(build_netlist(TruncatedAdder(8, 4, "zero")))
        assert "1'b0" in text

    def test_macro_black_box(self):
        text = to_verilog(build_netlist(MitchellMultiplier(8, 6)))
        assert "// black box" in text
        assert "MITCHELL_8_6" in text

    def test_optimised_netlist_exports(self):
        nl = build_netlist(QuAdAdder(16, [8, 8], [0, 4]))
        optimize(nl)
        text = to_verilog(nl)
        assert "module" in text

    def test_composed_accelerator_exports(self):
        from repro.accelerators.sobel import SobelEdgeDetector
        from repro.circuits.base import ExactAdder as EA

        acc = SobelEdgeDetector()
        records = {}
        for slot in acc.op_slots():
            kind, width = slot.signature
            circuit = (
                EA(width) if kind == "add" else ExactSubtractor(width)
            )
            records[slot.name] = record_from_circuit(
                circuit, sample_size=1 << 8
            )
        text = to_verilog(acc.to_netlist(records), module_name="sobel")
        assert text.startswith("module sobel")
        for k in range(9):
            assert f"input  [7:0] x{k};" in text
        assert "output [7:0] out;" in text

    def test_custom_module_name(self):
        text = to_verilog(build_netlist(ExactAdder(4)), "my-adder")
        assert text.startswith("module my_adder")
