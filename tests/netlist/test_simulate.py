import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.cells import CELLS, macro_cell
from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.netlist.simulate import simulate


def single_gate(cell_name, n_inputs):
    nl = Netlist()
    ins = [nl.add_input(f"i{k}", 1)[0] for k in range(n_inputs)]
    outs = nl.add_gate(CELLS[cell_name], ins)
    for k, net in enumerate(outs):
        nl.add_output(f"o{k}", [net])
    return nl, ins


TRUTH = {
    "INV": (1, [(0, 1), (1, 0)]),
    "AND2": (2, [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]),
    "NAND2": (2, [(0, 0, 1), (1, 1, 0), (1, 0, 1)]),
    "OR2": (2, [(0, 0, 0), (0, 1, 1), (1, 1, 1)]),
    "NOR2": (2, [(0, 0, 1), (1, 0, 0)]),
    "XOR2": (2, [(0, 1, 1), (1, 1, 0)]),
    "XNOR2": (2, [(0, 1, 0), (1, 1, 1)]),
    "MAJ3": (3, [(0, 0, 1, 0), (0, 1, 1, 1), (1, 1, 1, 1), (1, 0, 0, 0)]),
    "XOR3": (3, [(1, 1, 1, 1), (1, 1, 0, 0), (1, 0, 0, 1)]),
}


class TestGateSemantics:
    @pytest.mark.parametrize("cell", sorted(TRUTH))
    def test_truth_tables(self, cell):
        n, rows = TRUTH[cell]
        nl, _ = single_gate(cell, n)
        for row in rows:
            inputs = {f"i{k}": row[k] for k in range(n)}
            assert simulate(nl, inputs)["o0"] == row[-1], (cell, row)

    def test_mux(self):
        nl, _ = single_gate("MUX2", 3)
        # inputs: (d0, d1, sel)
        assert simulate(nl, {"i0": 1, "i1": 0, "i2": 0})["o0"] == 1
        assert simulate(nl, {"i0": 1, "i1": 0, "i2": 1})["o0"] == 0

    def test_full_adder(self):
        nl, _ = single_gate("FA", 3)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    out = simulate(nl, {"i0": a, "i1": b, "i2": c})
                    total = a + b + c
                    assert out["o0"] == total & 1
                    assert out["o1"] == total >> 1

    def test_half_adder(self):
        nl, _ = single_gate("HA", 2)
        out = simulate(nl, {"i0": 1, "i1": 1})
        assert out["o0"] == 0 and out["o1"] == 1


class TestVectorised:
    def test_array_inputs(self):
        nl, _ = single_gate("AND2", 2)
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        out = simulate(nl, {"i0": a, "i1": b})["o0"]
        assert np.array_equal(out, [0, 0, 0, 1])

    def test_word_output_packing(self):
        nl = Netlist()
        a = nl.add_input("a", 3)
        nl.add_output("y", list(a))
        vals = np.array([0, 3, 5, 7])
        assert np.array_equal(simulate(nl, {"a": vals})["y"], vals)

    def test_constants(self):
        nl = Netlist()
        nl.add_input("a", 1)
        nl.add_output("y", [CONST1, CONST0, CONST1])
        assert simulate(nl, {"a": 0})["y"] == 0b101


class TestErrors:
    def test_missing_input(self):
        nl, _ = single_gate("AND2", 2)
        with pytest.raises(NetlistError, match="missing"):
            simulate(nl, {"i0": 1})

    def test_macro_not_simulatable(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        cell = macro_cell("M", 1.0, 0.1, 1.0, 2, 1)
        outs = nl.add_gate(cell, a)
        nl.add_output("y", outs)
        with pytest.raises(NetlistError, match="macro"):
            simulate(nl, {"a": 3})
