"""Unit tests of the serve API-key registry and metering accounts."""

import pytest

from repro.errors import ValidationError
from repro.serve.auth import (
    ApiKeyRegistry,
    ClientAccount,
    parse_key_spec,
)


class TestParseKeySpec:
    def test_full_spec(self):
        name, secret, budget = parse_key_spec("alice=sk-123:5000")
        assert (name, secret, budget) == ("alice", "sk-123", 5000)

    def test_bare_secret_gets_digest_name(self):
        name, secret, budget = parse_key_spec("sk-123")
        assert secret == "sk-123"
        assert budget is None
        assert len(name) == 12
        assert "sk-123" not in name  # never leak the secret

    def test_secret_without_budget(self):
        assert parse_key_spec("bob=hunter2") == ("bob", "hunter2", None)

    @pytest.mark.parametrize("spec", ["=secret", "name=", "name=:5",
                                      ":100"])
    def test_empty_parts_rejected(self, spec):
        with pytest.raises(ValidationError, match="API-key"):
            parse_key_spec(spec)

    @pytest.mark.parametrize("spec", ["a=s:none", "a=s:", "a=s:1.5",
                                      "a=s:0"])
    def test_bad_budget_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_key_spec(spec)


class TestApiKeyRegistry:
    def test_open_mode_maps_everyone_to_anonymous(self):
        registry = ApiKeyRegistry()
        assert not registry.enabled
        account = registry.authenticate(None)
        assert account is registry.authenticate("whatever")
        assert account.name == "anonymous"
        assert account.unlimited

    def test_enabled_mode_requires_known_secret(self):
        registry = ApiKeyRegistry("alice=sk-a:100,bob=sk-b")
        assert registry.enabled
        assert registry.authenticate(None) is None
        assert registry.authenticate("") is None
        assert registry.authenticate("sk-x") is None
        alice = registry.authenticate("sk-a")
        assert alice.name == "alice"
        assert alice.budget.total == 100
        bob = registry.authenticate("sk-b")
        assert bob.unlimited

    def test_blank_entries_skipped(self):
        registry = ApiKeyRegistry(" , alice=sk-a , ")
        assert [a.name for a in registry.accounts] == ["alice"]

    def test_duplicate_secret_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ApiKeyRegistry("a=same,b=same")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_KEYS", "ci=sk-ci:42")
        registry = ApiKeyRegistry.from_env()
        assert registry.authenticate("sk-ci").budget.total == 42

    def test_account_doc_is_secret_free(self):
        registry = ApiKeyRegistry("alice=topsecret:10")
        doc = registry.authenticate("topsecret").doc()
        assert "topsecret" not in str(doc)
        assert doc["budget"] == 10
        assert doc["spent"] == 0

    def test_accounts_persist_across_requests(self):
        registry = ApiKeyRegistry("alice=sk-a:100")
        first = registry.authenticate("sk-a")
        first.budget.charge(60)
        again = registry.authenticate("sk-a")
        assert again is first
        assert again.budget.spent == 60


class TestClientAccount:
    def test_unlimited_property(self):
        assert ClientAccount(name="x", key_id="y").unlimited
