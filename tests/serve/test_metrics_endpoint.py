"""``GET /v1/metrics``: live telemetry over HTTP, JSON and Prometheus.

Reuses the tiny warm-store job of ``test_server.py`` so the scrape
shows real engine/store/runtime/serve counters and per-source job
latency percentiles — the observability acceptance bar.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ApiKeyRegistry,
    Coordinator,
    ServeApp,
    ServerThread,
)

JOB = {
    "workload": "sobel", "scale": 0.0005, "images": 1,
    "train": 12, "evals": 150,
}

KEYS = "alice=sk-alice:100000"


@pytest.fixture()
def server(tmp_path, monkeypatch):
    from repro.store import open_store
    from repro.telemetry import reset_metrics

    # the registry is process-global; start each scrape test at zero
    reset_metrics()
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    app = ServeApp(
        Coordinator(store=open_store()), ApiKeyRegistry(KEYS)
    )
    srv = ServerThread(app).start()
    yield srv
    srv.stop()


def _request(srv, path, key="sk-alice"):
    request = urllib.request.Request(srv.base_url + path)
    if key is not None:
        request.add_header("Authorization", f"Bearer {key}")
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, response.read(), response.headers
    except urllib.error.HTTPError as error:
        return error.code, error.read(), error.headers


def _run_job(srv):
    body = json.dumps(JOB).encode()
    request = urllib.request.Request(
        srv.base_url + "/v1/jobs", method="POST", data=body,
        headers={"Authorization": "Bearer sk-alice"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        job = json.loads(response.read())["job"]
    status, raw, _ = _request(
        srv, f"/v1/jobs/{job['job_id']}?wait=240"
    )
    assert status == 200
    return json.loads(raw)["job"]


class TestMetricsEndpoint:
    def test_requires_auth(self, server):
        status, raw, _ = _request(server, "/v1/metrics", key=None)
        assert status == 401

    def test_json_scrape_after_job(self, server):
        job = _run_job(server)
        assert job["status"] == "done"

        status, raw, headers = _request(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(raw)
        assert doc["version"] == 1
        counters = doc["metrics"]["counters"]
        # live counters from every instrumented layer
        assert counters["engine.evaluations"] > 0
        assert counters["store.puts"] > 0
        assert counters["serve.submitted"] == 1
        assert counters["serve.pipeline_passes"] == 1
        assert counters["serve.http_requests"] >= 2
        assert counters["pipeline.runs"] == 1
        # per-source job latency histogram with percentiles
        latency = doc["metrics"]["histograms"]["serve.job_seconds.cold"]
        assert latency["count"] == 1
        assert latency["p50"] > 0
        assert latency["p99"] >= latency["p50"]

    def test_prometheus_scrape(self, server):
        _run_job(server)
        status, raw, headers = _request(
            server, "/v1/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        assert "# TYPE repro_serve_submitted_total counter" in text
        assert "repro_engine_evaluations_total" in text
        assert 'repro_serve_job_seconds_cold{quantile="0.5"}' in text
        assert "repro_serve_job_seconds_cold_count 1" in text

    def test_unknown_format_is_400(self, server):
        status, raw, _ = _request(server, "/v1/metrics?format=xml")
        assert status == 400
        assert b"format" in raw

    def test_error_counters_track_status(self, server):
        before_401 = self._counter(server, "serve.http_401")
        status, _, _ = _request(server, "/v1/account", key="sk-wrong")
        assert status == 401
        assert self._counter(server, "serve.http_401") == before_401 + 1

    @staticmethod
    def _counter(server, name):
        status, raw, _ = _request(server, "/v1/metrics")
        assert status == 200
        return json.loads(raw)["metrics"]["counters"].get(name, 0)
