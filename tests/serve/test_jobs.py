"""Unit tests of the serve job model: validation, keys, selection."""

import pytest

from repro.errors import ValidationError
from repro.serve.jobs import (
    Job,
    JobRequest,
    select_operating_point,
)


class TestJobRequest:
    def test_minimal_payload_defaults(self):
        request = JobRequest.from_payload({"workload": "sobel"})
        assert request.workload == "sobel"
        assert request.quality_target is None
        assert request.evals == 2_000
        assert request.seed == 0

    def test_full_payload(self):
        request = JobRequest.from_payload({
            "workload": "gaussian5",
            "quality_target": 0.9,
            "evals": 500,
            "scale": 0.001,
            "images": 1,
            "train": 12,
            "seed": 7,
        })
        assert request.quality_target == 0.9
        assert request.train == 12

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            JobRequest.from_payload([1, 2])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError, match="budgets"):
            JobRequest.from_payload(
                {"workload": "sobel", "budgets": 3}
            )

    def test_unregistered_workload_rejected(self):
        with pytest.raises(ValidationError, match="workload"):
            JobRequest.from_payload({"workload": "frobnicate"})

    @pytest.mark.parametrize("field,value", [
        ("evals", 0), ("evals", "many"), ("evals", 1.5),
        ("quality_target", 1.5), ("quality_target", -0.1),
        ("images", 0), ("train", 2), ("seed", -1),
        ("scale", -0.5), ("evals", True),
    ])
    def test_bad_numbers_rejected(self, field, value):
        with pytest.raises(ValidationError, match=field):
            JobRequest.from_payload(
                {"workload": "sobel", field: value}
            )

    def test_job_key_ignores_quality_target(self):
        base = JobRequest.from_payload(
            {"workload": "sobel", "quality_target": 0.8}
        )
        other = JobRequest.from_payload(
            {"workload": "sobel", "quality_target": 0.95}
        )
        assert base.job_key() == other.job_key()

    def test_job_key_separates_computations(self):
        a = JobRequest.from_payload({"workload": "sobel"})
        b = JobRequest.from_payload({"workload": "sobel", "seed": 1})
        c = JobRequest.from_payload({"workload": "gaussian5"})
        assert len({a.job_key(), b.job_key(), c.job_key()}) == 3

    def test_as_dict_round_trips(self):
        request = JobRequest.from_payload(
            {"workload": "sobel", "evals": 99}
        )
        assert JobRequest.from_payload(request.as_dict()) == request


class TestSelectOperatingPoint:
    FRONT = [[0.70, 100.0], [0.85, 150.0], [0.95, 300.0]]

    def test_no_target_picks_cheapest(self):
        selected = select_operating_point(self.FRONT, None)
        assert selected == {"target_met": True, "point": [0.70, 100.0]}

    def test_target_picks_cheapest_meeting_it(self):
        selected = select_operating_point(self.FRONT, 0.8)
        assert selected == {"target_met": True, "point": [0.85, 150.0]}

    def test_unreachable_target_reports_best_quality(self):
        selected = select_operating_point(self.FRONT, 0.99)
        assert selected == {
            "target_met": False, "point": [0.95, 300.0],
        }

    def test_empty_front(self):
        assert select_operating_point([], 0.9) == {
            "target_met": False, "point": None,
        }


class TestJobDoc:
    def test_doc_shape(self):
        request = JobRequest.from_payload({"workload": "sobel"})
        job = Job(id="job-000001", request=request,
                  account_name="alice", key_id="abc")
        doc = job.doc()
        assert doc["job_id"] == "job-000001"
        assert doc["status"] == "queued"
        assert doc["result"] is None
        assert not job.terminal
        assert "result" not in job.doc(include_result=False)
