"""Integration tests of ``repro serve``: the full HTTP round trip.

One module-scoped store directory keeps the tiny workload library warm
across tests; each test gets its own server (fresh coordinator memory)
on a free port.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ApiKeyRegistry,
    Coordinator,
    ServeApp,
    ServerThread,
)

#: One tiny, fully-specified computation (seconds, not minutes).
JOB = {
    "workload": "sobel", "scale": 0.0005, "images": 1,
    "train": 12, "evals": 150,
}

KEYS = "alice=sk-alice:100000,bob=sk-bob:100"


@pytest.fixture(scope="module")
def serve_store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-store")


@pytest.fixture()
def store_env(serve_store_dir, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(serve_store_dir))
    return serve_store_dir


def make_server(keys=KEYS):
    from repro.store import open_store

    app = ServeApp(
        Coordinator(store=open_store()), ApiKeyRegistry(keys)
    )
    return ServerThread(app).start()


@pytest.fixture()
def server(store_env):
    srv = make_server()
    yield srv
    srv.stop()


def api(srv, path, method="GET", body=None, key="sk-alice"):
    """One HTTP round trip; returns (status, decoded JSON)."""
    request = urllib.request.Request(
        srv.base_url + path, method=method,
        data=None if body is None else json.dumps(body).encode(),
    )
    if key is not None:
        request.add_header("Authorization", f"Bearer {key}")
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def run_job(srv, payload=JOB, key="sk-alice", wait=240):
    status, doc = api(srv, "/v1/jobs", "POST", payload, key=key)
    assert status == 202, doc
    job_id = doc["job"]["job_id"]
    status, doc = api(srv, f"/v1/jobs/{job_id}?wait={wait}", key=key)
    assert status == 200, doc
    return doc["job"]


class TestAuth:
    def test_health_needs_no_key(self, server):
        status, doc = api(server, "/v1/health", key=None)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["auth"] is True

    @pytest.mark.parametrize("key", [None, "", "sk-wrong"])
    def test_bad_key_is_401(self, server, key):
        for path in ("/v1/stats", "/v1/jobs", "/v1/workloads"):
            status, doc = api(server, path, key=key)
            assert status == 401
            assert "API key" in doc["error"]

    def test_submit_with_bad_key_is_401(self, server):
        status, _ = api(server, "/v1/jobs", "POST", JOB, key="nope")
        assert status == 401

    def test_x_api_key_header_accepted(self, server):
        request = urllib.request.Request(
            server.base_url + "/v1/account",
            headers={"X-Api-Key": "sk-alice"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            doc = json.loads(response.read())
        assert doc["account"]["name"] == "alice"

    def test_clients_cannot_see_foreign_jobs(self, server):
        status, doc = api(server, "/v1/jobs", "POST",
                          dict(JOB, evals=170), key="sk-alice")
        job_id = doc["job"]["job_id"]
        status, _ = api(server, f"/v1/jobs/{job_id}", key="sk-bob")
        assert status == 404


class TestValidation:
    def test_unknown_route_404(self, server):
        assert api(server, "/v1/nope")[0] == 404

    def test_unknown_field_400(self, server):
        status, doc = api(server, "/v1/jobs", "POST",
                          {"workload": "sobel", "budgets": 1})
        assert status == 400
        assert "budgets" in doc["error"]

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/v1/jobs", method="POST",
            data=b"not json",
            headers={"Authorization": "Bearer sk-alice"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_workloads_catalog(self, server):
        status, doc = api(server, "/v1/workloads")
        assert status == 200
        names = [w["name"] for w in doc["workloads"]]
        assert "sobel" in names


class TestCoalescingAndCaches:
    def test_concurrent_identical_submits_share_one_pass(self, server):
        """Two racing identical submissions -> exactly one cold pass."""
        passes_before = api(server, "/v1/stats")[1]["stats"][
            "pipeline_passes"
        ]
        payload = dict(JOB, evals=160)
        results = []

        def submit():
            results.append(
                api(server, "/v1/jobs", "POST", payload)[1]["job"]
            )

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        jobs = [
            api(server, f"/v1/jobs/{j['job_id']}?wait=240")[1]["job"]
            for j in results
        ]
        assert all(j["status"] == "done" for j in jobs)
        sources = sorted(j["source"] for j in jobs)
        assert "coalesced" in sources
        stats = api(server, "/v1/stats")[1]["stats"]
        assert stats["pipeline_passes"] == passes_before + 1
        assert stats["coalesced"] >= 1
        # followers got the leader's exact document
        assert jobs[0]["result"]["front"] == jobs[1]["result"]["front"]

    def test_repeat_submit_is_a_memory_hit(self, server):
        payload = dict(JOB, evals=165)
        first = run_job(server, payload)
        second = run_job(server, payload)
        assert second["source"] == "memory"
        assert second["result"]["front"] == first["result"]["front"]
        stats = api(server, "/v1/stats")[1]["stats"]
        assert stats["memory_hits"] >= 1

    def test_store_warm_across_server_restart(self, store_env):
        """A fresh server answers a warm query with zero recompute."""
        payload = dict(JOB, evals=155)
        first_server = make_server()
        try:
            run_job(first_server, payload)
        finally:
            first_server.stop()
        second_server = make_server()
        try:
            job = run_job(second_server, payload)
        finally:
            second_server.stop()
        assert job["source"] == "store"
        cache = job["result"]["stage_cache"]
        assert set(cache.values()) == {"hit"}
        # zero synthesis, zero refits on the warm path
        assert job["result"]["engine_stats"]["synth_misses"] == 0
        assert job["result"]["engine_stats"]["model_fits"] == 0

    def test_quality_targets_share_one_computation(self, server):
        loose = run_job(server, dict(JOB, evals=175,
                                     quality_target=0.1))
        tight = run_job(server, dict(JOB, evals=175,
                                     quality_target=0.99))
        assert tight["source"] == "memory"
        assert loose["result"]["front"] == tight["result"]["front"]
        # but each sees its own operating point
        assert loose["result"]["selected"]["target_met"] is True
        selected = [
            job["result"]["selected"]["point"][1]
            for job in (loose, tight)
        ]
        assert selected[0] <= selected[1]


class TestFailuresAndLedger:
    def test_budget_exceeded_fails_job_not_server(self, server):
        # bob's key caps at 100 evaluations; the job asks for 150
        job = run_job(server, JOB, key="sk-bob")
        assert job["status"] == "failed"
        assert "budget" in job["error"].lower()
        # the server is still healthy afterwards
        assert api(server, "/v1/health", key=None)[0] == 200

    def test_crash_is_recorded_failed_in_ledger(self, server,
                                                monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(
            "repro.experiments.setup.run_workload_pipeline", boom
        )
        job = run_job(server, dict(JOB, evals=180))
        assert job["status"] == "failed"
        assert "engine exploded" in job["error"]
        status, doc = api(server, "/v1/ledger")
        assert status == 200
        failed = [r for r in doc["runs"] if r["status"] == "failed"]
        assert failed
        manifest = failed[-1]
        assert manifest["kind"] == "serve-job"
        assert "engine exploded" in manifest["extra"]["error"]
        assert manifest["params"]["account"] == "alice"
        assert "sk-alice" not in json.dumps(manifest)

    def test_ledger_records_every_job_with_key_id(self, server):
        payload = dict(JOB, evals=185)
        run_job(server, payload)
        run_job(server, payload)  # memory hit — still ledgered
        _, doc = api(server, "/v1/ledger")
        ours = [
            r for r in doc["runs"]
            if r["params"].get("evals") == 185
        ]
        assert [r["extra"]["source"] for r in ours] == [
            "cold", "memory",
        ]
        assert all(r["kind"] == "serve-job" for r in ours)
        account = api(server, "/v1/account")[1]["account"]
        assert all(
            r["params"]["api_key"] == account["key_id"] for r in ours
        )

    def test_account_meters_spend(self, server):
        before = api(server, "/v1/account")[1]["account"]["spent"]
        run_job(server, dict(JOB, evals=190))
        account = api(server, "/v1/account")[1]["account"]
        assert account["spent"] == before + 190
        run_job(server, dict(JOB, evals=190))  # memory hit: free
        assert (api(server, "/v1/account")[1]["account"]["spent"]
                == before + 190)


class TestParityWithCli:
    def test_front_matches_offline_workloads_run(self, store_env,
                                                 capsys):
        """A served answer is byte-identical to the offline CLI's."""
        from repro.cli import main

        assert main([
            "workloads", "run", "sobel", "--scale", "0.0005",
            "--images", "1", "--train", "12", "--evals", "150",
            "--json",
        ]) == 0
        offline = json.loads(capsys.readouterr().out)
        server = make_server()
        try:
            job = run_job(server, JOB)
        finally:
            server.stop()
        assert job["status"] == "done"
        assert job["result"]["front"] == offline["front"]
        assert (job["result"]["space"]["final_pareto"]
                == offline["space"]["final_pareto"])
        # and it shared the CLI run's store stages wholesale
        assert set(
            job["result"]["stage_cache"].values()
        ) == {"hit"}


class TestEvents:
    def test_event_stream_ends_with_terminal_frame(self, server):
        _, doc = api(server, "/v1/jobs", "POST", dict(JOB, evals=195))
        job_id = doc["job"]["job_id"]
        request = urllib.request.Request(
            server.base_url + f"/v1/jobs/{job_id}/events",
            headers={"Authorization": "Bearer sk-alice"},
        )
        frames = []
        with urllib.request.urlopen(request, timeout=300) as stream:
            assert stream.headers["Content-Type"] == "text/event-stream"
            for raw in stream:
                line = raw.decode().strip()
                if line.startswith("data: "):
                    frames.append(json.loads(line[6:]))
        assert frames
        assert frames[-1]["job"]["status"] == "done"
        assert frames[-1]["job"]["result"]["front"]
