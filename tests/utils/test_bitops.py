import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_mask,
    extract_bit,
    min_bits_unsigned,
    to_signed,
    to_unsigned,
)


class TestBitMask:
    def test_zero_width(self):
        assert bit_mask(0) == 0

    @pytest.mark.parametrize("width,expected", [(1, 1), (4, 15), (8, 255),
                                                (16, 65535)])
    def test_values(self, width, expected):
        assert bit_mask(width) == expected

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bit_mask(-1)


class TestExtractBit:
    def test_scalar(self):
        assert extract_bit(0b1010, 1) == 1
        assert extract_bit(0b1010, 0) == 0

    def test_array(self):
        x = np.array([0b01, 0b10, 0b11])
        assert np.array_equal(extract_bit(x, 0), [1, 0, 1])
        assert np.array_equal(extract_bit(x, 1), [0, 1, 1])

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            extract_bit(3, -1)


class TestMinBits:
    @pytest.mark.parametrize("value,bits", [(0, 1), (1, 1), (2, 2),
                                            (255, 8), (256, 9)])
    def test_values(self, value, bits):
        assert min_bits_unsigned(value) == bits

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            min_bits_unsigned(-5)


class TestSignedConversion:
    def test_scalar_roundtrip(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_unsigned(-1, 8) == 0xFF

    def test_array(self):
        x = np.array([0, 127, 128, 255])
        signed = to_signed(x, 8)
        assert np.array_equal(signed, [0, 127, -128, -1])

    @given(st.integers(min_value=-128, max_value=127))
    def test_roundtrip_property(self, value):
        assert to_signed(to_unsigned(value, 8), 8) == value
