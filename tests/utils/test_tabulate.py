import pytest

from repro.utils.tabulate import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        out = format_table(["c"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
