import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckInRange:
    def test_within(self):
        check_in_range(5, "x", low=0, high=10)

    def test_below(self):
        with pytest.raises(ValueError):
            check_in_range(-1, "x", low=0)

    def test_above(self):
        with pytest.raises(ValueError):
            check_in_range(11, "x", high=10)

    def test_unbounded(self):
        check_in_range(1e12, "x")


class TestProbabilityVector:
    def test_valid(self):
        check_probability_vector(np.array([0.25, 0.75]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_sum_not_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.5, 0.4]))

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.asarray(1.0))


class TestEnvNumberKnobs:
    """Numeric environment knobs must fail loudly, naming the knob."""

    def test_env_int_parses(self):
        from repro.utils.validation import check_env_int

        assert check_env_int("8035", source="REPRO_SERVE_PORT") == 8035
        assert check_env_int(" 42 ", source="K") == 42

    @pytest.mark.parametrize("raw", ["", "   ", "abc", "8.5", "0x10"])
    def test_env_int_rejects_non_integers(self, raw):
        from repro.errors import ValidationError
        from repro.utils.validation import check_env_int

        with pytest.raises(ValidationError, match="REPRO_SERVE_PORT"):
            check_env_int(raw, source="REPRO_SERVE_PORT")

    def test_env_int_bounds(self):
        from repro.errors import ValidationError
        from repro.utils.validation import check_env_int

        with pytest.raises(ValidationError, match="PORT"):
            check_env_int("70000", source="PORT", minimum=0,
                          maximum=65535)
        with pytest.raises(ValidationError, match="PORT"):
            check_env_int("-1", source="PORT", minimum=0)

    def test_env_float_parses(self):
        from repro.utils.validation import check_env_float

        assert check_env_float("0.25", source="T") == 0.25

    @pytest.mark.parametrize("raw", ["", "  ", "soon", "nan"])
    def test_env_float_rejects_junk(self, raw):
        from repro.errors import ValidationError
        from repro.utils.validation import check_env_float

        with pytest.raises(ValidationError,
                           match="REPRO_PARALLEL_THRESHOLD"):
            check_env_float(raw, source="REPRO_PARALLEL_THRESHOLD")

    def test_env_float_minimum(self):
        from repro.errors import ValidationError
        from repro.utils.validation import check_env_float

        with pytest.raises(ValidationError, match="T"):
            check_env_float("-0.1", source="T", minimum=0.0)

    def test_validation_error_is_a_value_error(self):
        # Pre-existing callers catch ValueError; the subclass keeps
        # that contract.
        from repro.errors import ReproError, ValidationError

        assert issubclass(ValidationError, ValueError)
        assert issubclass(ValidationError, ReproError)


class TestKnobConsumers:
    """The real knobs route through the validated parsers."""

    def test_parallel_threshold_blank_rejected(self, monkeypatch):
        from repro.core.runtime import ParallelRuntime
        from repro.errors import ValidationError

        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "")
        with pytest.raises(ValidationError,
                           match="REPRO_PARALLEL_THRESHOLD"):
            ParallelRuntime.threshold_seconds()

    def test_parallel_threshold_unset_defaults(self, monkeypatch):
        from repro.core.runtime import (
            DEFAULT_PARALLEL_THRESHOLD,
            ParallelRuntime,
        )

        monkeypatch.delenv("REPRO_PARALLEL_THRESHOLD", raising=False)
        assert (ParallelRuntime.threshold_seconds()
                == DEFAULT_PARALLEL_THRESHOLD)

    @pytest.mark.parametrize("raw", ["", "http", "8035.5", "-2"])
    def test_serve_port_rejects_junk(self, monkeypatch, raw):
        from repro.errors import ValidationError
        from repro.serve.server import default_port

        monkeypatch.setenv("REPRO_SERVE_PORT", raw)
        with pytest.raises(ValidationError, match="REPRO_SERVE_PORT"):
            default_port()

    def test_serve_port_parses_and_defaults(self, monkeypatch):
        from repro.serve.server import DEFAULT_PORT, default_port

        monkeypatch.setenv("REPRO_SERVE_PORT", "9000")
        assert default_port() == 9000
        monkeypatch.delenv("REPRO_SERVE_PORT")
        assert default_port() == DEFAULT_PORT

    @pytest.mark.parametrize("raw", ["", "big", "nan"])
    def test_scale_rejects_junk(self, monkeypatch, raw):
        from repro.errors import ValidationError
        from repro.experiments.setup import default_scale

        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.raises(ValidationError, match="REPRO_SCALE"):
            default_scale()

    def test_scale_parses_and_defaults(self, monkeypatch):
        from repro.experiments.setup import DEFAULT_SCALE, default_scale

        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.delenv("REPRO_SCALE")
        assert default_scale() == DEFAULT_SCALE
