import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckInRange:
    def test_within(self):
        check_in_range(5, "x", low=0, high=10)

    def test_below(self):
        with pytest.raises(ValueError):
            check_in_range(-1, "x", low=0)

    def test_above(self):
        with pytest.raises(ValueError):
            check_in_range(11, "x", high=10)

    def test_unbounded(self):
        check_in_range(1e12, "x")


class TestProbabilityVector:
    def test_valid(self):
        check_probability_vector(np.array([0.25, 0.75]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_sum_not_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.5, 0.4]))

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.asarray(1.0))
