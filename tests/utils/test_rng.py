import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(
            a.integers(0, 1 << 30, 8), b.integers(0, 1 << 30, 8)
        )

    def test_deterministic(self):
        a = spawn_rngs(7, 3)[2].integers(0, 1 << 30, 4)
        b = spawn_rngs(7, 3)[2].integers(0, 1 << 30, 4)
        assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
