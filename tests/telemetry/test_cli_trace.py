"""The CLI trace surface: ``--trace``, ``REPRO_TRACE``, ledger metrics.

The acceptance bar pinned here: ``repro workloads run --trace`` on a
cold workload writes valid Chrome trace-event JSON whose top-level
``cli.workloads`` span covers (almost) the whole command, with the
pipeline stages recorded beneath it — and the run's ledger manifest
carries the metrics snapshot of exactly that run.
"""

import json
import time

import pytest

from repro.cli import main
from repro.errors import ValidationError

RUN = [
    "workloads", "run", "sobel", "--scale", "0.0005", "--images", "1",
    "--train", "12", "--evals", "150",
]


@pytest.fixture()
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    return tmp_path


class TestTraceFlag:
    def test_workloads_run_trace_covers_the_command(self, store_env,
                                                    capsys):
        trace_path = store_env / "trace.json"
        start = time.perf_counter()
        assert main(RUN + ["--json", "--trace", str(trace_path)]) == 0
        wall = time.perf_counter() - start
        json.loads(capsys.readouterr().out)  # stdout purity holds

        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events and doc["otherData"]["trace_id"]
        (top,) = [e for e in events if e["name"] == "cli.workloads"]
        # the top-level span covers >= 95% of the command's wall time
        assert top["dur"] >= 0.95 * wall * 1e6
        names = {e["name"] for e in events}
        assert "pipeline.preprocessing" in names
        assert "pipeline.final_analysis" in names
        # every pipeline stage nests (transitively) under the CLI span
        by_id = {e["args"]["span_id"]: e for e in events}
        for event in events:
            if event is top:
                continue
            seen = set()
            node = event
            while "parent" in node["args"]:
                parent = node["args"]["parent"]
                assert parent not in seen  # no cycles
                seen.add(parent)
                node = by_id[parent]
            assert node is top

    def test_trace_env_fallback(self, store_env, monkeypatch, capsys):
        trace_path = store_env / "env-trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        assert main(["inventory"]) == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        assert any(
            e["name"] == "cli.inventory" for e in doc["traceEvents"]
        )

    def test_blank_trace_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "  ")
        with pytest.raises(ValidationError, match="REPRO_TRACE"):
            main(["inventory"])

    def test_flag_beats_env(self, store_env, monkeypatch, capsys):
        flag_path = store_env / "flag.json"
        env_path = store_env / "env.json"
        monkeypatch.setenv("REPRO_TRACE", str(env_path))
        assert main(RUN + ["--json", "--trace", str(flag_path)]) == 0
        capsys.readouterr()
        assert flag_path.is_file()
        assert not env_path.exists()


class TestLedgerMetrics:
    def test_manifest_carries_metrics_snapshot(self, store_env,
                                               capsys):
        assert main(RUN + ["--json"]) == 0
        run_id = json.loads(capsys.readouterr().out)["run_id"]
        assert main(["runs", "show", run_id, "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)["run"]
        metrics = manifest["extra"]["metrics"]
        assert metrics["counters"]["pipeline.runs"] == 1
        assert metrics["counters"]["engine.evaluations"] > 0
        assert "pipeline.stage_seconds.final_analysis" in (
            metrics["histograms"]
        )

    def test_runs_show_renders_summary_table(self, store_env, capsys):
        assert main(RUN + ["--json"]) == 0
        run_id = json.loads(capsys.readouterr().out)["run_id"]
        assert main(["runs", "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "% of total" in out
        assert "cache:" in out
        assert "final_analysis" in out
        assert "engine.evaluations" in out
