"""Metrics registry: thread safety, percentiles, deltas, the kill switch."""

import threading

import pytest

from repro.errors import ValidationError
from repro.telemetry.metrics import (
    RESERVOIR_CAPACITY,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    render_prometheus,
    reset_metrics,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestThreadSafety:
    def test_hammered_counters_are_exact(self, registry):
        threads_n, per_thread = 20, 500

        def hammer():
            for _ in range(per_thread):
                registry.inc("hammer.count")
                registry.inc("hammer.weighted", 3)
                registry.observe("hammer.values", 1.0)

        threads = [
            threading.Thread(target=hammer) for _ in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        snap = registry.snapshot()
        assert snap["counters"]["hammer.count"] == total
        assert snap["counters"]["hammer.weighted"] == 3 * total
        assert snap["histograms"]["hammer.values"]["count"] == total
        assert snap["histograms"]["hammer.values"]["sum"] == total


class TestHistograms:
    def test_percentiles_exact_under_capacity(self, registry):
        for value in range(1, 101):
            registry.observe("h", float(value))
        summary = registry.snapshot()["histograms"]["h"]
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0

    def test_reservoir_stays_bounded(self, registry):
        for value in range(5 * RESERVOIR_CAPACITY):
            registry.observe("big", float(value))
        hist = registry._histograms["big"]
        assert len(hist.samples) == RESERVOIR_CAPACITY
        summary = hist.summary()
        assert summary["count"] == 5 * RESERVOIR_CAPACITY
        assert summary["min"] == 0.0
        assert summary["max"] == float(5 * RESERVOIR_CAPACITY - 1)

    def test_reservoir_is_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            for value in range(3 * RESERVOIR_CAPACITY):
                registry.observe("h", float(value))
        assert (
            a.snapshot()["histograms"] == b.snapshot()["histograms"]
        )

    def test_timer_observes_seconds(self, registry):
        with registry.timer("t"):
            pass
        summary = registry.snapshot()["histograms"]["t"]
        assert summary["count"] == 1
        assert summary["sum"] >= 0.0


class TestSnapshotsAndDeltas:
    def test_mark_diffs_counters(self, registry):
        registry.inc("a", 5)
        mark = registry.mark()
        registry.inc("a", 2)
        registry.inc("b")
        snap = registry.snapshot(since=mark)
        assert snap["counters"] == {"a": 2, "b": 1}

    def test_export_delta_drains(self, registry):
        registry.inc("x")
        registry.observe("y", 1.5)
        registry.set_gauge("z", 7)
        delta = registry.export_delta()
        assert delta["counters"] == {"x": 1}
        assert delta["histograms"]["y"]["count"] == 1
        assert registry.export_delta() is None
        assert registry.snapshot()["counters"] == {}

    def test_merge_accumulates(self, registry):
        other = MetricsRegistry()
        other.inc("x", 2)
        other.observe("y", 1.0)
        other.observe("y", 3.0)
        registry.inc("x")
        registry.observe("y", 5.0)
        registry.merge(other.export_delta())
        snap = registry.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["histograms"]["y"]["count"] == 3
        assert snap["histograms"]["y"]["sum"] == 9.0
        assert snap["histograms"]["y"]["min"] == 1.0
        assert snap["histograms"]["y"]["max"] == 5.0

    def test_merge_none_is_noop(self, registry):
        registry.merge(None)
        assert registry.snapshot()["counters"] == {}


class TestKillSwitch:
    def test_disabled_registry_is_null(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        reset_metrics()
        try:
            registry = get_metrics()
            assert isinstance(registry, NullMetricsRegistry)
            assert registry.enabled is False
            registry.inc("x")
            registry.observe("y", 1.0)
            with registry.timer("t"):
                pass
            assert registry.snapshot() == {
                "counters": {}, "gauges": {}, "histograms": {},
            }
            assert registry.export_delta() is None
        finally:
            reset_metrics()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        reset_metrics()
        try:
            assert get_metrics().enabled is True
        finally:
            reset_metrics()

    def test_bogus_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "maybe")
        reset_metrics()
        try:
            with pytest.raises(
                ValidationError, match="REPRO_TELEMETRY"
            ):
                get_metrics()
        finally:
            reset_metrics()


class TestPrometheus:
    def test_renders_all_kinds(self, registry):
        registry.inc("engine.evaluations", 4)
        registry.set_gauge("search.front_size", 9)
        for value in (0.1, 0.2, 0.3):
            registry.observe("serve.job_seconds.cold", value)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_engine_evaluations_total counter" in text
        assert "repro_engine_evaluations_total 4" in text
        assert "repro_search_front_size 9" in text
        assert 'repro_serve_job_seconds_cold{quantile="0.5"}' in text
        assert "repro_serve_job_seconds_cold_count 3" in text
        assert text.endswith("\n")
