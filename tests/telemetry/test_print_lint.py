"""Lint: no bare ``print()`` calls in library code.

Everything under ``src/repro`` except the CLI (whose stdout *is* its
product) must speak through the structured logger — a stray print
breaks ``--json`` stdout purity and bypasses ``REPRO_LOG_*``.  AST-
based, so docstrings and comments mentioning print don't trip it.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Files whose prints are the product, not diagnostics.
ALLOWED = {SRC / "cli.py"}


def _print_calls(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node.lineno


def test_no_bare_print_outside_cli():
    assert SRC.is_dir(), SRC
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        offenders.extend(
            f"{path.relative_to(SRC)}:{line}"
            for line in _print_calls(path)
        )
    assert offenders == [], (
        "bare print() in library code (use repro.telemetry.get_logger):"
        f" {offenders}"
    )


def test_lint_sees_the_tree():
    # the lint is vacuous if the path computation ever breaks
    assert (SRC / "cli.py").is_file()
    assert sum(1 for _ in SRC.rglob("*.py")) > 30
