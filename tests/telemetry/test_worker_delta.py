"""Cross-process aggregation: worker metrics/spans ride the piggyback.

The contract under test: metrics recorded inside ``ParallelRuntime``
worker processes land in the *parent's* registry (exact counts, merged
histograms) and worker spans stitch under the submitting batch span —
for both start methods — while results stay bit-identical to the
serial path with telemetry and tracing enabled.
"""

import pickle

import pytest

from repro.core.runtime import get_runtime, reset_runtime
from repro.telemetry import get_metrics
from repro.telemetry.tracing import (
    Tracer,
    install_tracer,
    uninstall_tracer,
)


@pytest.fixture()
def fresh_runtime():
    reset_runtime()
    yield get_runtime()
    reset_runtime()


@pytest.fixture()
def tracer():
    t = install_tracer(Tracer())
    yield t
    uninstall_tracer()


def _metric_task(context, n):
    get_metrics().inc("wd.tasks")
    get_metrics().observe("wd.values", float(n))
    return n * n


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_worker_metrics_aggregate(start_method, fresh_runtime,
                                  monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "always")
    monkeypatch.setenv("REPRO_START_METHOD", start_method)
    tasks = list(range(8))
    metrics = get_metrics()
    mark = metrics.mark()
    before = metrics.snapshot()["histograms"].get(
        "wd.values", {"count": 0, "sum": 0.0}
    )

    out = fresh_runtime.map(_metric_task, tasks, workers=2)

    assert out == [n * n for n in tasks]
    assert fresh_runtime.last_decision.mode == "parallel"
    snap = metrics.snapshot(since=mark)
    # every task counted exactly once, wherever it ran
    assert snap["counters"]["wd.tasks"] == len(tasks)
    after = snap["histograms"]["wd.values"]
    assert after["count"] - before["count"] == len(tasks)
    assert after["sum"] - before["sum"] == float(sum(tasks))


def test_worker_spans_stitch_under_batch(fresh_runtime, tracer,
                                         monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "always")
    tasks = list(range(6))
    out = fresh_runtime.map(_metric_task, tasks, workers=2)
    assert out == [n * n for n in tasks]

    events = tracer.events()
    (batch,) = [e for e in events if e["cat"] == "runtime"]
    assert batch["name"] == "runtime._metric_task"
    worker_spans = [e for e in events if e["cat"] == "worker"]
    # the probe task runs in-process; the rest get worker spans
    assert len(worker_spans) == len(tasks) - 1
    for event in worker_spans:
        assert event["name"] == "task:_metric_task"
        assert event["args"]["parent"] == batch["args"]["span_id"]
        assert event["args"]["trace_id"] == tracer.trace_id


def test_results_identical_with_and_without_telemetry(
    fresh_runtime, monkeypatch
):
    monkeypatch.setenv("REPRO_PARALLEL", "always")
    tasks = list(range(10))
    plain = fresh_runtime.map(_metric_task, tasks, workers=2)

    reset_runtime()
    tracer = install_tracer(Tracer())
    try:
        traced = get_runtime().map(_metric_task, tasks, workers=2)
    finally:
        uninstall_tracer()
    assert pickle.dumps(traced) == pickle.dumps(plain)
    assert tracer.events()  # tracing actually happened
