"""Structured logging: formats, env knobs, stderr discipline."""

import io
import json
import logging

import pytest

from repro.errors import ValidationError
from repro.telemetry.logs import get_logger, setup_logging


@pytest.fixture(autouse=True)
def _restore_logging(monkeypatch):
    yield
    # Leave the root handler in its default (lazy-stderr) state for
    # whatever test runs next — with the knobs cleared first so a
    # bogus-env test cannot fail its own teardown.
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
    setup_logging(force=True)


def _capture(fmt, level=logging.INFO):
    stream = io.StringIO()
    setup_logging(level=level, fmt=fmt, stream=stream, force=True)
    return stream


class TestJsonFormat:
    def test_lines_parse_with_data_fields(self):
        stream = _capture("json")
        get_logger("library").info(
            "chunk done", extra={"data": {"chunk": 3, "cached": 7}}
        )
        doc = json.loads(stream.getvalue())
        assert doc["level"] == "INFO"
        assert doc["logger"] == "repro.library"
        assert doc["message"] == "chunk done"
        assert doc["chunk"] == 3
        assert doc["cached"] == 7
        assert doc["ts"].endswith("+00:00")

    def test_exceptions_are_captured(self):
        stream = _capture("json")
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger().exception("failed")
        doc = json.loads(stream.getvalue())
        assert "ValueError: boom" in doc["exc"]


class TestTextFormat:
    def test_key_value_suffix(self):
        stream = _capture("text")
        get_logger("serve").warning(
            "slow", extra={"data": {"seconds": 1.5}}
        )
        line = stream.getvalue().strip()
        assert line == "WARNING repro.serve: slow seconds=1.5"


class TestEnvKnobs:
    def test_level_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "warning")
        stream = io.StringIO()
        setup_logging(stream=stream, force=True)
        get_logger().info("hidden")
        get_logger().warning("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_format_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        stream = io.StringIO()
        setup_logging(stream=stream, force=True)
        get_logger().info("hello")
        assert json.loads(stream.getvalue())["message"] == "hello"

    @pytest.mark.parametrize(
        "env,value",
        [("REPRO_LOG_LEVEL", "loud"), ("REPRO_LOG_FORMAT", "xml")],
    )
    def test_bogus_values_raise(self, env, value, monkeypatch):
        monkeypatch.setenv(env, value)
        with pytest.raises(ValidationError, match=env):
            setup_logging(force=True)

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        stream = io.StringIO()
        setup_logging(stream=stream, force=True)
        get_logger().debug("fine")
        assert "fine" in stream.getvalue()


class TestDiscipline:
    def test_setup_is_idempotent(self):
        root = setup_logging(force=True)
        setup_logging()
        setup_logging()
        assert len(root.handlers) == 1

    def test_default_handler_tracks_sys_stderr(self, capsys):
        setup_logging(force=True)
        get_logger().error("to stderr")
        captured = capsys.readouterr()
        assert "to stderr" in captured.err
        assert captured.out == ""

    def test_get_logger_prefixes(self):
        assert get_logger("engine").name == "repro.engine"
        assert get_logger("repro.engine").name == "repro.engine"
        assert get_logger().name == "repro"
