"""Tracer spans: nesting, schema, retroactive events, the no-op path."""

import json

import pytest

from repro.telemetry.tracing import (
    Tracer,
    complete_event,
    current_tracer,
    install_tracer,
    maybe_span,
    uninstall_tracer,
)


@pytest.fixture()
def tracer():
    t = install_tracer(Tracer())
    yield t
    uninstall_tracer()


class TestSpans:
    def test_nested_spans_parent_correctly(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        events = {e["name"]: e for e in tracer.events()}
        assert events["inner"]["args"]["parent"] == outer.id
        assert "parent" not in events["outer"]["args"]
        assert inner.id != outer.id

    def test_event_schema_is_chrome_complete(self, tracer):
        with tracer.span("work", cat="engine", args={"n": 3}):
            pass
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert isinstance(event["ts"], int)
        assert isinstance(event["dur"], int)
        assert event["cat"] == "engine"
        assert event["args"]["n"] == 3
        assert event["args"]["trace_id"] == tracer.trace_id

    def test_explicit_parent_overrides_stack(self, tracer):
        with tracer.span("a", parent="deadbeef.1"):
            pass
        (event,) = tracer.events()
        assert event["args"]["parent"] == "deadbeef.1"

    def test_complete_event_is_retroactive(self, tracer):
        complete_event("stage", 0.25, cat="pipeline")
        (event,) = tracer.events()
        assert event["name"] == "stage"
        assert event["dur"] == 250_000
        assert event["cat"] == "pipeline"

    def test_span_survives_exceptions(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [e["name"] for e in tracer.events()] == ["boom"]
        assert tracer.current_span_id() is None


class TestGlobalTracer:
    def test_maybe_span_without_tracer_is_noop(self):
        uninstall_tracer()
        with maybe_span("nothing") as span:
            assert span is None
        assert current_tracer() is None

    def test_complete_event_without_tracer_is_noop(self):
        uninstall_tracer()
        complete_event("nothing", 1.0)  # must not raise

    def test_install_and_read_back(self, tracer):
        assert current_tracer() is tracer
        with maybe_span("visible"):
            pass
        assert [e["name"] for e in tracer.events()] == ["visible"]


class TestOutput:
    def test_write_emits_valid_chrome_trace(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        tracer.write(path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["trace_id"] == tracer.trace_id
        names = [e["name"] for e in doc["traceEvents"]]
        assert sorted(names) == ["inner", "outer"]
        # events are sorted by wall timestamp
        stamps = [e["ts"] for e in doc["traceEvents"]]
        assert stamps == sorted(stamps)
        for event in doc["traceEvents"]:
            assert set(event) >= {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args",
            }

    def test_drain_empties_the_buffer(self, tracer):
        with tracer.span("x"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []
        assert tracer.to_chrome()["traceEvents"] == []
