"""CLI surface tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_accelerator_choices(self):
        args = build_parser().parse_args(
            ["profile", "--accelerator", "fixed_gf"]
        )
        assert args.accelerator == "fixed_gf"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--accelerator", "bogus"]
            )


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Sobel ED" in out
        assert "Generic GF" in out

    def test_generate_library_and_run(self, tmp_path, capsys):
        lib_path = tmp_path / "lib.json"
        assert main(
            ["generate-library", "--scale", "0.001", "--out",
             str(lib_path)]
        ) == 0
        assert lib_path.exists()

        front_path = tmp_path / "front.csv"
        assert main(
            ["run", "--library", str(lib_path), "--images", "1",
             "--train", "12", "--evals", "150", "--out",
             str(front_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "models:" in out
        lines = front_path.read_text().splitlines()
        assert lines[0] == "ssim,area"
        assert len(lines) >= 2

    def test_profile(self, capsys):
        assert main(["profile", "--images", "1"]) == 0
        out = capsys.readouterr().out
        assert "add1" in out and "sub" in out

    def test_export_verilog_stdout(self, capsys):
        assert main(["export-verilog", "--accelerator", "sobel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module sobel")

    def test_export_verilog_file(self, tmp_path, capsys):
        path = tmp_path / "sobel.v"
        assert main(
            ["export-verilog", "--accelerator", "sobel", "--optimize",
             "--out", str(path)]
        ) == 0
        assert path.read_text().startswith("module sobel")
