"""CLI surface tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_accelerator_choices(self):
        args = build_parser().parse_args(
            ["profile", "--accelerator", "fixed_gf"]
        )
        assert args.accelerator == "fixed_gf"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--accelerator", "bogus"]
            )

    def test_workloads_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workloads"])

    def test_workers_parses_verbatim(self):
        args = build_parser().parse_args(["run", "--workers", "4"])
        assert args.workers == 4
        # an explicit 1 must survive to the engine: it forces serial
        # evaluation even when REPRO_WORKERS requests a pool
        args = build_parser().parse_args(["run", "--workers", "1"])
        assert args.workers == 1

    def test_explicit_workers_one_overrides_env(self, monkeypatch):
        from repro.core.engine import EvaluationEngine
        from repro.imaging.datasets import benchmark_images
        from repro.accelerators.sobel import SobelEdgeDetector

        monkeypatch.setenv("REPRO_WORKERS", "8")
        engine = EvaluationEngine(
            SobelEdgeDetector(),
            benchmark_images(1, shape=(8, 8)),
            workers=1,
        )
        assert engine.workers is None  # in-process, env ignored

    @pytest.mark.parametrize("bad", ["-2", "2.5", "many"])
    def test_workers_rejects_bad_values(self, bad, capsys):
        for command in (
            ["run", f"--workers={bad}"],
            ["workloads", "run", "sobel", f"--workers={bad}"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(command)
            err = capsys.readouterr().err
            assert "--workers" in err
            assert "worker count" in err or ">= 0" in err


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Sobel ED" in out
        assert "Generic GF" in out

    def test_generate_library_and_run(self, tmp_path, capsys):
        lib_path = tmp_path / "lib.json"
        assert main(
            ["generate-library", "--scale", "0.001", "--out",
             str(lib_path)]
        ) == 0
        assert lib_path.exists()

        front_path = tmp_path / "front.csv"
        assert main(
            ["run", "--library", str(lib_path), "--images", "1",
             "--train", "12", "--evals", "150", "--out",
             str(front_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "models:" in out
        lines = front_path.read_text().splitlines()
        assert lines[0] == "ssim,area"
        assert len(lines) >= 2

    def test_generate_library_workers_byte_identical(self, tmp_path):
        paths = {}
        for workers in ("1", "2", "4"):
            paths[workers] = tmp_path / f"lib_w{workers}.json"
            assert main(
                ["generate-library", "--scale", "0.0005", "--workers",
                 workers, "--out", str(paths[workers])]
            ) == 0
        reference = paths["1"].read_bytes()
        assert paths["2"].read_bytes() == reference
        assert paths["4"].read_bytes() == reference

    def test_generate_library_store_json_and_warm(self, tmp_path,
                                                  monkeypatch,
                                                  capsys):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        argv = ["generate-library", "--scale", "0.0005", "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        doc = cold["generate_library"]
        assert cold["version"] == 1
        assert doc["stats"]["characterized"] == doc["components"]
        assert doc["run_id"]

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)["generate_library"]
        assert warm["stats"]["characterized"] == 0
        assert warm["stats"]["synthesized"] == 0
        assert warm["stats"]["store_hits"] == warm["components"]
        assert warm["summary"] == doc["summary"]

    def test_generate_library_requires_out_or_store(self, capsys):
        assert main(
            ["generate-library", "--scale", "0.0005", "--no-store"]
        ) == 2
        assert "--out" in capsys.readouterr().err

    def test_profile(self, capsys):
        assert main(["profile", "--images", "1"]) == 0
        out = capsys.readouterr().out
        assert "add1" in out and "sub" in out

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        # seed case studies plus the N x N family are all listed
        for name in ("sobel", "generic_gf", "gaussian5", "log5"):
            assert name in out
        assert "5x5" in out

    @pytest.mark.parametrize("name", ["sharpen3", "log5"])
    def test_workloads_run_family_dse(self, name, tmp_path,
                                      monkeypatch, capsys):
        """End-to-end DSE on new N x N family workloads."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        front_path = tmp_path / "front.csv"
        assert main(
            ["workloads", "run", name, "--scale", "0.001",
             "--images", "1", "--train", "12", "--evals", "150",
             "--out", str(front_path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"workload {name}" in out
        assert "models:" in out
        lines = front_path.read_text().splitlines()
        assert lines[0] == "ssim,area"
        assert len(lines) >= 2

    def test_workloads_run_unknown_name(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="registered"):
            main(["workloads", "run", "frobnicate"])

    def test_runs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs"])

    def test_store_flag_tristate(self):
        args = build_parser().parse_args(["run"])
        assert args.store is None
        assert build_parser().parse_args(
            ["run", "--store"]
        ).store is True
        assert build_parser().parse_args(
            ["run", "--no-store"]
        ).store is False

    def test_restore_sigint_unignores(self):
        """Background-job SIGINT=ignore must be reset to default.

        Shells start ``cmd &`` jobs with SIGINT ignored; serve and
        search-worker rely on KeyboardInterrupt for graceful shutdown.
        """
        import signal

        from repro.cli import _restore_sigint

        previous = signal.getsignal(signal.SIGINT)
        try:
            signal.signal(signal.SIGINT, signal.SIG_IGN)
            _restore_sigint()
            assert (signal.getsignal(signal.SIGINT)
                    is signal.default_int_handler)

            def custom(signum, frame):  # pragma: no cover - handler
                pass

            signal.signal(signal.SIGINT, custom)
            _restore_sigint()  # a live handler is left alone
            assert signal.getsignal(signal.SIGINT) is custom
        finally:
            signal.signal(signal.SIGINT, previous)

    def test_export_verilog_stdout(self, capsys):
        assert main(["export-verilog", "--accelerator", "sobel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module sobel")

    def test_export_verilog_file(self, tmp_path, capsys):
        path = tmp_path / "sobel.v"
        assert main(
            ["export-verilog", "--accelerator", "sobel", "--optimize",
             "--out", str(path)]
        ) == 0
        assert path.read_text().startswith("module sobel")


WORKLOAD_RUN = [
    "workloads", "run", "sobel", "--scale", "0.0005", "--images", "1",
    "--train", "12", "--evals", "150",
]


@pytest.fixture()
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    return tmp_path / "store"


class TestStoreCommands:
    """The experiment-store surface: --store, --json, repro runs."""

    def _run_json(self, capsys, extra=()):
        assert main(WORKLOAD_RUN + ["--json", *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_workloads_run_json_versioned(self, store_env, capsys):
        doc = self._run_json(capsys)
        assert doc["version"] == 1
        assert doc["workload"] == "sobel"
        assert set(doc["stage_cache"].values()) == {"miss"}
        assert doc["front"]  # [ssim, area] rows
        # stable key order: the document re-serialises canonically
        assert list(doc) == sorted(doc)

    def test_store_env_enables_warm_second_run(self, store_env,
                                               capsys):
        self._run_json(capsys)
        warm = self._run_json(capsys)
        assert set(warm["stage_cache"].values()) == {"hit"}
        assert warm["engine_stats"]["synth_misses"] == 0
        assert warm["engine_stats"]["model_fits"] == 0

    def test_no_store_flag_disables(self, store_env, capsys):
        doc = self._run_json(capsys, extra=["--no-store"])
        assert set(doc["stage_cache"].values()) == {"off"}
        assert doc["run_id"] is None

    def test_runs_list_show_and_json(self, store_env, capsys):
        run_id = self._run_json(capsys)["run_id"]
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert run_id in out and "workload" in out

        assert main(["runs", "list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert [m["run_id"] for m in doc["runs"]] == [run_id]

        assert main(["runs", "show", run_id, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        stages = doc["run"]["stages"]
        assert [s["name"] for s in stages] == [
            "preprocessing", "training_set", "model_construction",
            "pseudo_pareto", "final_analysis",
        ]

        assert main(["runs", "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "config_hash" in out and "final_analysis" in out

    def test_runs_resume_is_fully_cached(self, store_env, capsys):
        run_id = self._run_json(capsys)["run_id"]
        assert main(["runs", "resume", run_id, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["resumed_from"] == run_id
        assert set(doc["stage_cache"].values()) == {"hit"}
        assert doc["engine_stats"]["synth_misses"] == 0

    def test_search_records_and_resumes(self, store_env, capsys):
        assert main([
            "search", "--workload", "sobel", "--scale", "0.0005",
            "--images", "1", "--train", "12", "--test", "6",
            "--budget", "150", "--rounds", "2", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        search = doc["search"]
        assert search["evaluations"] == 150  # exact budget spend
        assert search["front_size"] >= 1
        assert search["run_id"]
        assert any(
            r["strategy"] == "hill" for r in search["islands"]
        )

        assert main(["runs", "list"]) == 0
        assert search["run_id"] in capsys.readouterr().out

        # Resuming a complete search serves the checkpointed front.
        assert main(
            ["runs", "resume", search["run_id"], "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)["search"]
        assert resumed["resumed_from"] == search["run_id"]
        assert resumed["front"] == search["front"]
        assert resumed["evaluations"] == search["evaluations"]

    def test_search_without_store_has_no_run_id(self, store_env,
                                                capsys):
        assert main([
            "search", "--workload", "sobel", "--scale", "0.0005",
            "--images", "1", "--train", "12", "--test", "6",
            "--budget", "120", "--no-store", "--json",
        ]) == 0
        search = json.loads(capsys.readouterr().out)["search"]
        assert search["run_id"] is None
        assert search["evaluations"] == 120

    def test_runs_gc_keeps_referenced(self, store_env, capsys):
        self._run_json(capsys)
        assert main(["runs", "gc", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gc"]["kept"] > 0
        # a second run is still fully warm after gc
        warm = self._run_json(capsys)
        assert set(warm["stage_cache"].values()) == {"hit"}

    def test_runs_gc_dry_run_deletes_nothing(self, store_env,
                                             capsys):
        from repro.store import open_store

        self._run_json(capsys)
        store = open_store()
        store.put("dse", "f" * 64, {"orphan": True})

        assert main(["runs", "gc", "--dry-run", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gc"]["dry_run"] is True
        assert doc["gc"]["removed"] >= 1
        assert doc["gc"]["by_kind"]["dse"]["count"] >= 1
        assert doc["gc"]["by_kind"]["dse"]["bytes"] > 0
        # nothing was deleted: the orphan is still there
        assert store.get("dse", "f" * 64) == {"orphan": True}

        # human-readable output shows would-delete per kind
        assert main(["runs", "gc", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out and "dse" in out

        # and the real pass removes exactly what the dry run promised
        assert main(["runs", "gc", "--json"]) == 0
        real = json.loads(capsys.readouterr().out)["gc"]
        assert real["removed"] == doc["gc"]["removed"]
        assert store.get("dse", "f" * 64) is None

    def test_runs_gc_missing_store_exits_nonzero(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.setenv(
            "REPRO_STORE_DIR", str(tmp_path / "absent")
        )
        assert main(["runs", "gc"]) == 1
        assert "no experiment store" in capsys.readouterr().err

    def test_runs_accept_store_uri(self, store_env, capsys):
        run_id = self._run_json(capsys)["run_id"]
        assert main(
            ["runs", "list", "--store-dir", f"sqlite:{store_env}",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [m["run_id"] for m in doc["runs"]] == [run_id]

    def test_runs_show_unknown_id(self, store_env, capsys):
        from repro.errors import StoreError

        self._run_json(capsys)
        with pytest.raises(StoreError, match="no run"):
            main(["runs", "show", "nope"])

    def test_runs_against_missing_store(self, tmp_path, monkeypatch):
        from repro.errors import StoreError

        monkeypatch.setenv(
            "REPRO_STORE_DIR", str(tmp_path / "absent")
        )
        with pytest.raises(StoreError, match="no experiment store"):
            main(["runs", "list"])


class TestJsonStdoutPurity:
    """With ``--json``, stdout carries one JSON document and nothing
    else; progress and diagnostics go to stderr."""

    @staticmethod
    def _pure_json(capsys):
        """stdout must parse as exactly one JSON document."""
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # raises on any stray prose
        assert doc["version"] == 1
        return doc, captured.err

    def test_workloads_run_json_with_out(self, store_env, tmp_path,
                                         capsys):
        front_path = tmp_path / "front.csv"
        assert main(
            WORKLOAD_RUN + ["--json", "--out", str(front_path)]
        ) == 0
        doc, err = self._pure_json(capsys)
        assert doc["workload"] == "sobel"
        # --out is honoured in json mode; the note goes to stderr
        lines = front_path.read_text().splitlines()
        assert lines[0] == "ssim,area"
        assert len(lines) == len(doc["front"]) + 1
        assert str(front_path) in err

    def test_run_json_with_out(self, store_env, tmp_path, capsys):
        front_path = tmp_path / "front.csv"
        assert main([
            "run", "--scale", "0.0005", "--images", "1",
            "--train", "12", "--evals", "150", "--json",
            "--out", str(front_path),
        ]) == 0
        doc, _ = self._pure_json(capsys)
        assert doc["accelerator"] == "sobel"
        assert doc["front"]
        assert front_path.read_text().startswith("ssim,area")

    def test_search_json(self, store_env, capsys):
        assert main([
            "search", "--workload", "sobel", "--scale", "0.0005",
            "--images", "1", "--train", "12", "--test", "6",
            "--budget", "120", "--json",
        ]) == 0
        doc, _ = self._pure_json(capsys)
        assert doc["search"]["evaluations"] == 120

    def test_runs_commands_json(self, store_env, capsys):
        assert main(WORKLOAD_RUN + ["--json"]) == 0
        run_id = self._pure_json(capsys)[0]["run_id"]
        for argv in (
            ["runs", "list", "--json"],
            ["runs", "show", run_id, "--json"],
            ["runs", "resume", run_id, "--json"],
            ["runs", "gc", "--json"],
        ):
            assert main(argv) == 0
            self._pure_json(capsys)

    def test_generate_library_json(self, store_env, capsys):
        assert main([
            "generate-library", "--scale", "0.0005", "--store",
            "--json",
        ]) == 0
        doc, err = self._pure_json(capsys)
        assert doc["generate_library"]["components"] > 0
        assert "generating" in err  # progress went to stderr

    def test_runs_list_kind_filter(self, store_env, capsys):
        assert main(WORKLOAD_RUN + ["--json"]) == 0
        self._pure_json(capsys)
        assert main(
            ["runs", "list", "--json", "--kind", "workload"]
        ) == 0
        doc, _ = self._pure_json(capsys)
        assert len(doc["runs"]) == 1
        assert main(
            ["runs", "list", "--json", "--kind", "serve-job"]
        ) == 0
        doc, _ = self._pure_json(capsys)
        assert doc["runs"] == []
