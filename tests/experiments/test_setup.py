import os

import pytest

from repro.experiments.setup import ExperimentSetup, default_setup


class TestDefaultSetup:
    def test_builds_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = default_setup(
            scale=0.002, n_images=2, image_shape=(32, 48), use_cache=True
        )
        assert isinstance(setup, ExperimentSetup)
        assert setup.image_shape == (32, 48)
        assert len(setup.images) == 2
        cached = list(tmp_path.glob("library_scale_*.json"))
        assert len(cached) == 1

    def test_cache_reused(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = default_setup(scale=0.002, n_images=1,
                              image_shape=(16, 16))
        mtime = next(tmp_path.glob("*.json")).stat().st_mtime
        second = default_setup(scale=0.002, n_images=1,
                               image_shape=(16, 16))
        assert next(tmp_path.glob("*.json")).stat().st_mtime == mtime
        assert first.library.summary() == second.library.summary()

    def test_scale_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        setup = default_setup(n_images=1, image_shape=(16, 16),
                              use_cache=False)
        # the floor dominates at this scale: every signature present
        assert len(setup.library.signatures()) == 6
