import os

import pytest

from repro.experiments.setup import (
    ExperimentSetup,
    build_workload_engine,
    default_setup,
    workload_plan,
    workload_setup,
)
from repro.workloads import WORKLOADS


class TestDefaultSetup:
    def test_builds_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = default_setup(
            scale=0.002, n_images=2, image_shape=(32, 48), use_cache=True
        )
        assert isinstance(setup, ExperimentSetup)
        assert setup.image_shape == (32, 48)
        assert len(setup.images) == 2
        cached = list(tmp_path.glob("library_scale_*.json"))
        assert len(cached) == 1

    def test_cache_reused(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = default_setup(scale=0.002, n_images=1,
                              image_shape=(16, 16))
        mtime = next(tmp_path.glob("*.json")).stat().st_mtime
        second = default_setup(scale=0.002, n_images=1,
                               image_shape=(16, 16))
        assert next(tmp_path.glob("*.json")).stat().st_mtime == mtime
        assert first.library.summary() == second.library.summary()

    def test_scale_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        setup = default_setup(n_images=1, image_shape=(16, 16),
                              use_cache=False)
        # the floor dominates at this scale: every signature present
        assert len(setup.library.signatures()) == 6


class TestWorkloadSetup:
    def test_plan_covers_exact_signatures(self):
        accelerator = WORKLOADS.get("sharpen3").build_accelerator()
        plan = workload_plan(accelerator, scale=0.001, floor=8)
        assert set(plan.counts) == set(accelerator.op_inventory())
        assert all(count >= 8 for count in plan.counts.values())

    def test_builds_library_and_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = workload_setup(
            "sharpen3", scale=0.0005, n_images=1,
            image_shape=(16, 24),
        )
        slot_sigs = {
            slot.signature
            for slot in setup.accelerator.op_slots()
        }
        assert set(setup.library.signatures()) == slot_sigs
        engine = build_workload_engine(setup)
        assert engine.run_count == 1  # one image, no scenarios
        # the library cache landed in the configured directory
        assert list(tmp_path.glob("library_wl_*.json"))

    def test_cache_shared_across_same_signature_workloads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # gaussian5 and box5 share (mul, 8) x (add, 16) signatures
        workload_setup(
            "gaussian5", scale=0.0005, n_images=1,
            image_shape=(16, 16),
        )
        files = sorted(tmp_path.glob("library_wl_*.json"))
        assert len(files) == 1
        mtime = files[0].stat().st_mtime
        setup = workload_setup(
            "box5", scale=0.0005, n_images=1, image_shape=(16, 16)
        )
        files_after = sorted(tmp_path.glob("library_wl_*.json"))
        assert files_after == files
        assert files[0].stat().st_mtime == mtime
        assert setup.scenarios is not None and len(setup.scenarios) == 3

    def test_scenarios_reach_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = workload_setup(
            "box3_6b", scale=0.0005, n_images=2, image_shape=(16, 16)
        )
        engine = build_workload_engine(setup)
        assert engine.run_count == 2 * 2  # images x scenarios
