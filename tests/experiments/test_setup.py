import pytest

from repro.errors import ValidationError
from repro.experiments.setup import (
    ExperimentSetup,
    build_workload_engine,
    default_setup,
    workload_plan,
    workload_setup,
)
from repro.library.io import save_library
from repro.store import ArtifactStore
from repro.workloads import WORKLOADS


def _library_blobs(tmp_path):
    """(key, path) of every library artifact in the store at tmp_path."""
    return [
        (ref.key, ref.path)
        for ref in ArtifactStore(tmp_path).entries("library")
    ]


class TestDefaultSetup:
    def test_builds_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = default_setup(
            scale=0.002, n_images=2, image_shape=(32, 48), use_cache=True
        )
        assert isinstance(setup, ExperimentSetup)
        assert setup.image_shape == (32, 48)
        assert len(setup.images) == 2
        assert len(_library_blobs(tmp_path)) == 1

    def test_cache_reused(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = default_setup(scale=0.002, n_images=1,
                              image_shape=(16, 16))
        [(_, blob)] = _library_blobs(tmp_path)
        mtime = blob.stat().st_mtime
        second = default_setup(scale=0.002, n_images=1,
                               image_shape=(16, 16))
        [(_, blob_after)] = _library_blobs(tmp_path)
        assert blob_after == blob
        assert blob.stat().st_mtime == mtime
        assert first.library.summary() == second.library.summary()

    def test_store_dir_env_takes_priority(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "legacy"))
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        default_setup(scale=0.002, n_images=1, image_shape=(16, 16))
        assert len(_library_blobs(tmp_path / "store")) == 1
        assert not (tmp_path / "legacy").exists()

    def test_blank_cache_dir_rejected(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        with pytest.raises(ValidationError, match="REPRO_CACHE_DIR"):
            default_setup(
                scale=0.002, n_images=1, image_shape=(16, 16)
            )

    def test_scale_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        setup = default_setup(n_images=1, image_shape=(16, 16),
                              use_cache=False)
        # the floor dominates at this scale: every signature present
        assert len(setup.library.signatures()) == 6


class TestWorkloadSetup:
    def test_plan_covers_exact_signatures(self):
        accelerator = WORKLOADS.get("sharpen3").build_accelerator()
        plan = workload_plan(accelerator, scale=0.001, floor=8)
        assert set(plan.counts) == set(accelerator.op_inventory())
        assert all(count >= 8 for count in plan.counts.values())

    def test_builds_library_and_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = workload_setup(
            "sharpen3", scale=0.0005, n_images=1,
            image_shape=(16, 24),
        )
        slot_sigs = {
            slot.signature
            for slot in setup.accelerator.op_slots()
        }
        assert set(setup.library.signatures()) == slot_sigs
        engine = build_workload_engine(setup)
        assert engine.run_count == 1  # one image, no scenarios
        # the library landed in the store at the configured directory
        assert len(_library_blobs(tmp_path)) == 1

    def test_cache_shared_across_same_signature_workloads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # gaussian5 and box5 share (mul, 8) x (add, 16) signatures
        workload_setup(
            "gaussian5", scale=0.0005, n_images=1,
            image_shape=(16, 16),
        )
        [(key, blob)] = _library_blobs(tmp_path)
        mtime = blob.stat().st_mtime
        setup = workload_setup(
            "box5", scale=0.0005, n_images=1, image_shape=(16, 16)
        )
        [(key_after, blob_after)] = _library_blobs(tmp_path)
        assert (key_after, blob_after) == (key, blob)
        assert blob.stat().st_mtime == mtime
        assert setup.scenarios is not None and len(setup.scenarios) == 3

    def test_legacy_json_cache_migrates_into_store(
        self, tmp_path, monkeypatch
    ):
        """Pre-store ``.cache`` library files are imported, not rebuilt."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = workload_setup(
            "sharpen3", scale=0.0005, n_images=1, image_shape=(16, 16)
        )
        # recreate the old loose-JSON layout from the built library,
        # then wipe the store: the next setup must import the file
        plan = workload_plan(
            first.accelerator, scale=0.0005, seed=0
        )
        tag = "-".join(
            f"{kind}{width}" for kind, width in sorted(plan.counts)
        )
        legacy = (
            tmp_path / f"library_wl_{tag}_scale_0.0005_seed_0.json"
        )
        save_library(first.library, legacy)
        for ref in ArtifactStore(tmp_path).entries("library"):
            ArtifactStore(tmp_path).delete(ref.kind, ref.key)
        second = workload_setup(
            "sharpen3", scale=0.0005, n_images=1, image_shape=(16, 16)
        )
        assert second.library.summary() == first.library.summary()
        assert len(_library_blobs(tmp_path)) == 1  # re-imported

    def test_scenarios_reach_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setup = workload_setup(
            "box3_6b", scale=0.0005, n_images=2, image_shape=(16, 16)
        )
        engine = build_workload_engine(setup)
        assert engine.run_count == 2 * 2  # images x scenarios
