"""Tiny-scale smoke runs of every table/figure driver."""

import numpy as np
import pytest

from repro.core.pipeline import AutoAxConfig
from repro.experiments.fig3_pmf import fig3_profiles, render_pmf_ascii
from repro.experiments.fig4_correlation import fig4_correlation
from repro.experiments.fig5_fronts import fig5_fronts
from repro.experiments.setup import ExperimentSetup
from repro.experiments.speedup import estimation_speedup
from repro.experiments.table1_operations import PAPER_TABLE1, table1_rows
from repro.experiments.table2_library import PAPER_TABLE2, table2_counts
from repro.experiments.table3_fidelity import table3_fidelity
from repro.experiments.table4_dse import table4_distances
from repro.experiments.table5_space import default_cases, table5_sizes


@pytest.fixture(scope="module")
def setup(tiny_library, small_images):
    return ExperimentSetup(library=tiny_library, images=small_images)


@pytest.fixture(scope="module")
def fast_config():
    return AutoAxConfig(
        n_train=30, n_test=15, engines=("K-Neighbors",),
        max_evaluations=400, seed=0,
    )


class TestTable1:
    def test_matches_paper_exactly(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert all(r["matches_paper"] for r in rows)
        assert [r["total"] for r in rows] == [5, 11, 17]


class TestTable2:
    def test_counts(self, setup):
        counts = table2_counts(setup.library)
        assert set(counts) == set(PAPER_TABLE2)
        for sig, row in counts.items():
            assert row["generated"] == setup.library.size(sig)
            assert 0 < row["fraction"] <= 1.0


class TestFig3:
    def test_profiles_and_render(self, setup):
        profiles = fig3_profiles(setup.images)
        assert set(profiles) == {"add1", "add2", "sub"}
        for data in profiles.values():
            stats = data["stats"]
            assert stats["operand_correlation"] > 0.5
            art = render_pmf_ascii(data["pmf"], bins=12)
            assert len(art.splitlines()) == 12

    def test_render_validates_input(self):
        with pytest.raises(ValueError):
            render_pmf_ascii(np.zeros((4, 5)))


class TestTable3:
    def test_rows_sorted_by_test_fidelity(self, setup):
        rows = table3_fidelity(
            setup, n_train=30, n_test=30,
            engines=["K-Neighbors", "Bayesian Ridge"],
        )
        names = [r.engine for r in rows]
        assert "Naive model" in names
        fids = [r.ssim_test for r in rows]
        assert fids == sorted(fids, reverse=True)


class TestFig4:
    def test_series(self, setup):
        series = fig4_correlation(
            setup, n_train=30, n_test=30, engines=("K-Neighbors",)
        )
        names = [s.engine for s in series]
        assert names == ["K-Neighbors", "Naive model"]
        for s in series:
            assert s.real_area.shape == s.estimated_area.shape
            assert -1.0 <= s.pearson_r <= 1.0


class TestTable4:
    def test_structure(self, setup):
        result = table4_distances(
            setup, budgets=(100,), per_op_cap=3, n_train=30, n_test=15,
            engines=("K-Neighbors",),
        )
        assert result.optimal_size >= 1
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.algorithm in ("Proposed", "Random sampling")
            assert row.to_optimal_avg >= 0.0


class TestTable5AndFig5:
    def test_table5(self, setup, fast_config):
        cases = default_cases(setup, n_kernels=2, n_gf_images=1)
        rows = table5_sizes(setup, config=fast_config, cases=cases[:1])
        assert rows[0].problem == "Sobel ED"
        assert rows[0].all_possible > rows[0].after_preprocessing
        assert rows[0].final_pareto <= rows[0].pseudo_pareto

    def test_fig5(self, setup, fast_config):
        cases = default_cases(setup, n_kernels=2, n_gf_images=1)
        out = fig5_fronts(
            setup, config=fast_config, uniform_points=5,
            cases=cases[:1],
        )
        fronts = out[0].fronts
        assert set(fronts) == {"proposed", "random", "uniform"}
        for f in fronts.values():
            assert f.hypervolume >= 0.0
            assert f.points.shape[1] == 2


class TestSpeedup:
    def test_speedup_measured(self, setup):
        result = estimation_speedup(
            setup, n_analysis=2, n_estimates=50, n_train=20,
            n_kernels=2, n_images=1,
        )
        assert result.analysis_seconds_per_config > 0
        assert result.estimate_seconds_per_config > 0
        assert result.speedup > 1.0
