"""Tiny-scale runs of the ablation drivers."""

import pytest

from repro.experiments.ablations import (
    ablate_hw_features,
    ablate_model_selection,
    ablate_preprocessing,
    ablate_restarts,
)
from repro.experiments.setup import ExperimentSetup


@pytest.fixture(scope="module")
def setup(tiny_library, small_images):
    return ExperimentSetup(library=tiny_library, images=small_images)


def test_ablate_model_selection(setup):
    result = ablate_model_selection(
        setup,
        n_train=30,
        n_test=20,
        engines=("K-Neighbors", "Bayesian Ridge"),
        max_evaluations=300,
        n_verify=15,
    )
    assert result.by_fidelity in ("K-Neighbors", "Bayesian Ridge")
    assert result.front_hv_fidelity_choice > 0
    assert result.front_hv_r2_choice > 0
    assert (
        result.fidelity_of_fidelity_choice
        >= result.fidelity_of_r2_choice
    )


def test_ablate_preprocessing(setup):
    result = ablate_preprocessing(
        setup, n_train=25, n_test=15, max_evaluations=300, n_verify=15
    )
    # the random control mirrors the reduced sizes per op
    assert result.random_sizes == result.pareto_sizes
    assert result.pareto_front_hv > 0
    assert result.random_front_hv > 0


def test_ablate_restarts(setup):
    result = ablate_restarts(
        setup, n_train=25, n_test=15, max_evaluations=600
    )
    assert result.with_restarts_size >= 1
    assert result.without_restarts_size >= 1
    assert result.random_sampling_size >= 1
    assert result.with_restarts_hv > 0


def test_ablate_hw_features(setup):
    result = ablate_hw_features(setup, n_train=40, n_test=25)
    assert set(result.fidelity_by_feature_set) == {
        "area", "area+power", "area+power+delay",
    }
    for fidelity in result.fidelity_by_feature_set.values():
        assert 0.0 <= fidelity <= 1.0


def test_ablate_qor_features(setup):
    from repro.experiments.ablations import ablate_qor_features

    result = ablate_qor_features(setup, n_train=40, n_test=25)
    assert 0.0 <= result.fidelity_wmed_only <= 1.0
    assert 0.0 <= result.fidelity_wmed_plus_variance <= 1.0


def test_error_stat_features(setup):
    from repro.accelerators import SobelEdgeDetector, profile_accelerator
    from repro.core import reduce_library
    from repro.errors import DSEError
    import pytest as _pytest

    acc = SobelEdgeDetector()
    profiles = profile_accelerator(acc, setup.images, rng=0)
    space = reduce_library(acc, setup.library, profiles)
    configs = space.random_configurations(5, rng=0)
    X = space.error_stat_features(configs, "error_var")
    assert X.shape == (5, space.n_slots)
    assert (X >= 0).all()
    with _pytest.raises(DSEError):
        space.error_stat_features(configs, "bogus_stat")
