import numpy as np
import pytest

from repro.circuits.base import (
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
    Operation,
)
from repro.errors import CircuitError


class TestExactCircuits:
    @pytest.mark.parametrize("width", [1, 4, 8, 16])
    def test_adder(self, width, rng):
        c = ExactAdder(width)
        a = rng.integers(0, 1 << width, 100)
        b = rng.integers(0, 1 << width, 100)
        assert np.array_equal(c.evaluate(a, b), a + b)
        assert c.result_width == width + 1
        assert c.is_exact()

    def test_subtractor_signed_result(self, rng):
        c = ExactSubtractor(10)
        a = rng.integers(0, 1024, 100)
        b = rng.integers(0, 1024, 100)
        out = c.evaluate(a, b)
        assert np.array_equal(out, a - b)
        assert out.min() >= -1023

    def test_multiplier(self, rng):
        c = ExactMultiplier(8)
        a = rng.integers(0, 256, 100)
        b = rng.integers(0, 256, 100)
        assert np.array_equal(c.evaluate(a, b), a * b)
        assert c.result_width == 16

    def test_scalar_inputs_return_int(self):
        assert ExactAdder(8).evaluate(3, 4) == 7
        assert isinstance(ExactAdder(8).evaluate(3, 4), int)

    def test_inputs_masked_to_width(self):
        # values wider than the operand width are truncated, as hardware
        # input ports would do
        assert ExactAdder(4).evaluate(0x1F, 0) == 0xF

    def test_invalid_width(self):
        with pytest.raises(CircuitError):
            ExactAdder(0)

    def test_op_enum(self):
        assert ExactAdder(8).op is Operation.ADD
        assert ExactSubtractor(8).op is Operation.SUB
        assert ExactMultiplier(8).op is Operation.MUL

    def test_exact_matches_evaluate_for_exact_circuits(self, rng):
        for c in (ExactAdder(8), ExactSubtractor(8), ExactMultiplier(8)):
            a = rng.integers(0, 256, 50)
            b = rng.integers(0, 256, 50)
            assert np.array_equal(c.evaluate(a, b), c.exact(a, b))
