import numpy as np
import pytest

from repro.circuits.adders import TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier
from repro.circuits.characterization import (
    ErrorStats,
    characterize,
    sample_operands,
)


class TestErrorStats:
    def test_exact_detection(self):
        stats = characterize(ExactAdder(8))
        assert stats.is_exact()
        assert stats.med == 0.0
        assert stats.error_prob == 0.0

    def test_truncated_adder_known_med(self):
        # truncating t bits of both operands loses E[a%2^t + b%2^t]
        # = 2 * (2^t - 1) / 2 under uniform inputs
        t = 3
        stats = characterize(TruncatedAdder(8, t, "zero"))
        expected = 2 * ((1 << t) - 1) / 2
        assert stats.med == pytest.approx(expected, rel=1e-12)

    def test_wce_is_max(self):
        stats = characterize(TruncatedAdder(8, 3, "zero"))
        assert stats.wce == 14  # 7 + 7

    def test_error_prob(self):
        stats = characterize(TruncatedAdder(8, 1, "zero"))
        # error iff at least one dropped LSB is 1: 3/4 of input pairs
        assert stats.error_prob == pytest.approx(0.75)

    def test_mse_at_least_squared_med(self):
        stats = characterize(TruncatedAdder(8, 4, "zero"))
        assert stats.mse >= stats.med**2


class TestSampling:
    def test_sample_shapes(self):
        a, b = sample_operands(16, 100, rng=0)
        assert a.shape == (100,)
        assert a.max() < 1 << 16
        assert a.min() >= 0

    def test_sampled_characterization_close_to_exhaustive(self):
        circ = TruncatedAdder(8, 4, "zero")
        exact = characterize(circ, exhaustive=True)
        sampled = characterize(
            circ, exhaustive=False, sample_size=1 << 14, rng=0
        )
        assert sampled.med == pytest.approx(exact.med, rel=0.05)

    def test_sampled_deterministic_with_seed(self):
        circ = TruncatedAdder(16, 6)
        s1 = characterize(circ, sample_size=512, rng=3)
        s2 = characterize(circ, sample_size=512, rng=3)
        assert s1 == s2

    def test_wide_circuit_uses_sampling(self):
        stats = characterize(ExactMultiplier(16), sample_size=256)
        assert stats.is_exact()


class TestExhaustiveFlag:
    def test_narrow_auto_mode_records_exhaustive(self):
        assert characterize(TruncatedAdder(8, 2)).exhaustive

    def test_wide_auto_mode_records_sampled(self):
        stats = characterize(ExactMultiplier(16), sample_size=256)
        assert not stats.exhaustive

    def test_forced_modes_recorded(self):
        circ = TruncatedAdder(8, 3)
        assert characterize(circ, exhaustive=True).exhaustive
        assert not characterize(
            circ, exhaustive=False, sample_size=512
        ).exhaustive

    def test_flag_does_not_change_exactness(self):
        stats = characterize(
            ExactAdder(8), exhaustive=False, sample_size=512
        )
        assert stats.is_exact() and not stats.exhaustive


class TestCharacterizeMany:
    def test_matches_singles_mixed_widths(self):
        from repro.circuits.characterization import characterize_many

        circuits = [
            TruncatedAdder(8, 2),
            ExactAdder(8),
            TruncatedAdder(16, 6),
            ExactMultiplier(16),
            TruncatedAdder(8, 5, "copy"),
            TruncatedAdder(16, 3),
        ]
        batched = characterize_many(circuits, sample_size=512)
        singles = [
            characterize(c, sample_size=512) for c in circuits
        ]
        assert batched == singles

    def test_counter_counts_circuits(self):
        from repro.circuits.characterization import (
            characterization_count,
            characterize_many,
        )

        before = characterization_count()
        characterize_many(
            [TruncatedAdder(8, 1), TruncatedAdder(8, 2)],
            sample_size=256,
        )
        assert characterization_count() == before + 2
