import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.characterization import characterize
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    MaskedMultiplier,
    MitchellMultiplier,
    PerforatedMultiplier,
    RecursiveApproxMultiplier,
    TruncatedMultiplier,
)
from repro.errors import CircuitError


def exhaustive_pairs(width=8):
    size = 1 << width
    idx = np.arange(size * size)
    return idx >> width, idx & (size - 1)


class TestMaskedMultiplier:
    def test_full_mask_exact(self):
        c = MaskedMultiplier(8, [255] * 8)
        a, b = exhaustive_pairs()
        assert np.array_equal(c.evaluate(a, b), a * b)
        assert c.is_exact()

    def test_never_overestimates(self):
        c = MaskedMultiplier(8, [0b11110000] * 8)
        a, b = exhaustive_pairs()
        assert np.all(c.evaluate(a, b) <= a * b)

    def test_empty_mask_is_zero(self):
        c = MaskedMultiplier(8, [0] * 8)
        a, b = exhaustive_pairs()
        assert np.all(c.evaluate(a, b) == 0)

    def test_kept_cells(self):
        c = MaskedMultiplier(8, [0b1, 0b11] + [0] * 6)
        assert c.kept_cells() == 3

    def test_wrong_mask_count(self):
        with pytest.raises(CircuitError):
            MaskedMultiplier(8, [255] * 7)


class TestBrokenArrayMultiplier:
    def test_no_break_exact(self):
        c = BrokenArrayMultiplier(8, 0, 0)
        a, b = exhaustive_pairs()
        assert np.array_equal(c.evaluate(a, b), a * b)

    def test_error_monotone_in_vbl(self):
        meds = [
            characterize(BrokenArrayMultiplier(8, v, 8)).med
            for v in (0, 3, 6, 9)
        ]
        assert meds == sorted(meds)

    def test_protected_rows_reduce_error(self):
        high_hbl = characterize(BrokenArrayMultiplier(8, 8, 8)).med
        low_hbl = characterize(BrokenArrayMultiplier(8, 8, 2)).med
        assert low_hbl <= high_hbl

    def test_underestimates_only(self):
        c = BrokenArrayMultiplier(8, 6, 4)
        a, b = exhaustive_pairs()
        assert np.all(c.evaluate(a, b) <= a * b)

    @pytest.mark.parametrize("vbl,hbl", [(-1, 0), (16, 0), (0, 9)])
    def test_invalid_params(self, vbl, hbl):
        with pytest.raises(CircuitError):
            BrokenArrayMultiplier(8, vbl, hbl)


class TestPerforatedMultiplier:
    def test_no_rows_exact(self):
        c = PerforatedMultiplier(8, [])
        a, b = exhaustive_pairs()
        assert np.array_equal(c.evaluate(a, b), a * b)

    def test_omitting_row_drops_contribution(self):
        c = PerforatedMultiplier(8, [0])
        # with b = 1 only row 0 contributes, so output is 0
        a = np.arange(256)
        assert np.all(c.evaluate(a, np.ones(256, dtype=np.int64)) == 0)

    def test_row_out_of_range(self):
        with pytest.raises(CircuitError):
            PerforatedMultiplier(8, [8])


class TestTruncatedMultiplier:
    def test_truncation_formula(self):
        c = TruncatedMultiplier(8, 2, 3)
        a, b = exhaustive_pairs()
        expected = ((a >> 2) << 2) * ((b >> 3) << 3)
        assert np.array_equal(c.evaluate(a, b), expected)

    def test_zero_truncation_exact(self):
        assert TruncatedMultiplier(8, 0, 0).is_exact()


class TestRecursiveApproxMultiplier:
    def test_no_approx_leaves_exact(self):
        c = RecursiveApproxMultiplier(8, [])
        a, b = exhaustive_pairs()
        assert np.array_equal(c.evaluate(a, b), a * b)

    def test_2x2_approximation_value(self):
        c = RecursiveApproxMultiplier(2, [0])
        assert c.evaluate(3, 3) == 7
        # all other products stay exact
        for a in range(4):
            for b in range(4):
                if (a, b) != (3, 3):
                    assert c.evaluate(a, b) == a * b

    def test_more_leaves_more_error(self):
        one = characterize(RecursiveApproxMultiplier(8, [0])).med
        all_leaves = characterize(
            RecursiveApproxMultiplier(8, range(16))
        ).med
        assert all_leaves > one

    def test_mre_matches_literature(self):
        # Kulkarni's design has a known mean relative error around 3.3%
        stats = characterize(RecursiveApproxMultiplier(8, range(16)))
        assert 0.02 < stats.mre < 0.045

    def test_underestimates_only(self):
        c = RecursiveApproxMultiplier(8, range(16))
        a, b = exhaustive_pairs()
        assert np.all(c.evaluate(a, b) <= a * b)

    def test_width_must_be_power_of_two(self):
        with pytest.raises(CircuitError):
            RecursiveApproxMultiplier(6, [])

    def test_leaf_out_of_range(self):
        with pytest.raises(CircuitError):
            RecursiveApproxMultiplier(8, [16])


class TestMitchellMultiplier:
    def test_zero_operand(self):
        c = MitchellMultiplier(8, 8)
        assert c.evaluate(0, 37) == 0
        assert c.evaluate(37, 0) == 0

    def test_powers_of_two_exact(self):
        c = MitchellMultiplier(8, 8)
        for i in range(8):
            for j in range(8):
                assert c.evaluate(1 << i, 1 << j) == 1 << (i + j)

    def test_underestimates(self):
        c = MitchellMultiplier(8, 8)
        a, b = exhaustive_pairs()
        assert np.all(c.evaluate(a, b) <= a * b)

    def test_mre_matches_literature(self):
        # Mitchell's approximation has a known mean error around 3.8%
        stats = characterize(MitchellMultiplier(8, 16))
        assert 0.025 < stats.mre < 0.05

    def test_fewer_frac_bits_more_error(self):
        fine = characterize(MitchellMultiplier(8, 12)).med
        coarse = characterize(MitchellMultiplier(8, 3)).med
        assert coarse >= fine

    def test_invalid_frac_bits(self):
        with pytest.raises(CircuitError):
            MitchellMultiplier(8, 0)


class TestDrumMultiplier:
    def test_full_k_exact(self):
        c = DrumMultiplier(8, 8)
        a, b = exhaustive_pairs()
        assert np.array_equal(c.evaluate(a, b), a * b)

    def test_small_operands_exact(self):
        c = DrumMultiplier(8, 4)
        a = np.arange(16)
        b = np.arange(16)
        assert np.array_equal(c.evaluate(a, b), a * b)

    def test_low_relative_error(self):
        stats = characterize(DrumMultiplier(8, 5))
        assert stats.mre < 0.06

    def test_unbiased_sign_mix(self):
        # the forced-one LSB makes DRUM roughly unbiased: errors occur in
        # both directions
        c = DrumMultiplier(8, 4)
        a, b = exhaustive_pairs()
        err = c.evaluate(a, b) - a * b
        assert (err > 0).any() and (err < 0).any()

    def test_invalid_k(self):
        with pytest.raises(CircuitError):
            DrumMultiplier(8, 1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_relative_error_bound(self, a, b):
        c = DrumMultiplier(8, 4)
        approx = int(c.evaluate(a, b))
        exact = a * b
        if exact:
            # each DRUM(k) operand errs by at most 2^-(k-1), so the
            # product errs by at most (1 + 2^-(k-1))^2 - 1 ~ 26.6%
            assert abs(approx - exact) / exact <= (1 + 2**-3) ** 2 - 1 + 1e-9
