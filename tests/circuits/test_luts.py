import numpy as np
import pytest

from repro.circuits.adders import TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier, ExactSubtractor
from repro.circuits.luts import build_exact_lut, build_lut, lut_index
from repro.errors import CircuitError


class TestLutIndex:
    def test_formula(self):
        assert lut_index(3, 5, 8) == (3 << 8) | 5

    def test_masks_inputs(self):
        assert lut_index(0x1FF, 0x1FF, 8) == (0xFF << 8) | 0xFF

    def test_vectorised(self):
        a = np.array([0, 1, 2])
        b = np.array([3, 4, 5])
        idx = lut_index(a, b, 4)
        assert np.array_equal(idx, (a << 4) | b)


class TestBuildLut:
    def test_adder_lut(self):
        lut = build_lut(ExactAdder(4))
        assert lut.shape == (256,)
        assert lut[lut_index(7, 9, 4)] == 16

    def test_subtractor_lut_signed(self):
        lut = build_lut(ExactSubtractor(4))
        assert lut[lut_index(0, 15, 4)] == -15

    def test_lut_consistent_with_evaluate(self, rng):
        circ = TruncatedAdder(8, 3, "half")
        lut = build_lut(circ)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        assert np.array_equal(
            lut[lut_index(a, b, 8)], circ.evaluate(a, b)
        )

    def test_exact_lut(self):
        lut = build_exact_lut(TruncatedAdder(4, 2))
        assert lut[lut_index(3, 3, 4)] == 6

    def test_width_limit(self):
        with pytest.raises(CircuitError):
            build_lut(ExactMultiplier(16))
        with pytest.raises(CircuitError):
            build_exact_lut(ExactMultiplier(16))
