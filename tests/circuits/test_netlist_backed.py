"""Netlist-backed circuits: packed gate-level LUTs == behavioural truth.

:class:`~repro.circuits.netlist_backed.NetlistCircuit` routes exhaustive
characterisation through ``simulate_packed`` instead of ``4**width``
word-mode gate evaluations.  The contract is bit-identity: for every
buildable family, the packed LUT, the exact-reference LUT, word-mode
evaluation and the derived :class:`ErrorStats` must all equal the
behavioural model's — decoding included (subtraction folds the
``width + 1``-bit output word back into the signed behavioural range).
"""

import numpy as np
import pytest

from repro.circuits import (
    BlockSubtractor,
    DrumMultiplier,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
    NetlistCircuit,
    QuAdAdder,
    RecursiveApproxMultiplier,
    TruncatedAdder,
    TruncatedSubtractor,
    build_lut,
    characterize,
    wrap_netlist,
)
from repro.circuits.base import Operation
from repro.circuits.luts import build_exact_lut
from repro.errors import CircuitError
from repro.netlist.builders import build_netlist

FAMILIES = [
    ExactAdder(6),
    ExactSubtractor(6),
    ExactMultiplier(4),
    TruncatedAdder(8, 3, "zero"),
    QuAdAdder(8, [4, 4], [0, 2]),
    TruncatedSubtractor(8, 3, "zero"),
    BlockSubtractor(8, [4, 4], [0, 2]),
    RecursiveApproxMultiplier(4, [0]),
]


@pytest.mark.parametrize(
    "circuit", FAMILIES, ids=lambda c: c.name
)
class TestPackedEquivalence:
    def test_lut_bit_identical(self, circuit):
        wrapped = wrap_netlist(circuit)
        assert np.array_equal(build_lut(wrapped), build_lut(circuit))

    def test_exact_lut_bit_identical(self, circuit):
        wrapped = wrap_netlist(circuit)
        assert np.array_equal(
            build_exact_lut(wrapped), build_exact_lut(circuit)
        )

    def test_word_mode_matches_packed(self, circuit, rng):
        wrapped = wrap_netlist(circuit)
        a = rng.integers(0, 1 << circuit.width, size=64)
        b = rng.integers(0, 1 << circuit.width, size=64)
        assert np.array_equal(
            wrapped.evaluate(a, b), circuit.evaluate(a, b)
        )

    def test_characterisation_identical(self, circuit):
        wrapped = wrap_netlist(circuit)
        assert characterize(wrapped) == characterize(circuit)


def test_optimised_netlist_still_equivalent():
    circuit = TruncatedAdder(8, 3, "zero")
    wrapped = wrap_netlist(circuit, optimized=True)
    assert np.array_equal(build_lut(wrapped), build_lut(circuit))


def test_wrapper_name_and_params():
    circuit = ExactAdder(6)
    wrapped = wrap_netlist(circuit)
    assert wrapped.name == f"{circuit.name}_netlist"
    assert wrapped.params() == {"op": "add", "width": 6}


def test_macro_cells_rejected():
    drum = DrumMultiplier(8, 4)
    with pytest.raises(CircuitError, match="macro"):
        wrap_netlist(drum)


def test_port_width_validated():
    netlist = build_netlist(ExactAdder(6))
    with pytest.raises(CircuitError, match="input 'a'"):
        NetlistCircuit(netlist, Operation.ADD, 8)
