import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    AlmostCorrectAdder,
    GeArAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.characterization import characterize
from repro.errors import CircuitError


def exhaustive_pairs(width):
    size = 1 << width
    idx = np.arange(size * size)
    return idx >> width, idx & (size - 1)


class TestTruncatedAdder:
    def test_zero_truncation_exact(self, rng):
        c = TruncatedAdder(8, 0)
        a = rng.integers(0, 256, 200)
        b = rng.integers(0, 256, 200)
        assert np.array_equal(c.evaluate(a, b), a + b)
        assert c.is_exact()

    def test_formula(self):
        c = TruncatedAdder(8, 3, "zero")
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), ((a >> 3) + (b >> 3)) << 3)

    def test_half_fill_reduces_bias(self):
        zero = characterize(TruncatedAdder(8, 4, "zero"))
        half = characterize(TruncatedAdder(8, 4, "half"))
        assert half.med < zero.med

    def test_copy_fill(self):
        c = TruncatedAdder(8, 4, "copy")
        a, b = exhaustive_pairs(8)
        expected = (((a >> 4) + (b >> 4)) << 4) + (a & 15)
        assert np.array_equal(c.evaluate(a, b), expected)

    def test_error_monotone_in_truncation(self):
        meds = [
            characterize(TruncatedAdder(8, t)).med for t in range(0, 8, 2)
        ]
        assert meds == sorted(meds)

    @pytest.mark.parametrize("bad", [-1, 9])
    def test_invalid_truncation(self, bad):
        with pytest.raises(CircuitError):
            TruncatedAdder(8, bad)

    def test_invalid_fill(self):
        with pytest.raises(CircuitError):
            TruncatedAdder(8, 2, fill="bogus")


class TestLowerOrAdder:
    def test_exact_when_zero(self, rng):
        c = LowerOrAdder(8, 0)
        a = rng.integers(0, 256, 100)
        b = rng.integers(0, 256, 100)
        assert np.array_equal(c.evaluate(a, b), a + b)

    def test_or_region(self):
        c = LowerOrAdder(8, 4)
        a, b = exhaustive_pairs(8)
        out = c.evaluate(a, b)
        assert np.array_equal(out & 15, (a | b) & 15)

    def test_never_underestimates_on_low_part_only(self):
        # a | b >= max(a, b) on the OR region, so LOA with no carries lost
        # never yields less than the truncated sum of the high parts
        c = LowerOrAdder(8, 3)
        a, b = exhaustive_pairs(8)
        out = c.evaluate(a, b)
        high = ((a >> 3) + (b >> 3)) << 3
        assert np.all(out >= high)

    def test_error_monotone(self):
        meds = [characterize(LowerOrAdder(8, l)).med for l in (0, 2, 4, 6)]
        assert meds == sorted(meds)

    def test_invalid_param(self):
        with pytest.raises(CircuitError):
            LowerOrAdder(8, 9)


class TestAlmostCorrectAdder:
    def test_full_window_exact(self):
        c = AlmostCorrectAdder(8, 8)
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), a + b)
        assert c.is_exact()

    def test_small_window_errs(self):
        assert characterize(AlmostCorrectAdder(8, 2)).med > 0

    def test_wider_window_no_worse(self):
        med3 = characterize(AlmostCorrectAdder(8, 3)).med
        med6 = characterize(AlmostCorrectAdder(8, 6)).med
        assert med6 <= med3

    def test_result_in_range(self):
        c = AlmostCorrectAdder(8, 3)
        a, b = exhaustive_pairs(8)
        out = c.evaluate(a, b)
        assert out.min() >= 0
        assert out.max() < 512

    def test_invalid_window(self):
        with pytest.raises(CircuitError):
            AlmostCorrectAdder(8, 0)


class TestQuAdAdder:
    def test_single_block_exact(self):
        c = QuAdAdder(8, [8])
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), a + b)

    def test_full_prediction_exact(self):
        # predicting over all lower bits reproduces the exact carry
        c = QuAdAdder(8, [4, 4], [0, 4])
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), a + b)

    def test_no_prediction_drops_carries(self):
        c = QuAdAdder(8, [4, 4], [0, 0])
        # 0x0F + 0x01 carries into the upper block, which is not predicted
        assert c.evaluate(0x0F, 0x01) == 0x00

    def test_blocks_must_sum_to_width(self):
        with pytest.raises(CircuitError):
            QuAdAdder(8, [4, 3])

    def test_prediction_cannot_exceed_offset(self):
        with pytest.raises(CircuitError):
            QuAdAdder(8, [4, 4], [0, 5])

    def test_params_roundtrip(self):
        c = QuAdAdder(8, [2, 3, 3], [0, 1, 2])
        p = c.params()
        c2 = QuAdAdder(8, **p)
        assert c2.name == c.name

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_result_bounded(self, a, b):
        c = QuAdAdder(8, [3, 5], [0, 2])
        out = c.evaluate(a, b)
        assert 0 <= out < 512


class TestGeArAdder:
    def test_gear_is_quad_special_case(self):
        g = GeArAdder(8, 2, 2)
        assert g.blocks == (2, 2, 2, 2)
        assert g.predictions == (0, 2, 2, 2)

    def test_large_r_exact(self):
        g = GeArAdder(8, 8, 0)
        a, b = exhaustive_pairs(8)
        assert np.array_equal(g.evaluate(a, b), a + b)

    def test_more_prediction_no_worse(self):
        med0 = characterize(GeArAdder(8, 2, 0)).med
        med2 = characterize(GeArAdder(8, 2, 2)).med
        assert med2 <= med0

    def test_invalid_params(self):
        with pytest.raises(CircuitError):
            GeArAdder(8, 0, 1)
        with pytest.raises(CircuitError):
            GeArAdder(8, 2, -1)
