import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.characterization import characterize
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.errors import CircuitError


def exhaustive_pairs(width):
    size = 1 << width
    idx = np.arange(size * size)
    return idx >> width, idx & (size - 1)


class TestTruncatedSubtractor:
    def test_zero_truncation_exact(self, rng):
        c = TruncatedSubtractor(10, 0)
        a = rng.integers(0, 1024, 300)
        b = rng.integers(0, 1024, 300)
        assert np.array_equal(c.evaluate(a, b), a - b)

    def test_formula(self):
        c = TruncatedSubtractor(8, 3, "zero")
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), ((a >> 3) - (b >> 3)) << 3)

    def test_copy_fill(self):
        c = TruncatedSubtractor(8, 3, "copy")
        a, b = exhaustive_pairs(8)
        expected = (((a >> 3) - (b >> 3)) << 3) + (a & 7)
        assert np.array_equal(c.evaluate(a, b), expected)

    def test_error_monotone(self):
        meds = [
            characterize(TruncatedSubtractor(10, t)).med
            for t in (0, 2, 4, 6)
        ]
        assert meds == sorted(meds)

    def test_result_range(self):
        c = TruncatedSubtractor(8, 4)
        a, b = exhaustive_pairs(8)
        out = c.evaluate(a, b)
        assert out.min() >= -255
        assert out.max() <= 255

    def test_invalid_fill(self):
        with pytest.raises(CircuitError):
            TruncatedSubtractor(8, 1, "half")


class TestBlockSubtractor:
    def test_single_block_exact(self):
        c = BlockSubtractor(10, [10])
        a, b = exhaustive_pairs(10)
        assert np.array_equal(c.evaluate(a, b), a - b)

    def test_full_prediction_exact(self):
        c = BlockSubtractor(8, [4, 4], [0, 4])
        a, b = exhaustive_pairs(8)
        assert np.array_equal(c.evaluate(a, b), a - b)

    def test_broken_borrow(self):
        c = BlockSubtractor(8, [4, 4], [0, 0])
        # 0x10 - 0x01 needs a borrow crossing the block boundary
        assert c.evaluate(0x10, 0x01) != 0x0F

    def test_sign_correct_for_clearly_negative(self):
        c = BlockSubtractor(8, [4, 4], [0, 2])
        assert c.evaluate(0, 255) < 0

    def test_params_roundtrip(self):
        c = BlockSubtractor(10, [4, 6], [0, 3])
        c2 = BlockSubtractor(10, **c.params())
        assert c2.name == c.name

    def test_invalid_blocks(self):
        with pytest.raises(CircuitError):
            BlockSubtractor(10, [4, 4])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1023),
           st.integers(min_value=0, max_value=1023))
    def test_result_in_signed_range(self, a, b):
        c = BlockSubtractor(10, [3, 3, 4], [0, 2, 1])
        out = int(c.evaluate(a, b))
        assert -1024 < out < 1024
