import pytest

from repro.circuits.adders import TruncatedAdder
from repro.circuits.base import ExactAdder, ExactSubtractor
from repro.errors import LibraryError
from repro.library.component import record_from_circuit
from repro.library.library import ComponentLibrary


@pytest.fixture()
def library():
    return ComponentLibrary(
        [
            record_from_circuit(ExactAdder(8)),
            record_from_circuit(TruncatedAdder(8, 2)),
            record_from_circuit(TruncatedAdder(8, 4)),
            record_from_circuit(ExactSubtractor(10)),
        ]
    )


class TestComponentLibrary:
    def test_signatures(self, library):
        assert library.signatures() == [("add", 8), ("sub", 10)]

    def test_size(self, library):
        assert library.size() == 4
        assert library.size(("add", 8)) == 3
        assert len(library) == 4

    def test_components_copy(self, library):
        group = library.components(("add", 8))
        group.clear()
        assert library.size(("add", 8)) == 3

    def test_get_by_name(self, library):
        rec = library.get(("add", 8), "add8_tra_t2_zero")
        assert rec.name == "add8_tra_t2_zero"

    def test_get_missing(self, library):
        with pytest.raises(LibraryError):
            library.get(("add", 8), "nope")

    def test_exact_component(self, library):
        assert library.exact_component(("add", 8)).is_exact()

    def test_no_exact_raises(self):
        lib = ComponentLibrary([record_from_circuit(TruncatedAdder(8, 2))])
        with pytest.raises(LibraryError):
            lib.exact_component(("add", 8))

    def test_unknown_signature(self, library):
        with pytest.raises(LibraryError):
            library.components(("mul", 8))

    def test_duplicate_rejected(self, library):
        with pytest.raises(LibraryError):
            library.add(record_from_circuit(ExactAdder(8)))

    def test_contains(self, library):
        assert ("add", 8) in library
        assert ("mul", 8) not in library

    def test_summary(self, library):
        assert library.summary() == {("add", 8): 3, ("sub", 10): 1}

    def test_iteration(self, library):
        names = [rec.name for rec in library]
        assert len(names) == 4
        assert len(set(names)) == 4
