import pytest

from repro.library.generation import (
    GenerationPlan,
    PAPER_COUNTS,
    generate_adders,
    generate_library,
    generate_multipliers,
    generate_subtractors,
    paper_scale_plan,
    scaled_plan,
)


class TestGenerators:
    def test_adders_count_and_uniqueness(self):
        records = generate_adders(8, 40, rng=0, sample_size=1 << 10)
        assert len(records) == 40
        names = {r.name for r in records}
        assert len(names) == 40
        assert records[0].is_exact()

    def test_adders_all_correct_signature(self):
        for rec in generate_adders(9, 20, rng=0, sample_size=1 << 10):
            assert rec.signature == ("add", 9)

    def test_subtractors(self):
        records = generate_subtractors(10, 25, rng=0, sample_size=1 << 10)
        assert len(records) == 25
        assert records[0].is_exact()
        assert all(r.signature == ("sub", 10) for r in records)

    def test_multipliers(self):
        records = generate_multipliers(8, 30, rng=0, sample_size=1 << 10)
        assert len(records) == 30
        assert records[0].is_exact()
        families = {r.family for r in records}
        assert len(families) >= 3  # diverse families

    def test_deterministic(self):
        a = generate_adders(8, 15, rng=5, sample_size=1 << 10)
        b = generate_adders(8, 15, rng=5, sample_size=1 << 10)
        assert [r.name for r in a] == [r.name for r in b]

    def test_large_request_exceeds_systematic_families(self):
        records = generate_adders(8, 120, rng=0, sample_size=1 << 10)
        assert len(records) == 120  # random QuAds filled the quota


class TestPlans:
    def test_paper_scale_matches_table2(self):
        plan = paper_scale_plan()
        assert plan.counts[("mul", 8)] == 29911
        assert plan.counts[("add", 8)] == 6979
        assert plan.total() == sum(PAPER_COUNTS.values())

    def test_scaled_plan_floor(self):
        plan = scaled_plan(0.001, floor=16)
        assert all(c >= 16 for c in plan.counts.values())

    def test_scaled_plan_proportional(self):
        plan = scaled_plan(0.01, floor=1)
        assert plan.counts[("mul", 8)] == pytest.approx(299, abs=1)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_plan(0.0)

    def test_generate_library(self):
        plan = GenerationPlan(
            {("add", 8): 10, ("mul", 8): 8}, seed=1, sample_size=1 << 10
        )
        lib = generate_library(plan)
        assert lib.summary() == {("add", 8): 10, ("mul", 8): 8}
