"""The parallel store-backed library construction pipeline.

The load-bearing property: whatever the worker count, chunking or store
temperature, the pipeline produces a library component-for-component
identical to the serial seed path (per-signature ``generate_*`` calls on
:func:`~repro.utils.rng.spawn_rngs` children).
"""

import json

import pytest

from repro.circuits.characterization import characterization_count
from repro.library.component import ComponentRecord
from repro.library.generation import (
    GenerationPlan,
    enumerate_adders,
    generate_adders,
    generate_library,
    generate_multipliers,
    generate_subtractors,
)
from repro.library.io import library_payload
from repro.library.library import ComponentLibrary
from repro.library.pipeline import (
    COMPONENT_KIND,
    build_library,
    component_key,
)
from repro.store import ArtifactStore, RunLedger
from repro.synthesis.synthesizer import synthesis_run_count
from repro.utils.rng import spawn_rngs

#: Counts straddle the systematic families (the add/sub quotas overflow
#: into random QuAd / block sampling), so the tests cover the seeded
#: sampling path, not just deterministic enumeration.
PLAN = GenerationPlan(
    {("add", 4): 30, ("sub", 4): 12, ("mul", 4): 20},
    seed=7,
    sample_size=1 << 8,
)

SERIAL_GENERATORS = {
    "add": generate_adders,
    "sub": generate_subtractors,
    "mul": generate_multipliers,
}


def payload_text(library: ComponentLibrary) -> str:
    return json.dumps(library_payload(library), sort_keys=True)


def serial_seed_path(plan: GenerationPlan) -> ComponentLibrary:
    """The reference construction: per-signature serial generation."""
    library = ComponentLibrary()
    items = sorted(plan.counts.items())
    children = spawn_rngs(plan.seed, len(items))
    for ((kind, width), count), child in zip(items, children):
        library.extend(
            SERIAL_GENERATORS[kind](
                width, count, rng=child, sample_size=plan.sample_size
            )
        )
    return library


@pytest.fixture(scope="module")
def reference():
    return payload_text(serial_seed_path(PLAN))


class TestWorkerEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_for_any_worker_count(self, workers, reference):
        result = build_library(PLAN, workers=workers, chunk_size=8)
        assert payload_text(result.library) == reference

    def test_identical_for_any_chunk_size(self, reference):
        for chunk_size in (1, 5, 64):
            result = build_library(
                PLAN, workers=2, chunk_size=chunk_size
            )
            assert payload_text(result.library) == reference

    def test_generate_library_is_the_pipeline(self, reference):
        assert payload_text(generate_library(PLAN)) == reference

    def test_stats_without_store(self):
        result = build_library(PLAN, workers=1)
        assert result.stats.components == PLAN.total()
        assert result.stats.characterized == PLAN.total()
        assert result.stats.synthesized == PLAN.total()
        assert result.stats.store_hits == 0
        assert result.run_id is None
        assert result.stats.per_signature == {
            "add4": 30, "mul4": 20, "sub4": 12,
        }


class TestStoreMemoisation:
    def test_warm_rebuild_is_free_and_identical(self, tmp_path,
                                                reference):
        store = ArtifactStore(tmp_path / "store")
        cold = build_library(PLAN, workers=2, store=store)
        assert cold.stats.characterized == PLAN.total()

        chars_before = characterization_count()
        synth_before = synthesis_run_count()
        warm = build_library(PLAN, workers=1, store=store)
        assert warm.stats.store_hits == PLAN.total()
        assert warm.stats.characterized == 0
        assert warm.stats.synthesized == 0
        # process-level proof, not just accounting: nothing ran
        assert characterization_count() == chars_before
        assert synthesis_run_count() == synth_before
        assert payload_text(warm.library) == reference
        assert payload_text(cold.library) == reference

    def test_rescaled_build_pays_only_for_new_components(self,
                                                         tmp_path):
        store = ArtifactStore(tmp_path / "store")
        small = GenerationPlan(
            {("add", 4): 10}, seed=7, sample_size=1 << 8
        )
        grown = GenerationPlan(
            {("add", 4): 20}, seed=7, sample_size=1 << 8
        )
        build_library(small, store=store)
        result = build_library(grown, store=store)
        # the first 10 circuits are the same systematic prefix
        assert result.stats.store_hits == 10
        assert result.stats.characterized == 10

    def test_crossplan_sharing(self, tmp_path):
        """Another plan containing the same signature reuses entries."""
        store = ArtifactStore(tmp_path / "store")
        build_library(
            GenerationPlan({("add", 4): 10}, seed=0,
                           sample_size=1 << 8),
            store=store,
        )
        result = build_library(
            GenerationPlan(
                {("add", 4): 10, ("sub", 4): 5}, seed=3,
                sample_size=1 << 8,
            ),
            store=store,
        )
        # systematic add4 prefix is plan- and seed-independent
        assert result.stats.store_hits == 10
        assert result.stats.characterized == 5

    def test_ledger_manifest_records_build(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        result = build_library(PLAN, store=store)
        manifest = RunLedger(store.root).get(result.run_id)
        assert manifest["kind"] == "library-build"
        assert manifest["extra"]["build"]["characterized"] == (
            PLAN.total()
        )
        warm = build_library(PLAN, store=store)
        warm_manifest = RunLedger(store.root).get(warm.run_id)
        assert warm_manifest["extra"]["build"]["synthesized"] == 0
        assert warm_manifest["stages"][0]["cache"] == "hit"

    def test_record_run_off_writes_no_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        result = build_library(PLAN, store=store, record_run=False)
        assert result.run_id is None
        assert RunLedger(store.root).runs() == []

    def test_gc_keeps_component_pool(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        build_library(PLAN, store=store)
        store.gc(RunLedger(store.root).referenced_artifacts())
        warm = build_library(PLAN, store=store)
        assert warm.stats.characterized == 0

    def test_corrupt_component_entry_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = GenerationPlan(
            {("add", 4): 4}, seed=0, sample_size=1 << 8
        )
        build_library(plan, store=store)
        ref = store.entries(COMPONENT_KIND)[0]
        ref.path.write_text("{ not json")
        result = build_library(plan, store=store)
        assert result.stats.characterized == 1
        assert result.stats.store_hits == 3


class TestComponentKey:
    def test_narrow_key_ignores_sample_size(self):
        circuit = enumerate_adders(4, 3)[1]
        assert component_key(circuit, 1 << 8) == (
            component_key(circuit, 1 << 15)
        )

    def test_wide_key_depends_on_sample_size(self):
        circuit = enumerate_adders(16, 3)[1]
        assert component_key(circuit, 1 << 8) != (
            component_key(circuit, 1 << 15)
        )

    def test_distinct_circuits_distinct_keys(self):
        circuits = enumerate_adders(4, 20)
        keys = {component_key(c, 1 << 8) for c in circuits}
        assert len(keys) == len(circuits)


class TestStoreRoundTrip:
    def test_component_payload_roundtrips_through_store(self,
                                                        tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = GenerationPlan(
            {("add", 16): 6}, seed=0, sample_size=1 << 8
        )
        cold = build_library(plan, store=store)
        warm = build_library(plan, store=store)
        for a, b in zip(cold.library, warm.library):
            assert a.name == b.name
            assert a.errors == b.errors  # exact float round-trip
            assert not a.errors.exhaustive  # 16-bit => sampled
            assert a.hardware == b.hardware

    def test_payloads_rebuild_records(self):
        result = build_library(
            GenerationPlan({("mul", 4): 6}, seed=0,
                           sample_size=1 << 8)
        )
        for record in result.library:
            clone = ComponentRecord.from_dict(record.to_dict())
            assert clone.errors == record.errors


class TestValidation:
    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            build_library(PLAN, chunk_size=0)

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="worker count"):
            build_library(PLAN, workers="many")
