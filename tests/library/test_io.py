import json

import pytest

from repro.errors import LibraryError
from repro.library.generation import GenerationPlan, generate_library
from repro.library.io import load_library, save_library


@pytest.fixture(scope="module")
def library():
    plan = GenerationPlan(
        {("add", 8): 8, ("sub", 10): 6, ("mul", 8): 8},
        seed=0,
        sample_size=1 << 10,
    )
    return generate_library(plan)


class TestRoundTrip:
    def test_summary_preserved(self, library, tmp_path):
        path = tmp_path / "lib.json"
        save_library(library, path)
        loaded = load_library(path)
        assert loaded.summary() == library.summary()

    def test_characterisation_preserved(self, library, tmp_path):
        path = tmp_path / "lib.json"
        save_library(library, path)
        loaded = load_library(path)
        for rec in library:
            other = loaded.get(rec.signature, rec.name)
            assert other.errors == rec.errors
            assert other.hardware.area == rec.hardware.area

    def test_creates_parent_dirs(self, library, tmp_path):
        path = tmp_path / "deep" / "nested" / "lib.json"
        save_library(library, path)
        assert path.exists()

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99,
                                    "components": []}))
        with pytest.raises(LibraryError):
            load_library(path)

    def test_file_is_plain_json(self, library, tmp_path):
        path = tmp_path / "lib.json"
        save_library(library, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["components"]) == len(library)
