import numpy as np
import pytest

from repro.circuits.adders import QuAdAdder, TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier
from repro.circuits.multipliers import RecursiveApproxMultiplier
from repro.errors import LibraryError
from repro.library.component import (
    FAMILY_REGISTRY,
    ComponentRecord,
    HardwareCost,
    record_from_circuit,
)


class TestRecordFromCircuit:
    def test_exact_adder(self):
        rec = record_from_circuit(ExactAdder(8))
        assert rec.signature == ("add", 8)
        assert rec.is_exact()
        assert rec.errors.med == 0.0
        assert rec.hardware.area > 0
        assert rec.hardware.gate_count > 0

    def test_approximate_has_error(self):
        rec = record_from_circuit(TruncatedAdder(8, 4))
        assert not rec.is_exact()
        assert rec.errors.med > 0

    def test_energy_property(self):
        hw = HardwareCost(area=10, delay=2, power=3, gate_count=4)
        assert hw.energy == 6

    def test_lut_cached(self):
        rec = record_from_circuit(TruncatedAdder(8, 2))
        assert rec.lut() is rec.lut()

    def test_lut_width_limit(self):
        rec = record_from_circuit(ExactMultiplier(16), sample_size=256)
        with pytest.raises(LibraryError):
            rec.lut()

    def test_netlist_fresh_instances(self):
        rec = record_from_circuit(ExactAdder(8))
        assert rec.build_netlist() is not rec.build_netlist()


class TestSerialisation:
    @pytest.mark.parametrize(
        "circuit",
        [
            ExactAdder(8),
            TruncatedAdder(8, 3, "half"),
            QuAdAdder(9, [4, 5], [0, 3]),
            RecursiveApproxMultiplier(8, [1, 2, 3]),
        ],
        ids=lambda c: c.name,
    )
    def test_roundtrip(self, circuit):
        rec = record_from_circuit(circuit, sample_size=1 << 10)
        data = rec.to_dict()
        rec2 = ComponentRecord.from_dict(data)
        assert rec2.name == rec.name
        assert rec2.signature == rec.signature
        assert rec2.errors == rec.errors
        assert rec2.hardware.area == rec.hardware.area
        a = np.arange(1 << circuit.width)
        assert np.array_equal(
            rec2.circuit.evaluate(a, a[::-1].copy()),
            rec.circuit.evaluate(a, a[::-1].copy()),
        )

    def test_exhaustive_flag_roundtrips(self):
        narrow = record_from_circuit(TruncatedAdder(8, 2))
        assert narrow.errors.exhaustive
        clone = ComponentRecord.from_dict(narrow.to_dict())
        assert clone.errors.exhaustive

        wide = record_from_circuit(ExactMultiplier(16),
                                   sample_size=256)
        assert not wide.errors.exhaustive
        clone = ComponentRecord.from_dict(wide.to_dict())
        assert not clone.errors.exhaustive

    @pytest.mark.parametrize("width,expected", [(8, True), (16, False)])
    def test_legacy_dict_without_flag_infers_from_width(
        self, width, expected
    ):
        """Pre-flag library blobs deserialise with the historic mode."""
        klass = ExactAdder if width == 8 else ExactMultiplier
        rec = record_from_circuit(klass(width), sample_size=256)
        data = rec.to_dict()
        del data["errors"]["exhaustive"]  # as serialised by old code
        clone = ComponentRecord.from_dict(data)
        assert clone.errors.exhaustive is expected

    def test_unknown_family_rejected(self):
        with pytest.raises(LibraryError):
            ComponentRecord.from_dict(
                {"family": "Bogus", "width": 8, "params": {},
                 "errors": {}, "hardware": {}}
            )

    def test_registry_covers_all_families(self):
        assert "ExactAdder" in FAMILY_REGISTRY
        assert "RecursiveApproxMultiplier" in FAMILY_REGISTRY
        assert len(FAMILY_REGISTRY) >= 15
