"""Golden regression: exact QoR (SSIM) and hardware costs, pinned.

The engine guarantees bit-identical simulation and deterministic
synthesis; this suite freezes actual numbers for the three seed
accelerators under fixed seeds so *any* numeric drift — a changed SSIM
summation, a reordered synthesis pass, a silent library-generation
change — fails loudly instead of shifting every published figure.

The fixture is checked in at ``tests/golden/golden_qor.json``.  After an
*intentional* semantic change, regenerate it with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_qor.py

and review the numeric diff like any other code change.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    kernel_sweep,
)
from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.engine import EvaluationEngine
from repro.core.preprocessing import reduce_library
from repro.imaging.datasets import benchmark_images
from repro.library.generation import GenerationPlan, generate_library

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_qor.json"

#: Relative tolerance of the drift check.  Effectively exact — real
#: changes move these values by orders of magnitude more — while robust
#: to last-ulp libm differences across platforms.
RTOL = 1e-9

#: Everything below is part of the golden contract; changing any of it
#: requires regenerating the fixture.
LIBRARY_PLAN = GenerationPlan(
    {
        ("add", 8): 12,
        ("add", 9): 10,
        ("add", 16): 10,
        ("sub", 10): 10,
        ("sub", 16): 10,
        ("mul", 8): 12,
    },
    seed=20260728,
    sample_size=1 << 12,
)
IMAGE_SHAPE = (48, 64)
N_IMAGES = 2
PROFILE_SEED = 11
CONFIG_SEED = 2027
N_RANDOM_CONFIGS = 4


def _cases():
    return (
        ("sobel_ed", SobelEdgeDetector(), None),
        ("fixed_gf", FixedGaussianFilter(), None),
        (
            "generic_gf",
            GenericGaussianFilter(),
            [
                GenericGaussianFilter.kernel_extra(w)
                for w in kernel_sweep(3)
            ],
        ),
    )


@pytest.fixture(scope="module")
def computed():
    """Evaluate the pinned configurations of every seed accelerator."""
    library = generate_library(LIBRARY_PLAN)
    images = benchmark_images(N_IMAGES, shape=IMAGE_SHAPE)
    out = {}
    for label, accelerator, scenarios in _cases():
        profiles = profile_accelerator(
            accelerator, images, scenarios=scenarios, rng=PROFILE_SEED
        )
        space = reduce_library(accelerator, library, profiles)
        engine = EvaluationEngine(accelerator, images, scenarios)
        configs = [space.exact_configuration()]
        configs += space.random_configurations(
            N_RANDOM_CONFIGS, rng=CONFIG_SEED
        )
        rows = []
        for config in configs:
            result = engine.evaluate(space, config)
            rows.append(
                {
                    "config": list(config),
                    "qor": result.qor,
                    "area": result.area,
                    "delay": result.delay,
                    "power": result.power,
                }
            )
        out[label] = rows
    return out


def test_golden_fixture_is_current(computed):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(computed, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden fixture missing; run with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden) == sorted(computed)
    for label, want_rows in golden.items():
        got_rows = computed[label]
        assert len(got_rows) == len(want_rows), label
        for got, want in zip(got_rows, want_rows):
            assert got["config"] == want["config"], label
            for key in ("qor", "area", "delay", "power"):
                assert np.isclose(
                    got[key], want[key], rtol=RTOL, atol=0.0
                ), (
                    f"{label}: {key} drifted from {want[key]!r} "
                    f"to {got[key]!r} for config {want['config']}"
                )


def test_exact_configuration_is_lossless(computed):
    """The first pinned config is exact: QoR must be exactly 1.0."""
    for label, rows in computed.items():
        assert rows[0]["qor"] == 1.0, label


def test_golden_values_are_spread(computed):
    """Sanity on the fixture itself: approximations actually vary."""
    for label, rows in computed.items():
        qors = [row["qor"] for row in rows]
        areas = [row["area"] for row in rows]
        assert len(set(areas)) > 1, label
        assert min(qors) < 1.0, label
