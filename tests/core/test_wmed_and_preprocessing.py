import numpy as np
import pytest

from repro.core.preprocessing import pareto_filter_indices, reduce_library
from repro.core.wmed import wmed, wmed_table
from repro.errors import LibraryError
from repro.library.component import record_from_circuit
from repro.library.library import ComponentLibrary
from repro.circuits.adders import TruncatedAdder
from repro.circuits.base import ExactAdder


class TestWMED:
    def test_exact_circuit_zero(self, sobel_profiles, tiny_library):
        exact = tiny_library.exact_component(("add", 8))
        assert wmed(exact, sobel_profiles["add1"]) == 0.0

    def test_positive_for_approximate(self, sobel_profiles):
        rec = record_from_circuit(TruncatedAdder(8, 4))
        assert wmed(rec, sobel_profiles["add1"]) > 0.0

    def test_weighted_by_distribution(self, sobel_profiles):
        """WMED under the application PMF differs from uniform MED: the
        Sobel operand distribution is not uniform."""
        rec = record_from_circuit(TruncatedAdder(8, 4, "copy"))
        application = wmed(rec, sobel_profiles["add1"])
        uniform = rec.errors.med
        assert application != pytest.approx(uniform, rel=0.01)

    def test_signature_mismatch(self, sobel_profiles):
        rec = record_from_circuit(TruncatedAdder(9, 2))
        with pytest.raises(ValueError):
            wmed(rec, sobel_profiles["add1"])

    def test_table_shape(self, sobel_profiles):
        recs = [
            record_from_circuit(TruncatedAdder(8, t)) for t in (1, 2, 3)
        ]
        table = wmed_table(recs, sobel_profiles["add1"])
        assert table.shape == (3,)
        assert np.all(np.diff(table) > 0)  # deeper truncation, more error

    def test_sample_based_path(self, small_images):
        """Wide ops (no dense PMF) estimate WMED from operand samples."""
        from repro.accelerators import (
            GenericGaussianFilter,
            profile_accelerator,
        )

        acc = GenericGaussianFilter()
        profiles = profile_accelerator(acc, small_images, rng=0)
        rec = record_from_circuit(
            TruncatedAdder(16, 6), sample_size=1 << 10
        )
        value = wmed(rec, profiles["sum1"])
        assert value > 0.0


class TestParetoFilter:
    def test_filters_dominated(self):
        scores = np.array([0.0, 1.0, 2.0, 1.5])
        costs = np.array([10.0, 5.0, 1.0, 8.0])
        keep = pareto_filter_indices(scores, costs)
        assert sorted(keep.tolist()) == [0, 1, 2]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pareto_filter_indices(np.zeros(3), np.zeros(4))


class TestReduceLibrary:
    def test_space_structure(self, sobel, sobel_space):
        assert sobel_space.n_slots == 5
        assert all(size >= 1 for size in sobel_space.slot_sizes())

    def test_candidates_on_front(self, sobel_space):
        """Within each slot, only the force-kept exact circuit may be
        dominated in (wmed, area).  (An approximate circuit whose errors
        never occur under the application PMF can have zero WMED at a
        lower area than the exact implementation.)"""
        for wmeds, group in zip(sobel_space.wmeds, sobel_space.choices):
            areas = np.array([r.hardware.area for r in group])
            for i in range(len(group)):
                better_score = wmeds <= wmeds[i]
                better_area = areas <= areas[i]
                strictly = (wmeds < wmeds[i]) | (areas < areas[i])
                dominated = better_score & better_area & strictly
                if dominated.any():
                    assert group[i].is_exact()

    def test_exact_reachable(self, sobel_space):
        config = sobel_space.exact_configuration()
        for k, idx in enumerate(config):
            assert sobel_space.choices[k][idx].is_exact()

    def test_per_op_cap(self, sobel, tiny_library, sobel_profiles):
        space = reduce_library(
            sobel, tiny_library, sobel_profiles, per_op_cap=3
        )
        assert all(s <= 4 for s in space.slot_sizes())  # cap + exact

    def test_reduction_shrinks_space(self, sobel, tiny_library,
                                     sobel_space):
        full = 1.0
        for slot in sobel.op_slots():
            full *= tiny_library.size(slot.signature)
        assert sobel_space.size() < full

    def test_missing_profile_rejected(self, sobel, tiny_library,
                                      sobel_profiles):
        incomplete = dict(sobel_profiles)
        del incomplete["sub"]
        with pytest.raises(LibraryError):
            reduce_library(sobel, tiny_library, incomplete)
