"""Multiprocessing chunk path and worker-count validation.

``evaluate_many`` with ``workers >= 2`` fans configuration chunks out to
a process pool; these tests pin that path to the serial reference
result-for-result — including on a scenario-bearing registry workload —
and lock the ``REPRO_WORKERS`` / ``workers`` argument validation.
"""

import numpy as np
import pytest

from repro.accelerators.profiler import profile_accelerator
from repro.core.engine import (
    EvaluationEngine,
    default_workers,
    validate_workers,
)
from repro.core.preprocessing import reduce_library
from repro.workloads import build_bundle


class TestParallelEquivalence:
    def test_workers2_matches_serial_result_for_result(
        self, sobel, small_images, sobel_space
    ):
        serial_engine = EvaluationEngine(sobel, small_images)
        parallel_engine = EvaluationEngine(sobel, small_images)
        configs = sobel_space.random_configurations(9, rng=42)
        configs += configs[:3]  # duplicates cross chunk boundaries
        serial = serial_engine.evaluate_many(
            sobel_space, configs, workers=1
        )
        parallel = parallel_engine.evaluate_many(
            sobel_space, configs, workers=2
        )
        assert serial == parallel  # EvaluationResult is frozen/eq

    def test_workers2_matches_serial_on_scenario_workload(
        self, tiny_library
    ):
        """The chunk path must also cover stacked scenario batches."""
        bundle = build_bundle(
            "generic_gf", n_images=2, image_shape=(24, 32)
        )
        accelerator = bundle.accelerator
        scenarios = bundle.scenarios[:2]
        profiles = profile_accelerator(
            accelerator, bundle.images, scenarios=scenarios, rng=0
        )
        space = reduce_library(accelerator, tiny_library, profiles)
        engine = EvaluationEngine(
            accelerator, bundle.images, scenarios
        )
        configs = space.random_configurations(5, rng=3)
        serial = engine.evaluate_many(space, configs, workers=1)
        parallel = engine.evaluate_many(space, configs, workers=2)
        assert serial == parallel
        for result in serial:
            assert 0.0 <= result.qor <= 1.0
            assert result.area > 0

    def test_constructor_workers_used_by_default(
        self, sobel, small_images, sobel_space
    ):
        engine = EvaluationEngine(sobel, small_images, workers=2)
        assert engine.workers == 2
        configs = sobel_space.random_configurations(3, rng=5)
        reference = EvaluationEngine(sobel, small_images)
        assert engine.evaluate_many(sobel_space, configs) == \
            reference.evaluate_many(sobel_space, configs)


class TestWorkersValidation:
    def test_normalisation(self):
        assert validate_workers(None) is None
        assert validate_workers(0) is None
        assert validate_workers(1) is None
        assert validate_workers(2) == 2
        assert validate_workers("8") == 8
        assert validate_workers(" 3 ") == 3

    @pytest.mark.parametrize(
        "bad", [-1, -7, "-3", "2.5", "eight", "", 3.0, True]
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError, match="workers"):
            validate_workers(bad)

    def test_error_names_the_source(self):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            validate_workers("nope", source="REPRO_WORKERS")
        with pytest.raises(ValueError, match="--workers"):
            validate_workers(-2, source="--workers")

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_env_float_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1.5")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_constructor_rejects_bad_workers(self, sobel, small_images):
        with pytest.raises(ValueError, match="workers"):
            EvaluationEngine(sobel, small_images, workers=-2)

    def test_evaluate_many_rejects_bad_workers(
        self, sobel, small_images, sobel_space
    ):
        engine = EvaluationEngine(sobel, small_images)
        configs = sobel_space.random_configurations(2, rng=1)
        with pytest.raises(ValueError, match="workers"):
            engine.evaluate_many(sobel_space, configs, workers=-1)
