import numpy as np
import pytest

from repro.core.evaluation import AcceleratorEvaluator
from repro.core.modeling import (
    EstimationModel,
    build_training_set,
    fit_engines,
    naive_model,
    select_best_model,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def train_test(sobel_space, sobel_evaluator):
    train = build_training_set(sobel_space, sobel_evaluator, 60, rng=0)
    test = build_training_set(sobel_space, sobel_evaluator, 40, rng=1)
    return train, test


class TestEvaluator:
    def test_exact_configuration_perfect_qor(self, sobel_space,
                                             sobel_evaluator):
        config = sobel_space.exact_configuration()
        result = sobel_evaluator.evaluate(sobel_space, config)
        assert result.qor == pytest.approx(1.0)
        assert result.area > 0
        assert result.energy == pytest.approx(
            result.power * result.delay
        )

    def test_approximation_degrades_qor(self, sobel_space,
                                        sobel_evaluator):
        # choose the highest-wmed candidate everywhere
        config = tuple(
            int(np.argmax(w)) for w in sobel_space.wmeds
        )
        result = sobel_evaluator.evaluate(sobel_space, config)
        assert result.qor < 1.0

    def test_empty_images_rejected(self, sobel):
        with pytest.raises(ValueError):
            AcceleratorEvaluator(sobel, [])

    def test_run_count(self, sobel, small_images):
        ev = AcceleratorEvaluator(sobel, small_images)
        assert ev.run_count == len(small_images)

    def test_scenarios_multiply_runs(self, small_images):
        from repro.accelerators import GenericGaussianFilter, gaussian_kernel_weights

        acc = GenericGaussianFilter()
        scen = [acc.kernel_extra(gaussian_kernel_weights(s))
                for s in (0.4, 0.6)]
        ev = AcceleratorEvaluator(acc, small_images, scen)
        assert ev.run_count == 2 * len(small_images)


class TestTrainingSet:
    def test_build(self, train_test):
        train, _ = train_test
        assert len(train) == 60
        assert train.qor.shape == (60,)
        assert np.all(train.area > 0)
        assert np.all(train.qor <= 1.0 + 1e-9)

    def test_energy_property(self, train_test):
        train, _ = train_test
        assert np.allclose(train.energy, train.power * train.delay)

    def test_target_lookup(self, train_test):
        train, _ = train_test
        assert train.target("qor") is train.qor
        assert train.target("area") is train.area
        with pytest.raises(ModelError):
            train.target("speed")

    def test_invalid_count(self, sobel_space, sobel_evaluator):
        with pytest.raises(ModelError):
            build_training_set(sobel_space, sobel_evaluator, 0)


class TestFitEngines:
    def test_reports_complete(self, sobel_space, train_test):
        train, test = train_test
        reports = fit_engines(
            sobel_space, train, test, target="qor",
            engines=["K-Neighbors", "Bayesian Ridge"],
        )
        names = [r.name for r in reports]
        assert names == ["K-Neighbors", "Bayesian Ridge", "Naive model"]
        for r in reports:
            assert 0.0 <= r.fidelity_train <= 1.0
            assert 0.0 <= r.fidelity_test <= 1.0
            assert r.fit_seconds >= 0.0

    def test_select_best_uses_test_fidelity(self, sobel_space,
                                            train_test):
        train, test = train_test
        reports = fit_engines(
            sobel_space, train, test, target="area",
            engines=["K-Neighbors"],
        )
        best = select_best_model(reports)
        assert best.fidelity_test == max(
            r.fidelity_test for r in reports
        )

    def test_select_empty_rejected(self):
        with pytest.raises(ModelError):
            select_best_model([])

    def test_naive_qor_model_is_negative_wmed_sum(self, sobel_space,
                                                  train_test):
        train, _ = train_test
        model = naive_model(sobel_space, "qor")
        model.fit(train.configs, train.qor)
        X = sobel_space.qor_features(train.configs)
        assert np.allclose(model.predict(train.configs), -X.sum(axis=1))

    def test_naive_area_model_is_area_sum(self, sobel_space, train_test):
        train, _ = train_test
        model = naive_model(sobel_space, "area")
        model.fit(train.configs, train.area)
        X = sobel_space.hw_features(train.configs)
        cols = sobel_space.area_columns()
        assert np.allclose(
            model.predict(train.configs), X[:, cols].sum(axis=1)
        )

    def test_estimation_model_predict_one(self, sobel_space, train_test):
        train, test = train_test
        model = naive_model(sobel_space, "area")
        model.fit(train.configs, train.area)
        single = model.predict_one(train.configs[0])
        assert single == pytest.approx(
            model.predict([train.configs[0]])[0]
        )

    def test_invalid_target(self, sobel_space):
        from repro.ml.neighbors import KNeighborsRegressor

        with pytest.raises(ModelError):
            EstimationModel(
                "x", KNeighborsRegressor(), sobel_space, "speed"
            )
