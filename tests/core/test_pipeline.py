import numpy as np
import pytest

from repro.core.pipeline import AutoAx, AutoAxConfig
from repro.core.pareto import dominates


@pytest.fixture(scope="module")
def sobel_result(sobel, tiny_library, small_images):
    config = AutoAxConfig(
        n_train=40,
        n_test=20,
        engines=("K-Neighbors",),
        max_evaluations=800,
        seed=0,
    )
    return AutoAx(sobel, tiny_library, small_images, config=config).run()


class TestAutoAxConfig:
    def test_defaults_valid(self):
        AutoAxConfig()

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            AutoAxConfig(n_train=1)

    def test_empty_engines(self):
        with pytest.raises(ValueError):
            AutoAxConfig(engines=())


class TestPipelineRun:
    def test_space_sizes_decrease(self, sobel_result):
        assert (
            sobel_result.initial_space_size
            > sobel_result.reduced_space_size
            > len(sobel_result.pseudo_pareto)
            >= len(sobel_result.final_configs)
        )

    def test_models_selected_by_fidelity(self, sobel_result):
        best = max(
            sobel_result.qor_reports, key=lambda r: r.fidelity_test
        )
        assert sobel_result.qor_model.name == best.name

    def test_final_front_nondominated(self, sobel_result):
        pts = sobel_result.final_points
        minimised = np.stack([-pts[:, 0], pts[:, 1]], axis=1)
        for i in range(len(pts)):
            for j in range(len(pts)):
                assert not dominates(minimised[i], minimised[j])

    def test_final_points_real_ranges(self, sobel_result):
        pts = sobel_result.final_points
        assert np.all(pts[:, 0] <= 1.0 + 1e-9)  # SSIM
        assert np.all(pts[:, 1] > 0)  # area

    def test_3d_front_superset_of_2d(self, sobel_result):
        """Adding an objective can only grow the non-dominated set."""
        assert len(sobel_result.final_configs_3d) >= len(
            sobel_result.final_configs
        )

    def test_timings_recorded(self, sobel_result):
        assert set(sobel_result.timings) == {
            "preprocessing",
            "training_set",
            "model_construction",
            "pseudo_pareto",
            "final_analysis",
        }
        assert all(t >= 0 for t in sobel_result.timings.values())

    def test_summary_row(self, sobel_result):
        row = sobel_result.summary_row()
        assert row["final_pareto"] == len(sobel_result.final_configs)

    def test_front_spans_tradeoff(self, sobel_result):
        """The front should cover meaningfully different QoR levels."""
        pts = sobel_result.final_points
        assert pts[:, 0].max() - pts[:, 0].min() > 0.05
        assert pts[:, 1].max() > pts[:, 1].min()

    def test_configs_resolvable(self, sobel_result):
        for config in sobel_result.final_configs:
            records = sobel_result.space.records(config)
            assert len(records) == sobel_result.space.n_slots
