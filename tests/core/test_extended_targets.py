"""Energy / delay / power estimation targets (extension beyond the paper's
area-focused evaluation; Fig. 5 also plots energy)."""

import numpy as np
import pytest

from repro.core.modeling import build_training_set, fit_engines
from repro.errors import ModelError


@pytest.fixture(scope="module")
def sets(sobel_space, sobel_evaluator):
    train = build_training_set(sobel_space, sobel_evaluator, 50, rng=0)
    test = build_training_set(sobel_space, sobel_evaluator, 30, rng=1)
    return train, test


@pytest.mark.parametrize("target", ["delay", "power", "energy"])
def test_hardware_targets_learnable(sobel_space, sets, target):
    train, test = sets
    reports = fit_engines(
        sobel_space, train, test, target=target,
        engines=["K-Neighbors"],
    )
    # naive model only exists for qor/area; here we get just the engine
    assert [r.name for r in reports] == ["K-Neighbors"]
    assert reports[0].fidelity_test > 0.55


def test_energy_is_power_times_delay(sets):
    train, _ = sets
    assert np.allclose(
        train.target("energy"),
        train.target("power") * train.target("delay"),
    )


def test_unknown_target_rejected(sobel_space, sets):
    train, test = sets
    with pytest.raises(ModelError):
        fit_engines(sobel_space, train, test, target="voltage",
                    engines=["K-Neighbors"])
