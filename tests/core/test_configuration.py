import numpy as np
import pytest

from repro.core.configuration import HW_FEATURES
from repro.errors import DSEError


class TestSpaceBasics:
    def test_size_is_product(self, sobel_space):
        expected = 1.0
        for s in sobel_space.slot_sizes():
            expected *= s
        assert sobel_space.size() == expected

    def test_random_configuration_valid(self, sobel_space, rng):
        for _ in range(20):
            config = sobel_space.random_configuration(rng)
            sobel_space.validate_configuration(config)

    def test_random_configurations_unique(self, sobel_space):
        configs = sobel_space.random_configurations(30, rng=0)
        assert len(set(configs)) == 30

    def test_validate_rejects_bad_length(self, sobel_space):
        with pytest.raises(DSEError):
            sobel_space.validate_configuration((0, 0))

    def test_validate_rejects_out_of_range(self, sobel_space):
        config = list(sobel_space.exact_configuration())
        config[0] = 10**6
        with pytest.raises(DSEError):
            sobel_space.validate_configuration(tuple(config))


class TestNeighbor:
    def test_differs_in_exactly_one_gene(self, sobel_space, rng):
        config = sobel_space.random_configuration(rng)
        for _ in range(20):
            other = sobel_space.neighbor(config, rng)
            diff = sum(a != b for a, b in zip(config, other))
            assert diff == 1

    def test_new_gene_in_range(self, sobel_space, rng):
        config = sobel_space.random_configuration(rng)
        neighbor = sobel_space.neighbor(config, rng)
        sobel_space.validate_configuration(neighbor)


class TestFeatures:
    def test_qor_features_shape(self, sobel_space):
        configs = sobel_space.random_configurations(7, rng=0)
        X = sobel_space.qor_features(configs)
        assert X.shape == (7, sobel_space.n_slots)

    def test_qor_features_are_wmeds(self, sobel_space):
        config = sobel_space.exact_configuration()
        X = sobel_space.qor_features([config])
        assert np.allclose(X, 0.0)  # exact circuits have zero WMED

    def test_hw_features_shape(self, sobel_space):
        configs = sobel_space.random_configurations(4, rng=1)
        X = sobel_space.hw_features(configs)
        assert X.shape == (4, 3 * sobel_space.n_slots)

    def test_hw_feature_subset(self, sobel_space):
        configs = sobel_space.random_configurations(4, rng=1)
        X = sobel_space.hw_features(configs, features=("area",))
        assert X.shape == (4, sobel_space.n_slots)

    def test_hw_feature_values_match_records(self, sobel_space):
        config = sobel_space.random_configuration(rng=np.random.default_rng(2))
        X = sobel_space.hw_features([config])
        for k, idx in enumerate(config):
            record = sobel_space.choices[k][idx]
            base = k * len(HW_FEATURES)
            assert X[0, base] == record.hardware.area
            assert X[0, base + 1] == record.hardware.power
            assert X[0, base + 2] == record.hardware.delay

    def test_area_columns(self, sobel_space):
        cols = sobel_space.area_columns()
        assert cols == [0, 3, 6, 9, 12]

    def test_unknown_feature_rejected(self, sobel_space):
        with pytest.raises(DSEError):
            sobel_space.hw_features(
                [sobel_space.exact_configuration()], features=("volume",)
            )


class TestRealisation:
    def test_records_mapping(self, sobel_space):
        config = sobel_space.exact_configuration()
        records = sobel_space.records(config)
        assert set(records) == {s.name for s in sobel_space.slots}
        assert all(r.is_exact() for r in records.values())

    def test_assignment_callables_match_circuits(self, sobel_space, rng):
        config = sobel_space.random_configuration(rng)
        impls = sobel_space.assignment_callables(config)
        records = sobel_space.records(config)
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        for name, impl in impls.items():
            rec = records[name]
            assert np.array_equal(
                impl(a, b), rec.circuit.evaluate(a, b)
            )

    def test_enumerate_all_small_space(self, sobel, tiny_library,
                                       sobel_profiles):
        from repro.core.preprocessing import reduce_library

        space = reduce_library(
            sobel, tiny_library, sobel_profiles, per_op_cap=2
        )
        grid = space.enumerate_all()
        assert grid.shape[0] == space.size()
        assert grid.shape[1] == space.n_slots
        # rows are unique configurations
        assert len(np.unique(grid, axis=0)) == grid.shape[0]


class TestNeighborsBatch:
    def test_each_differs_in_exactly_one_gene(self, sobel_space, rng):
        config = sobel_space.random_configuration(rng)
        batch = sobel_space.neighbors(config, 50, rng)
        assert len(batch) == 50
        for candidate in batch:
            sobel_space.validate_configuration(candidate)
            diffs = sum(
                1 for a, b in zip(candidate, config) if a != b
            )
            assert diffs == 1

    def test_count_zero_and_negative(self, sobel_space, rng):
        config = sobel_space.random_configuration(rng)
        assert sobel_space.neighbors(config, 0, rng) == []
        with pytest.raises(DSEError):
            sobel_space.neighbors(config, -1, rng)

    def test_deterministic_for_seed(self, sobel_space):
        config = sobel_space.random_configuration(
            np.random.default_rng(0)
        )
        a = sobel_space.neighbors(config, 20, np.random.default_rng(3))
        b = sobel_space.neighbors(config, 20, np.random.default_rng(3))
        assert a == b

    def test_covers_all_mutable_slots(self, sobel_space):
        """Over many draws every multi-choice slot gets mutated."""
        config = sobel_space.random_configuration(
            np.random.default_rng(1)
        )
        batch = sobel_space.neighbors(
            config, 500, np.random.default_rng(2)
        )
        mutated = set()
        for candidate in batch:
            for k, (a, b) in enumerate(zip(candidate, config)):
                if a != b:
                    mutated.add(k)
        expected = {
            k for k in range(sobel_space.n_slots)
            if len(sobel_space.choices[k]) > 1
        }
        assert mutated == expected
