"""EvaluationEngine: batched QoR, synthesis memo, dedupe, parallelism."""

import numpy as np
import pytest

from repro.core.engine import EvaluationEngine, default_workers
from repro.core.evaluation import AcceleratorEvaluator
from repro.imaging.metrics import ssim


class TestBatchedQor:
    def test_matches_per_run_reference(self, sobel, small_images,
                                       sobel_space, sobel_evaluator):
        configs = sobel_space.random_configurations(4, rng=11)
        for config in configs:
            impls = sobel_space.assignment_callables(config)
            reference = 0.0
            for image in small_images:
                golden = sobel.golden(image)
                out = sobel.compute(image, impls)
                reference += ssim(
                    golden.astype(float), out.astype(float)
                )
            reference /= len(small_images)
            assert sobel_evaluator.qor(impls) == pytest.approx(
                reference, abs=1e-12
            )

    def test_qor_per_run_shape(self, sobel_space, sobel_evaluator):
        impls = sobel_space.assignment_callables(
            sobel_space.exact_configuration()
        )
        per_run = sobel_evaluator.qor_per_run(impls)
        assert per_run.shape == (sobel_evaluator.run_count,)
        assert np.allclose(per_run, 1.0)

    def test_scenarios_reference(self, small_images):
        from repro.accelerators import (
            GenericGaussianFilter,
            gaussian_kernel_weights,
        )

        acc = GenericGaussianFilter()
        scenarios = [
            acc.kernel_extra(gaussian_kernel_weights(s))
            for s in (0.4, 0.7)
        ]
        engine = EvaluationEngine(acc, small_images, scenarios)
        assert engine.run_count == 2 * len(small_images)
        # exact outputs across all scenario runs reproduce the goldens
        assert engine.qor({}) == pytest.approx(1.0)

    def test_heterogeneous_image_shapes(self, sobel, sobel_space):
        rng = np.random.default_rng(0)
        images = [
            rng.integers(0, 256, size=(24, 32)),
            rng.integers(0, 256, size=(32, 24)),
        ]
        engine = EvaluationEngine(sobel, images)
        assert engine.run_count == 2
        config = sobel_space.random_configurations(1, rng=3)[0]
        impls = sobel_space.assignment_callables(config)
        reference = np.mean(
            [
                ssim(
                    sobel.golden(img).astype(float),
                    sobel.compute(img, impls).astype(float),
                )
                for img in images
            ]
        )
        assert engine.qor(impls) == pytest.approx(reference, abs=1e-12)


class TestSynthesisMemo:
    def test_repeat_evaluations_hit_memo(self, sobel, small_images,
                                         sobel_space):
        engine = EvaluationEngine(sobel, small_images)
        config = sobel_space.random_configurations(1, rng=5)[0]
        first = engine.evaluate(sobel_space, config)
        assert engine.synth_misses == 1 and engine.synth_hits == 0
        second = engine.evaluate(sobel_space, config)
        assert engine.synth_misses == 1 and engine.synth_hits == 1
        assert first == second

    def test_memo_does_not_leak_across_configs(self, sobel,
                                               small_images,
                                               sobel_space):
        engine = EvaluationEngine(sobel, small_images)
        configs = sobel_space.random_configurations(3, rng=6)
        areas = {
            engine.evaluate(sobel_space, c).area for c in configs
        }
        assert engine.synth_misses == 3
        assert len(areas) > 1  # distinct configs synthesise differently


class TestEvaluateMany:
    def test_deduplicates_and_preserves_order(self, sobel,
                                              small_images,
                                              sobel_space):
        engine = EvaluationEngine(sobel, small_images)
        a, b = sobel_space.random_configurations(2, rng=7)
        results = engine.evaluate_many(sobel_space, [a, b, a, b, a])
        assert len(results) == 5
        assert results[0] == results[2] == results[4]
        assert results[1] == results[3]
        # each unique configuration was analysed exactly once
        assert engine.synth_misses == 2 and engine.synth_hits == 0

    def test_parallel_matches_serial(self, sobel, small_images,
                                     sobel_space):
        engine = EvaluationEngine(sobel, small_images)
        configs = sobel_space.random_configurations(4, rng=8)
        serial = engine.evaluate_many(sobel_space, configs, workers=1)
        parallel = engine.evaluate_many(
            sobel_space, configs, workers=2
        )
        assert serial == parallel

    def test_parallel_merges_worker_memo(self, sobel, small_images,
                                         sobel_space, monkeypatch):
        from repro.core.runtime import reset_runtime

        # Force a real fan-out: the shared runtime's cost model would
        # otherwise keep a 3-configuration batch serial.
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        reset_runtime()
        try:
            engine = EvaluationEngine(sobel, small_images)
            configs = sobel_space.random_configurations(3, rng=10)
            engine.evaluate_many(sobel_space, configs, workers=2)
            # Every unique configuration reached the parent memo: the
            # probe chunk ran in-process (one miss), the pool chunks'
            # synthesis reports were adopted on merge.
            assert len(engine._synth_memo) == 3
            assert engine.synth_misses == 1
            # ... so a follow-up in-process evaluation hits the memo.
            engine.evaluate(sobel_space, configs[0])
            assert engine.synth_hits == 1
            assert engine.synth_misses == 1
        finally:
            reset_runtime()

    def test_matches_single_evaluate(self, sobel_space,
                                     sobel_evaluator):
        configs = sobel_space.random_configurations(3, rng=9)
        batch = sobel_evaluator.evaluate_many(sobel_space, configs)
        singles = [
            sobel_evaluator.evaluate(sobel_space, c) for c in configs
        ]
        assert batch == singles


class TestCompatibility:
    def test_accelerator_evaluator_is_engine(self):
        assert issubclass(AcceleratorEvaluator, EvaluationEngine)

    def test_core_exports_engine(self):
        from repro.core import EvaluationEngine as exported

        assert exported is EvaluationEngine

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert default_workers() is None
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() is None

    def test_default_workers_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "eight")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()
