import numpy as np
import pytest

from repro.core.dse import (
    exhaustive_search,
    heuristic_pareto_construction,
    random_sampling,
    uniform_selection,
)
from repro.core.modeling import build_training_set, fit_engines, select_best_model
from repro.core.pareto import dominates, pareto_front_indices
from repro.errors import DSEError


@pytest.fixture(scope="module")
def models(sobel_space, sobel_evaluator):
    train = build_training_set(sobel_space, sobel_evaluator, 60, rng=0)
    test = build_training_set(sobel_space, sobel_evaluator, 30, rng=1)
    qor = select_best_model(
        fit_engines(sobel_space, train, test, target="qor",
                    engines=["K-Neighbors"])
    ).model
    hw = select_best_model(
        fit_engines(sobel_space, train, test, target="area",
                    engines=["K-Neighbors"])
    ).model
    return qor, hw


class TestHeuristicConstruction:
    def test_result_structure(self, sobel_space, models):
        qor, hw = models
        result = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=500, rng=0
        )
        assert result.evaluations <= 500
        assert len(result.configs) == result.points.shape[0]
        assert result.inserts >= len(result.configs)

    def test_archive_mutually_nondominated(self, sobel_space, models):
        qor, hw = models
        result = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=600, rng=1
        )
        minimised = np.stack(
            [-result.points[:, 0], result.points[:, 1]], axis=1
        )
        for i in range(len(minimised)):
            for j in range(len(minimised)):
                assert not dominates(minimised[i], minimised[j])

    def test_deterministic(self, sobel_space, models):
        """Same seed => identical DSEResult: configs, points, counters."""
        qor, hw = models
        a = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=300, rng=9
        )
        b = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=300, rng=9
        )
        assert a.configs == b.configs
        assert np.array_equal(a.points, b.points)
        assert (a.evaluations, a.inserts, a.restarts) == (
            b.evaluations, b.inserts, b.restarts
        )

    def test_deterministic_from_integer_seed_object(self, sobel_space,
                                                    models):
        """Passing the seed as an int must not share hidden RNG state."""
        qor, hw = models
        runs = [
            heuristic_pareto_construction(
                sobel_space, qor, hw, max_evaluations=250, rng=1234
            )
            for _ in range(2)
        ]
        assert runs[0].configs == runs[1].configs
        assert np.array_equal(runs[0].points, runs[1].points)

    def test_more_evals_no_fewer_points(self, sobel_space, models):
        qor, hw = models
        small = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=200, rng=2
        )
        large = heuristic_pareto_construction(
            sobel_space, qor, hw, max_evaluations=2000, rng=2
        )
        assert len(large) >= len(small) * 0.8

    def test_invalid_params(self, sobel_space, models):
        qor, hw = models
        with pytest.raises(DSEError):
            heuristic_pareto_construction(
                sobel_space, qor, hw, max_evaluations=0
            )
        with pytest.raises(DSEError):
            heuristic_pareto_construction(
                sobel_space, qor, hw, stagnation_limit=0
            )


class TestRandomSampling:
    def test_front_only(self, sobel_space, models):
        qor, hw = models
        result = random_sampling(
            sobel_space, qor, hw, max_evaluations=400, rng=0
        )
        assert result.evaluations == 400
        minimised = np.stack(
            [-result.points[:, 0], result.points[:, 1]], axis=1
        )
        assert len(pareto_front_indices(minimised)) == len(result)


class TestUniformSelection:
    def test_configs_valid_and_unique(self, sobel_space):
        configs = uniform_selection(sobel_space, 12)
        assert len(set(configs)) == len(configs)
        for config in configs:
            sobel_space.validate_configuration(config)

    def test_level_zero_is_most_accurate(self, sobel_space):
        configs = uniform_selection(sobel_space, 10)
        first = sobel_space.qor_features([configs[0]])
        assert np.allclose(first, 0.0)

    def test_invalid_count(self, sobel_space):
        with pytest.raises(DSEError):
            uniform_selection(sobel_space, 0)


class TestExhaustive:
    def test_matches_batch_front(self, sobel_space, models):
        qor, hw = models
        space = sobel_space
        if space.size() > 50_000:
            pytest.skip("space too large for exhaustive reference")
        result = exhaustive_search(space, qor, hw, batch_size=7000)
        assert result.evaluations == space.size()
        minimised = np.stack(
            [-result.points[:, 0], result.points[:, 1]], axis=1
        )
        assert len(pareto_front_indices(minimised)) == len(result)

    def test_heuristic_front_dominated_by_optimal(
        self, sobel_space, models
    ):
        """No heuristic archive point may dominate the exhaustive front
        (sanity of 'optimal')."""
        qor, hw = models
        space = sobel_space
        if space.size() > 50_000:
            pytest.skip("space too large for exhaustive reference")
        optimal = exhaustive_search(space, qor, hw)
        heur = heuristic_pareto_construction(
            space, qor, hw, max_evaluations=300, rng=0
        )
        opt_min = np.stack(
            [-optimal.points[:, 0], optimal.points[:, 1]], axis=1
        )
        for point in np.stack(
            [-heur.points[:, 0], heur.points[:, 1]], axis=1
        ):
            assert not any(
                dominates(point, opt_point) for opt_point in opt_min
            )
