"""End-to-end pipeline runs for the two Gaussian-filter case studies."""

import numpy as np
import pytest

from repro.accelerators import (
    FixedGaussianFilter,
    GenericGaussianFilter,
    gaussian_kernel_weights,
)
from repro.core.pipeline import AutoAx, AutoAxConfig


@pytest.fixture(scope="module")
def fast_config():
    # max_evaluations is an *exact* model-call budget since the DSE
    # accounting fix; the seed implementation silently overspent it by
    # one discarded batch tail per accepted move or restart (~30x at
    # this scale), so the nominal budget must rise for the same real
    # exploration.
    return AutoAxConfig(
        n_train=25, n_test=12, engines=("K-Neighbors",),
        max_evaluations=2_000, seed=0,
    )


class TestFixedGFPipeline:
    @pytest.fixture(scope="class")
    def result(self, tiny_library, small_images, fast_config):
        return AutoAx(
            FixedGaussianFilter(), tiny_library, small_images,
            config=fast_config,
        ).run()

    def test_eleven_slots(self, result):
        assert result.space.n_slots == 11

    def test_space_reduction(self, result):
        assert result.reduced_space_size < result.initial_space_size

    def test_front_quality_spread(self, result):
        pts = result.final_points
        assert pts[:, 0].max() > 0.9  # a near-accurate design exists
        assert len(result.final_configs) >= 3

    def test_wide_ops_profiled_by_samples(self, result):
        assert result.profiles["mcm12"].pmf is None
        assert result.profiles["mcm12"].sample_a.size > 0
        assert result.profiles["add_c1"].pmf is not None


class TestGenericGFPipeline:
    @pytest.fixture(scope="class")
    def result(self, tiny_library, small_images, fast_config):
        acc = GenericGaussianFilter()
        scenarios = [
            acc.kernel_extra(gaussian_kernel_weights(s))
            for s in (0.4, 0.7)
        ]
        return AutoAx(
            acc, tiny_library, small_images[:1], scenarios=scenarios,
            config=fast_config,
        ).run()

    def test_seventeen_slots(self, result):
        assert result.space.n_slots == 17

    def test_scenarios_average_into_qor(self, result):
        assert np.all(
            np.asarray([r.qor for r in result.real_evaluations]) <= 1.0
        )

    def test_huge_space_reduced(self, result):
        assert result.initial_space_size > 1e20
        assert result.reduced_space_size < result.initial_space_size

    def test_front_nonempty(self, result):
        assert len(result.final_configs) >= 3
        assert result.final_points[:, 0].max() > 0.8
