"""Shared parallel runtime: cost model, shm lifecycle, spawn identity.

The runtime's three load-bearing promises are pinned here:

* the **auto-serial cost model** never fans out work that cannot win
  (so a larger ``workers`` setting is at worst the serial path);
* every published **shared-memory segment** is tracked and unlinked —
  after normal use, worker crashes, ``KeyboardInterrupt`` and plain
  interpreter exit (asserted against ``/dev/shm`` directly);
* execution is **bit-identical for any worker count and any start
  method** — including the forced-``spawn`` path that non-fork
  platforms take.
"""

from __future__ import annotations

import glob
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core import runtime as rt
from repro.core.engine import EvaluationEngine
from repro.core.runtime import (
    MIN_SHARED_ARRAY_BYTES,
    ParallelRuntime,
    get_runtime,
    reset_runtime,
)
from repro.library.generation import GenerationPlan
from repro.library.io import library_payload
from repro.library.pipeline import build_library


@pytest.fixture()
def fresh_runtime():
    """Isolate each test's singleton (and its pool/segments)."""
    reset_runtime()
    yield get_runtime()
    reset_runtime()


def _shm_entries(pid: int):
    return glob.glob(f"/dev/shm/repro-{pid}-*")


# Module-level task functions (the runtime's fn(context, task) contract).

def _sum_task(context, n):
    (arr,) = context
    return int(arr[:n].sum())


def _flags_task(context, n):
    (arr,) = context
    return bool(arr.flags.writeable)


def _crash_task(context, n):
    # The runtime probes the first task in-process; only die when this
    # actually runs inside a pool worker.
    if rt._IN_WORKER:
        os._exit(13)
    return n


def _interrupt_task(context, n):
    if rt._IN_WORKER:
        raise KeyboardInterrupt
    return n


BIG = np.arange(100_000, dtype=np.int64)  # well above the shm threshold


class TestWorkersConventions:
    def test_engine_reexports_the_runtime_helpers(self):
        from repro.core import engine

        assert engine.validate_workers is rt.validate_workers
        assert engine.default_workers is rt.default_workers
        assert engine.WORKERS_ENV == rt.WORKERS_ENV

    def test_search_and_pipeline_share_the_convention(self):
        import repro.library.pipeline as pipeline_mod
        import repro.search.portfolio as portfolio_mod

        src_p = open(pipeline_mod.__file__).read()
        src_s = open(portfolio_mod.__file__).read()
        for src in (src_p, src_s):
            assert "def validate_workers" not in src
            assert 'get_context("fork")' not in src


class TestCostModel:
    def test_no_workers_stays_serial(self, fresh_runtime):
        out = fresh_runtime.map(_sum_task, [5, 10], context=(BIG,))
        assert out == [10, 45]
        assert fresh_runtime.last_decision.mode == "serial"
        assert fresh_runtime.last_decision.reason == "workers<=1"

    def test_single_task_stays_serial(self, fresh_runtime):
        out = fresh_runtime.map(
            _sum_task, [3], context=(BIG,), workers=4
        )
        assert out == [3]
        assert fresh_runtime.last_decision.reason == "single-task"

    def test_parallel_never_env(self, fresh_runtime, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "never")
        fresh_runtime.map(_sum_task, [2, 3, 4], context=(BIG,), workers=4)
        assert fresh_runtime.last_decision.reason == "REPRO_PARALLEL=never"

    def test_single_core_floor_is_exact(self, fresh_runtime, monkeypatch):
        """On one usable core, workers=4 runs the literal serial path."""
        monkeypatch.setattr(rt, "usable_cores", lambda: 1)
        fresh_runtime.map(_sum_task, [2, 3, 4], context=(BIG,), workers=4)
        decision = fresh_runtime.last_decision
        assert decision.mode == "serial"
        assert decision.reason == "single-core"
        assert decision.effective_workers == 1

    def test_tiny_batches_fall_below_threshold(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "usable_cores", lambda: 8)
        fresh_runtime.map(
            _sum_task, [1, 2, 3, 4], context=(BIG,), workers=4
        )
        decision = fresh_runtime.last_decision
        assert decision.mode == "serial"
        assert decision.reason == "below-threshold"

    def test_nested_calls_inside_workers_stay_serial(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "_IN_WORKER", True)
        fresh_runtime.map(_sum_task, [2, 3], context=(BIG,), workers=4)
        assert fresh_runtime.last_decision.reason == "nested-in-worker"

    def test_empty_batch(self, fresh_runtime):
        assert fresh_runtime.map(_sum_task, [], context=(BIG,)) == []

    def test_bad_parallel_env_rejected(self, fresh_runtime, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "sometimes")
        with pytest.raises(ValueError, match="REPRO_PARALLEL"):
            fresh_runtime.map(
                _sum_task, [1, 2], context=(BIG,), workers=2
            )

    def test_bad_threshold_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "soon")
        with pytest.raises(ValueError, match="REPRO_PARALLEL_THRESHOLD"):
            ParallelRuntime.threshold_seconds()


class TestParallelExecution:
    def test_forced_parallel_matches_serial(
        self, fresh_runtime, monkeypatch
    ):
        tasks = list(range(2, 40))
        serial = fresh_runtime.map(_sum_task, tasks, context=(BIG,))
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        parallel = fresh_runtime.map(
            _sum_task, tasks, context=(BIG,), workers=2
        )
        assert parallel == serial
        assert fresh_runtime.last_decision.mode == "parallel"

    def test_imap_streams_in_task_order(self, fresh_runtime, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        tasks = list(range(1, 20))
        out = list(
            fresh_runtime.imap(
                _sum_task, tasks, context=(BIG,), workers=2
            )
        )
        assert out == [int(BIG[:n].sum()) for n in tasks]

    def test_workers_see_zero_copy_readonly_views(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        flags = fresh_runtime.map(
            _flags_task, [1, 2, 3, 4], context=(BIG,), workers=2
        )
        # The probe runs on the live (writeable) parent array; the pool
        # tasks attach the published read-only shm view.
        assert flags[0] is True
        assert not any(flags[1:])

    def test_pool_and_context_are_reused_across_batches(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        context = (BIG,)
        fresh_runtime.map(
            _sum_task, [1, 2, 3], context=context, workers=2
        )
        published = fresh_runtime.stats["contexts_published"]
        segments = fresh_runtime.tracked_segments()
        fresh_runtime.map(
            _sum_task, [4, 5, 6], context=context, workers=2
        )
        assert fresh_runtime.stats["contexts_published"] == published
        assert fresh_runtime.stats["context_cache_hits"] >= 1
        assert fresh_runtime.tracked_segments() == segments


class TestShmLifecycle:
    def test_normal_close_unlinks_everything(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        fresh_runtime.map(
            _sum_task, [1, 2, 3], context=(BIG,), workers=2
        )
        assert fresh_runtime.tracked_segments()
        assert _shm_entries(os.getpid())
        fresh_runtime.close()
        assert fresh_runtime.tracked_segments() == []
        assert _shm_entries(os.getpid()) == []

    def test_worker_crash_cleans_up_and_recovers(
        self, fresh_runtime, monkeypatch
    ):
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setenv("REPRO_PARALLEL", "always")
        with pytest.raises(BrokenProcessPool):
            fresh_runtime.map(
                _crash_task, [1, 2, 3, 4], context=(BIG,), workers=2
            )
        # The runtime recovers with a fresh pool...
        out = fresh_runtime.map(
            _sum_task, [2, 3], context=(BIG,), workers=2
        )
        assert out == [1, 3]
        # ...and still owns (and can unlink) every segment.
        fresh_runtime.close()
        assert _shm_entries(os.getpid()) == []

    def test_keyboard_interrupt_cleans_up(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        with pytest.raises(KeyboardInterrupt):
            fresh_runtime.map(
                _interrupt_task, [1, 2, 3], context=(BIG,), workers=2
            )
        fresh_runtime.close()
        assert _shm_entries(os.getpid()) == []

    def test_interpreter_exit_unlinks_segments(self, tmp_path):
        """atexit cleanup: no /dev/shm leak even without close()."""
        script = textwrap.dedent(
            """
            import os
            import numpy as np
            from repro.core.runtime import get_runtime

            os.environ["REPRO_PARALLEL"] = "always"
            runtime = get_runtime()
            arr = np.arange(100_000, dtype=np.int64)

            def task(context, n):
                return int(context[0][:n].sum())

            out = runtime.map(task, [1, 2, 3], context=(arr,), workers=2)
            assert out == [0, 1, 3]
            assert runtime.tracked_segments()
            print(os.getpid())
            # exit WITHOUT close(): atexit must unlink the segments
            """
        )
        env = dict(os.environ)
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        child_pid = int(proc.stdout.strip().splitlines()[-1])
        assert _shm_entries(child_pid) == []

    def test_context_eviction_unlinks_old_segments(self):
        runtime = ParallelRuntime(max_contexts=2)
        try:
            refs = []
            for i in range(5):
                ctx = (np.arange(50_000, dtype=np.int64) + i,)
                refs.append(runtime.publish(ctx))
            # Only the two newest contexts may still own segments.
            alive = runtime.tracked_segments()
            assert len(alive) <= 4  # <= 2 contexts x (array + payload)
            assert runtime.stats["segments_created"] == 10
        finally:
            runtime.close()
        assert runtime.tracked_segments() == []

    def test_forked_children_never_unlink_parent_segments(
        self, fresh_runtime, monkeypatch
    ):
        """close() in an inheriting process must be a no-op."""
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        fresh_runtime.map(
            _sum_task, [1, 2, 3], context=(BIG,), workers=2
        )
        before = fresh_runtime.tracked_segments()
        assert before
        pid = os.fork()
        if pid == 0:  # child: inherited runtime object, not owner
            fresh_runtime.close()
            os._exit(0)
        os.waitpid(pid, 0)
        assert fresh_runtime.tracked_segments() == before
        assert len(_shm_entries(os.getpid())) == len(before)


class TestSharedArrayPublication:
    def test_large_arrays_ride_shared_memory(self, fresh_runtime):
        arr = np.arange(
            MIN_SHARED_ARRAY_BYTES // 8 + 1, dtype=np.int64
        )
        ref = fresh_runtime.publish((arr,))
        assert ref is not None
        # context payload segment + one hoisted array segment
        assert len(fresh_runtime.tracked_segments()) == 2

    def test_small_arrays_stay_inline(self, fresh_runtime):
        arr = np.arange(8, dtype=np.int64)
        fresh_runtime.publish((arr,))
        assert len(fresh_runtime.tracked_segments()) == 1

    def test_no_shm_mode_falls_back_to_inline_blobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        runtime = ParallelRuntime()
        try:
            out = runtime.map(
                _sum_task, [2, 3, 4], context=(BIG,), workers=2
            )
            assert out == [1, 3, 6]
            assert runtime.tracked_segments() == []
        finally:
            runtime.close()


class TestForcedSpawn:
    """Satellite: the non-fork path must be bit-identical (and exist)."""

    def test_spawn_evaluate_many_matches_serial(
        self, sobel, small_images, sobel_space, monkeypatch
    ):
        reset_runtime()
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        try:
            assert get_runtime().start_method == "spawn"
            configs = sobel_space.random_configurations(6, rng=7)
            serial = EvaluationEngine(
                sobel, small_images
            ).evaluate_many(sobel_space, configs, workers=1)
            spawned = EvaluationEngine(
                sobel, small_images
            ).evaluate_many(sobel_space, configs, workers=2)
            assert pickle.dumps(serial) == pickle.dumps(spawned)
        finally:
            reset_runtime()

    def test_spawn_library_build_matches_serial(self, monkeypatch):
        plan = GenerationPlan(
            {("add", 4): 10, ("mul", 4): 6}, seed=3, sample_size=1 << 10
        )
        reset_runtime()
        serial = build_library(plan, workers=1, chunk_size=4)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        try:
            spawned = build_library(plan, workers=2, chunk_size=4)
            assert library_payload(spawned.library) == library_payload(
                serial.library
            )
        finally:
            reset_runtime()

    def test_invalid_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "thread")
        with pytest.raises(ValueError, match="REPRO_START_METHOD"):
            ParallelRuntime()
