import numpy as np
import pytest

from repro.core.dse import random_sampling
from repro.core.modeling import build_training_set, fit_engines, select_best_model
from repro.core.nsga2 import (
    _tournament,
    crowding_distance,
    fast_non_dominated_sort,
    nsga2_search,
)
from repro.core.pareto import dominates
from repro.errors import DSEError


class TestNonDominatedSort:
    def test_layered_fronts(self):
        pts = np.array(
            [[1, 1], [2, 2], [3, 3], [1, 2], [2, 1]]
        )
        fronts = fast_non_dominated_sort(pts)
        assert fronts[0].tolist() == [0]
        assert sorted(fronts[1].tolist()) == [3, 4]
        assert fronts[2].tolist() == [1]
        assert fronts[3].tolist() == [2]

    def test_all_nondominated_single_front(self):
        pts = np.array([[1, 4], [2, 3], [3, 2], [4, 1]])
        fronts = fast_non_dominated_sort(pts)
        assert len(fronts) == 1
        assert sorted(fronts[0].tolist()) == [0, 1, 2, 3]

    def test_partition_is_complete(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, (40, 2))
        fronts = fast_non_dominated_sort(pts)
        combined = sorted(int(i) for f in fronts for i in f)
        assert combined == list(range(40))

    def test_front_members_nondominated_within_front(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, (30, 3))
        for front in fast_non_dominated_sort(pts):
            for i in front:
                for j in front:
                    assert not dominates(pts[i], pts[j])


class TestCrowdingDistance:
    def test_boundary_points_infinite(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [3.0, 0.0]])
        crowd = crowding_distance(pts)
        assert np.isinf(crowd[0])
        assert np.isinf(crowd[2])
        assert np.isfinite(crowd[1])

    def test_tiny_fronts_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))
        assert np.all(
            np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]])))
        )

    def test_denser_region_lower_distance(self):
        pts = np.array(
            [[0.0, 1.0], [0.1, 0.9], [0.15, 0.85], [1.0, 0.0]]
        )
        crowd = crowding_distance(pts)
        # point 1's nearest neighbours (0 and 2) hug it; point 2 borders
        # the distant point 3, so it is less crowded
        assert crowd[1] < crowd[2]


class TestTournament:
    def test_full_ties_break_randomly(self):
        """Equal rank + equal (infinite) crowding: ~50/50, not always b.

        Regression: the seed implementation resolved exact ties
        deterministically in favour of contestant ``b``.
        """
        n, draws = 6, 20_000
        rank = np.zeros(n, dtype=np.int64)
        crowd = np.full(n, np.inf)
        picks = _tournament(rank, crowd, np.random.default_rng(7), draws)
        # Re-draw the contestant pairs with the same seed to see which
        # side each pick came from.
        replay = np.random.default_rng(7)
        a = replay.integers(0, n, size=draws)
        b = replay.integers(0, n, size=draws)
        distinct = a != b
        frac_a = float(np.mean(picks[distinct] == a[distinct]))
        assert 0.45 < frac_a < 0.55

    def test_lower_rank_still_always_wins(self):
        rank = np.array([0, 1], dtype=np.int64)
        crowd = np.full(2, np.inf)
        picks = _tournament(rank, crowd, np.random.default_rng(0), 500)
        # whenever the contestants differed in rank, rank 0 won
        replay = np.random.default_rng(0)
        a = replay.integers(0, 2, size=500)
        b = replay.integers(0, 2, size=500)
        mixed = rank[a] != rank[b]
        assert np.all(rank[picks[mixed]] == 0)


@pytest.fixture(scope="module")
def models(sobel_space, sobel_evaluator):
    train = build_training_set(sobel_space, sobel_evaluator, 50, rng=0)
    test = build_training_set(sobel_space, sobel_evaluator, 25, rng=1)
    qor = select_best_model(
        fit_engines(sobel_space, train, test, target="qor",
                    engines=["K-Neighbors"])
    ).model
    hw = select_best_model(
        fit_engines(sobel_space, train, test, target="area",
                    engines=["K-Neighbors"])
    ).model
    return qor, hw


class TestNsga2Search:
    def test_result_structure(self, sobel_space, models):
        qor, hw = models
        result = nsga2_search(
            sobel_space, qor, hw, population_size=20, generations=5,
            rng=0,
        )
        assert result.evaluations == 20 * 6
        assert len(result.configs) == result.points.shape[0]
        for config in result.configs:
            sobel_space.validate_configuration(config)

    def test_front_mutually_nondominated(self, sobel_space, models):
        qor, hw = models
        result = nsga2_search(
            sobel_space, qor, hw, population_size=20, generations=8,
            rng=1,
        )
        minimised = np.stack(
            [-result.points[:, 0], result.points[:, 1]], axis=1
        )
        for i in range(len(minimised)):
            for j in range(len(minimised)):
                assert not dominates(minimised[i], minimised[j])

    def test_deterministic(self, sobel_space, models):
        qor, hw = models
        a = nsga2_search(sobel_space, qor, hw, population_size=12,
                         generations=4, rng=5)
        b = nsga2_search(sobel_space, qor, hw, population_size=12,
                         generations=4, rng=5)
        assert a.configs == b.configs

    def test_bit_reproducible_across_workers(self, sobel_space, models):
        """Parallel objective prediction must not change any bit.

        The population is large enough (>= 2x the parallel chunk
        minimum) that ``workers=2`` actually exercises the prediction
        pool; chunk outputs concatenate in submission order.
        """
        qor, hw = models
        serial = nsga2_search(
            sobel_space, qor, hw, population_size=256, generations=2,
            rng=3, workers=None,
        )
        parallel = nsga2_search(
            sobel_space, qor, hw, population_size=256, generations=2,
            rng=3, workers=2,
        )
        assert serial.configs == parallel.configs
        assert np.array_equal(serial.points, parallel.points)
        assert serial.evaluations == parallel.evaluations == 256 * 3

    def test_seeded_population_contains_seeds(self, sobel_space, models):
        qor, hw = models
        seeds = [sobel_space.random_configuration(
            np.random.default_rng(s)) for s in range(4)]
        result = nsga2_search(
            sobel_space, qor, hw, population_size=12, generations=2,
            rng=0, seeds=seeds,
        )
        assert result.evaluations == 12 * 3
        for config in result.configs:
            sobel_space.validate_configuration(config)

    def test_competitive_with_random_sampling(self, sobel_space, models):
        """With the same evaluation budget NSGA-II's front hypervolume
        should not fall meaningfully below random sampling's."""
        from repro.core.pareto import hypervolume_2d

        qor, hw = models
        result = nsga2_search(
            sobel_space, qor, hw, population_size=40, generations=24,
            rng=2,
        )
        sampled = random_sampling(
            sobel_space, qor, hw,
            max_evaluations=result.evaluations, rng=2,
        )

        def hv(points):
            both = np.vstack([result.points, sampled.points])
            ref = (
                1.0 + 1e-9 - float(both[:, 0].min()) + 1.0,
                float(both[:, 1].max()) * 1.05 + 1e-9,
            )
            minimised = np.stack(
                [1.0 - points[:, 0], points[:, 1]], axis=1
            )
            return hypervolume_2d(minimised, reference=ref)

        assert hv(result.points) >= 0.9 * hv(sampled.points)

    def test_invalid_params(self, sobel_space, models):
        qor, hw = models
        with pytest.raises(DSEError):
            nsga2_search(sobel_space, qor, hw, population_size=3)
        with pytest.raises(DSEError):
            nsga2_search(sobel_space, qor, hw, population_size=11)
        with pytest.raises(DSEError):
            nsga2_search(sobel_space, qor, hw, generations=0)
