"""Engine-level contract of the configuration-axis batched path.

The property layer (``tests/accelerators/test_property_config_batch``)
pins ``GraphProgram.execute_batch`` against random graphs; this module
pins everything the engine stacks on top of it:

* ``evaluate_many`` returns the same results whichever execution mode
  the cost model picks (classic loop, vectorized pass, process pool);
* config-axis tiling (``REPRO_CONFIG_TILE`` or the auto budget) never
  changes a byte of the output;
* ``BatchedSsim.batch`` rows are bit-identical to per-slice calls;
* the lazy space caches (stacked LUTs, impl memo) and the engine's
  probe cache behave across reuse and pickling (worker shipping);
* the runtime's three-way cost model picks ``vectorized`` exactly when
  the margins say so — including where the pool is unavailable.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import runtime as rt
from repro.core.engine import (
    CONFIG_TILE_ENV,
    NO_CONFIG_BATCH_ENV,
    EvaluationEngine,
)
from repro.core.runtime import get_runtime, reset_runtime
from repro.errors import ValidationError
from repro.imaging.metrics import BatchedSsim


@pytest.fixture()
def fresh_runtime():
    reset_runtime()
    yield get_runtime()
    reset_runtime()


def some_configs(space, n=6, rng=17):
    configs = space.random_configurations(n, rng=rng)
    # Duplicates ride along: evaluate_many analyses them once but must
    # still report them at their original positions.
    return list(configs) + list(configs[:2])


class TestEvaluateManyModes:
    def test_classic_vectorized_and_pool_identical(
        self, sobel_space, sobel_evaluator, monkeypatch, fresh_runtime
    ):
        configs = some_configs(sobel_space)

        monkeypatch.setenv(NO_CONFIG_BATCH_ENV, "1")
        classic = sobel_evaluator.evaluate_many(sobel_space, configs)
        monkeypatch.delenv(NO_CONFIG_BATCH_ENV)

        batched = sobel_evaluator.evaluate_many(sobel_space, configs)
        assert batched == classic

        # Force the pool even on a single-core host: ``always`` is the
        # operator override the hybrid model never second-guesses.
        monkeypatch.setenv(rt.PARALLEL_MODE_ENV, "always")
        pooled = sobel_evaluator.evaluate_many(
            sobel_space, configs, workers=2
        )
        assert pooled == classic
        assert fresh_runtime.last_decision.mode == "parallel"

    def test_duplicates_share_one_analysis(
        self, sobel_space, sobel_evaluator
    ):
        configs = some_configs(sobel_space)
        results = sobel_evaluator.evaluate_many(sobel_space, configs)
        assert len(results) == len(configs)
        for i, config in enumerate(configs):
            assert results[i] == results[configs.index(config)]

    def test_forced_vectorized_matches_serial(
        self, sobel_space, sobel_evaluator
    ):
        """The vectorized pass itself (not just whatever mode the cost
        model happens to pick) is bit-identical to ``evaluate``."""
        configs = list(sobel_space.random_configurations(5, rng=29))
        tables = sobel_evaluator._batch_tables(sobel_space, configs)
        assert tables is not None
        vectorized = sobel_evaluator._evaluate_vectorized(
            sobel_space, configs, tables
        )
        serial = [
            sobel_evaluator.evaluate(sobel_space, c) for c in configs
        ]
        assert vectorized == serial


class TestConfigTiling:
    def test_any_tile_size_is_identity(
        self, sobel_space, sobel_evaluator, monkeypatch
    ):
        configs = some_configs(sobel_space, n=7, rng=41)
        monkeypatch.delenv(CONFIG_TILE_ENV, raising=False)
        baseline = sobel_evaluator.evaluate_many(sobel_space, configs)
        for tile in ("1", "3", "64"):
            monkeypatch.setenv(CONFIG_TILE_ENV, tile)
            assert (
                sobel_evaluator.evaluate_many(sobel_space, configs)
                == baseline
            )

    def test_tile_env_clamped_to_batch(
        self, sobel_evaluator, monkeypatch
    ):
        monkeypatch.setenv(CONFIG_TILE_ENV, "64")
        assert sobel_evaluator.config_tile(4) == 4
        monkeypatch.setenv(CONFIG_TILE_ENV, "3")
        assert sobel_evaluator.config_tile(4) == 3

    def test_auto_tile_bounded(self, sobel_evaluator, monkeypatch):
        monkeypatch.delenv(CONFIG_TILE_ENV, raising=False)
        tile = sobel_evaluator.config_tile(5)
        assert 1 <= tile <= 5

    def test_invalid_tile_env_rejected(
        self, sobel_evaluator, monkeypatch
    ):
        for bad in ("0", "", "many"):
            monkeypatch.setenv(CONFIG_TILE_ENV, bad)
            with pytest.raises(ValidationError):
                sobel_evaluator.config_tile(4)


class TestQorBatch:
    def test_matches_per_config_qor(self, sobel_space, sobel_evaluator):
        configs = list(sobel_space.random_configurations(6, rng=53))
        tables = sobel_evaluator._batch_tables(sobel_space, configs)
        scores = sobel_evaluator.qor_batch(tables, len(configs))
        for c, config in enumerate(configs):
            expected = sobel_evaluator.qor(
                sobel_space.assignment_callables(config)
            )
            assert scores[c] == expected


class TestBatchedSsimBatch:
    def test_rows_match_per_slice_call(self, rng):
        ref = rng.uniform(0.0, 255.0, size=(3, 17, 23))
        ssim = BatchedSsim(ref)
        test = rng.uniform(0.0, 255.0, size=(5, 3, 17, 23))
        batch = ssim.batch(test)
        assert batch.shape == (5, 3)
        for c in range(5):
            assert np.array_equal(batch[c], ssim(test[c]))

    def test_rejects_wrong_rank_or_shape(self, rng):
        ref = rng.uniform(0.0, 255.0, size=(2, 8, 8))
        ssim = BatchedSsim(ref)
        with pytest.raises(ValueError):
            ssim.batch(rng.uniform(0.0, 255.0, size=(2, 8, 8)))
        with pytest.raises(ValueError):
            ssim.batch(rng.uniform(0.0, 255.0, size=(4, 2, 8, 9)))


class TestSpaceCaches:
    def test_assignment_callables_memoised(self, sobel_space):
        config = sobel_space.random_configuration(rng=3)
        first = sobel_space.assignment_callables(config)
        second = sobel_space.assignment_callables(config)
        assert first.keys() == second.keys()
        for name in first:
            assert first[name] is second[name]

    def test_stacked_lut_cached_and_blockwise(self, sobel_space):
        flat = sobel_space.stacked_lut(0)
        assert flat is sobel_space.stacked_lut(0)
        assert not flat.flags.writeable
        group = sobel_space.choices[0]
        block = 4 ** group[0].width
        assert flat.shape == (len(group) * block,)
        for i, record in enumerate(group):
            assert np.array_equal(
                flat[i * block:(i + 1) * block], record.lut()
            )

    def test_pickle_drops_lazy_caches(self, sobel_space):
        config = sobel_space.random_configuration(rng=9)
        sobel_space.stacked_lut(0)
        sobel_space.assignment_callables(config)
        clone = pickle.loads(pickle.dumps(sobel_space))
        assert clone._slot_luts == {}
        assert clone._impl_memo == {}
        # The caches rebuild to the same tables on first use.
        for k in range(clone.n_slots):
            assert np.array_equal(
                clone.stacked_lut(k), sobel_space.stacked_lut(k)
            )


class TestProbeCache:
    def test_set_after_first_batch_then_reused(
        self, sobel, small_images, sobel_space
    ):
        engine = EvaluationEngine(sobel, small_images)
        assert engine._probe_sim is None
        configs = some_configs(sobel_space, n=4, rng=61)
        first = engine.evaluate_many(sobel_space, configs)
        assert engine._probe_sim is not None
        assert engine._probe_sim[0]() is sobel_space
        # Steady state: the cached probe skips re-measurement but must
        # not change any result.
        assert engine.evaluate_many(sobel_space, configs) == first

    def test_pickle_drops_probe_cache(
        self, sobel, small_images, sobel_space
    ):
        engine = EvaluationEngine(sobel, small_images)
        configs = some_configs(sobel_space, n=4, rng=67)
        first = engine.evaluate_many(sobel_space, configs)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._probe_sim is None
        assert clone.evaluate_many(sobel_space, configs) == first


class TestHybridCostModel:
    """Three-way decide(): margins, floors, and pool-free fallbacks."""

    @pytest.fixture(autouse=True)
    def _stable_knobs(self, monkeypatch):
        monkeypatch.delenv(rt.PARALLEL_MODE_ENV, raising=False)
        monkeypatch.delenv(rt.THRESHOLD_ENV, raising=False)
        monkeypatch.setattr(rt, "_IN_WORKER", False)

    def test_vectorized_below_pool_threshold(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "usable_cores", lambda: 4)
        d = fresh_runtime.decide(
            "t", n_tasks=4, workers=4,
            probe_seconds=0.004, vectorized_seconds=0.004,
        )
        # est_serial = 12ms: under the 50ms pool threshold but over the
        # 5ms vectorized floor, and the 4ms estimate clears the margin.
        assert d.mode == "vectorized"
        assert d.reason == "below-threshold"
        assert d.est_vectorized_seconds == 0.004

    def test_serial_below_vectorized_floor(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "usable_cores", lambda: 4)
        d = fresh_runtime.decide(
            "t", n_tasks=4, workers=4,
            probe_seconds=0.0004, vectorized_seconds=0.0001,
        )
        assert d.mode == "serial"
        assert d.reason == "below-threshold"

    def test_vectorized_needs_margin_over_serial(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "usable_cores", lambda: 1)
        d = fresh_runtime.decide(
            "t", n_tasks=9, workers=1,
            probe_seconds=0.05, vectorized_seconds=0.39,
        )
        # 0.39 >= 0.9 * 0.4: not enough predicted win, stay serial.
        assert d.mode == "serial"

    @pytest.mark.parametrize(
        "env,workers,reason",
        [
            (None, 1, "workers<=1"),
            ("never", 8, "REPRO_PARALLEL=never"),
        ],
    )
    def test_vectorized_where_pool_unavailable(
        self, fresh_runtime, monkeypatch, env, workers, reason
    ):
        if env is not None:
            monkeypatch.setenv(rt.PARALLEL_MODE_ENV, env)
        monkeypatch.setattr(rt, "usable_cores", lambda: 4)
        before = fresh_runtime.stats["vectorized_batches"]
        d = fresh_runtime.decide(
            "t", n_tasks=9, workers=workers,
            probe_seconds=0.05, vectorized_seconds=0.05,
        )
        assert d.mode == "vectorized"
        assert d.reason == reason
        assert fresh_runtime.stats["vectorized_batches"] == before + 1
        assert fresh_runtime.last_decision is d

    def test_single_core_still_vectorizes(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setattr(rt, "usable_cores", lambda: 1)
        d = fresh_runtime.decide(
            "t", n_tasks=9, workers=8,
            probe_seconds=0.05, vectorized_seconds=0.05,
        )
        assert d.mode == "vectorized"
        assert d.reason == "single-core"

    def test_always_overrides_vectorized(
        self, fresh_runtime, monkeypatch
    ):
        monkeypatch.setenv(rt.PARALLEL_MODE_ENV, "always")
        monkeypatch.setattr(rt, "usable_cores", lambda: 4)
        d = fresh_runtime.decide(
            "t", n_tasks=9, workers=4,
            probe_seconds=0.05, vectorized_seconds=0.001,
        )
        assert d.mode == "parallel"
        assert d.reason == "REPRO_PARALLEL=always"

    def test_single_task_never_vectorizes(self, fresh_runtime):
        d = fresh_runtime.decide(
            "t", n_tasks=1, workers=4,
            probe_seconds=0.05, vectorized_seconds=0.0,
        )
        assert d.mode == "serial"
        assert d.reason == "single-task"
