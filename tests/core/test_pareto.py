import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    ParetoArchive,
    dominates,
    front_distances,
    hypervolume_2d,
    pareto_front_indices,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1, 1], [2, 2])

    def test_partial_better(self):
        assert dominates([1, 2], [2, 2])

    def test_equal_not_dominating(self):
        assert not dominates([1, 1], [1, 1])

    def test_tradeoff_not_dominating(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])


class TestParetoFrontIndices:
    def test_simple_2d(self):
        pts = np.array([[1, 3], [2, 2], [3, 1], [3, 3], [2, 4]])
        front = pareto_front_indices(pts)
        assert sorted(front.tolist()) == [0, 1, 2]

    def test_single_point(self):
        assert pareto_front_indices(np.array([[5.0, 5.0]])).tolist() == [0]

    def test_duplicates_kept_once_at_least(self):
        pts = np.array([[1, 1], [1, 1], [2, 2]])
        front = pareto_front_indices(pts)
        assert 2 not in front.tolist()
        assert len(front) >= 1

    def test_3d(self):
        pts = np.array(
            [[1, 1, 1], [2, 2, 2], [0, 3, 1], [1, 0, 3]]
        )
        front = sorted(pareto_front_indices(pts).tolist())
        assert front == [0, 2, 3]

    def test_all_nondominated(self):
        pts = np.array([[1, 4], [2, 3], [3, 2], [4, 1]])
        assert len(pareto_front_indices(pts)) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_front_indices(np.empty((0, 2)))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=2, max_value=4))
    def test_front_members_mutually_nondominated(self, seed, dims):
        pts = np.random.default_rng(seed).uniform(0, 1, (40, dims))
        front = pareto_front_indices(pts)
        assert len(front) >= 1
        for i in front:
            for j in front:
                assert not dominates(pts[i], pts[j])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_non_members_are_dominated(self, seed):
        pts = np.random.default_rng(seed).uniform(0, 1, (30, 2))
        front = set(pareto_front_indices(pts).tolist())
        for k in range(30):
            if k not in front:
                assert any(
                    dominates(pts[i], pts[k]) for i in front
                ), k


class TestParetoArchive:
    def test_insert_and_evict(self):
        archive = ParetoArchive(2)
        assert archive.insert([2, 2], "a")
        assert archive.insert([1, 3], "b")
        assert not archive.insert([3, 3], "c")  # dominated by a
        assert archive.insert([1, 1], "d")  # dominates a and b
        assert len(archive) == 1
        assert archive.payloads == ["d"]

    def test_duplicate_rejected(self):
        archive = ParetoArchive(2)
        archive.insert([1, 1], "a")
        assert not archive.insert([1, 1], "b")

    def test_dimension_check(self):
        archive = ParetoArchive(2)
        with pytest.raises(ValueError):
            archive.insert([1, 2, 3], "a")

    def test_points_returns_independent_copy(self):
        archive = ParetoArchive(2)
        archive.insert([2, 2], "a")
        archive.insert([1, 3], "b")
        view = archive.points
        view[:] = -99.0
        # the archive's internal state must be unaffected ...
        assert np.array_equal(
            archive.points, np.array([[2.0, 2.0], [1.0, 3.0]])
        )
        # ... and domination tests still behave as before the mutation
        assert not archive.insert([3, 3], "c")

    def test_payloads_returns_independent_list(self):
        archive = ParetoArchive(2)
        archive.insert([1, 1], "a")
        listing = archive.payloads
        listing.append("intruder")
        assert archive.payloads == ["a"]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_archive_invariant_mutually_nondominated(self, seed):
        """Property: after any insert sequence, the archive holds only
        mutually non-dominated points."""
        rng = np.random.default_rng(seed)
        archive = ParetoArchive(2)
        for k in range(60):
            archive.insert(rng.uniform(0, 1, 2), k)
        pts = archive.points
        for i in range(len(pts)):
            for j in range(len(pts)):
                assert not dominates(pts[i], pts[j])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_archive_equals_batch_front(self, seed):
        """Property: incremental archive = batch Pareto filter (on
        distinct points)."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, (50, 2))
        archive = ParetoArchive(2)
        for k, p in enumerate(pts):
            archive.insert(p, k)
        batch = set(pareto_front_indices(pts).tolist())
        assert set(archive.payloads) == batch


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d(np.array([[0.5, 0.5]]), reference=(1, 1))
        assert hv == pytest.approx(0.25)

    def test_better_front_bigger(self):
        good = np.array([[0.1, 0.5], [0.5, 0.1]])
        bad = np.array([[0.4, 0.8], [0.8, 0.4]])
        ref = (1, 1)
        assert hypervolume_2d(good, ref) > hypervolume_2d(bad, ref)

    def test_points_beyond_reference_ignored(self):
        hv = hypervolume_2d(
            np.array([[2.0, 2.0], [0.5, 0.5]]), reference=(1, 1)
        )
        assert hv == pytest.approx(0.25)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((2, 3)), (1, 1, 1))


class TestFrontDistances:
    def test_identical_fronts_zero(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        stats = front_distances(front, front)
        assert stats["to_optimal_avg"] == 0.0
        assert stats["from_optimal_max"] == 0.0

    def test_directed_asymmetry(self):
        optimal = np.array([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        partial = np.array([[0.0, 1.0]])  # covers one corner only
        stats = front_distances(partial, optimal)
        assert stats["to_optimal_avg"] == 0.0  # member of the optimum
        assert stats["from_optimal_max"] > 0.5  # far corner missed

    def test_explicit_bounds(self):
        a = np.array([[0.0, 10.0]])
        b = np.array([[5.0, 10.0]])
        stats = front_distances(
            a, b, bounds=(np.array([0.0, 0.0]), np.array([10.0, 10.0]))
        )
        assert stats["to_optimal_avg"] == pytest.approx(0.5)

    def test_objective_count_mismatch(self):
        with pytest.raises(ValueError):
            front_distances(np.zeros((1, 2)), np.zeros((1, 3)))


class TestInsertMany:
    def _sequential(self, batch, payloads):
        archive = ParetoArchive(n_objectives=2)
        for point, payload in zip(batch, payloads):
            archive.insert(point, payload)
        return archive

    def test_matches_sequential_inserts(self):
        rng = np.random.default_rng(0)
        batch = rng.uniform(0, 1, (80, 2))
        payloads = [f"p{i}" for i in range(80)]
        sequential = self._sequential(batch, payloads)
        bulk = ParetoArchive(n_objectives=2)
        bulk.insert_many(batch, payloads)
        # same final front membership (vectorised one-pass merge)
        assert sorted(map(tuple, bulk.points.tolist())) == sorted(
            map(tuple, sequential.points.tolist())
        )
        assert sorted(bulk.payloads) == sorted(sequential.payloads)

    def test_accepted_mask_and_eviction(self):
        archive = ParetoArchive(n_objectives=2)
        archive.insert((5.0, 5.0), "old")
        accepted = archive.insert_many(
            np.array([[6.0, 6.0], [1.0, 1.0], [2.0, 2.0]]),
            ["worse", "best", "mid"],
        )
        assert accepted.tolist() == [False, True, False]
        assert archive.payloads == ["best"]

    def test_duplicates_keep_first(self):
        archive = ParetoArchive(n_objectives=2)
        archive.insert((1.0, 2.0), "existing")
        accepted = archive.insert_many(
            np.array([[1.0, 2.0], [2.0, 1.0], [2.0, 1.0]]),
            ["dupe-of-old", "new", "dupe-of-new"],
        )
        assert accepted.tolist() == [False, True, False]
        assert sorted(archive.payloads) == ["existing", "new"]

    def test_empty_batch(self):
        archive = ParetoArchive(n_objectives=2)
        accepted = archive.insert_many(np.empty((0, 2)), [])
        assert accepted.shape == (0,)

    def test_shape_validation(self):
        archive = ParetoArchive(n_objectives=2)
        with pytest.raises(ValueError):
            archive.insert_many(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            archive.insert_many(np.zeros((2, 2)), ["a"])

    def test_copy_is_independent(self):
        archive = ParetoArchive(n_objectives=2)
        archive.insert((1.0, 2.0), "a")
        clone = archive.copy()
        clone.insert((0.5, 0.5), "b")
        assert len(archive) == 1
        assert len(clone) == 1  # "b" evicted "a" in the clone only
        assert archive.payloads == ["a"]
        assert clone.payloads == ["b"]
