"""Cross-module property tests on the library's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import QuAdAdder, TruncatedAdder
from repro.circuits.base import ExactAdder
from repro.circuits.characterization import characterize
from repro.library.component import record_from_circuit
from repro.ml.fidelity import fidelity
from repro.netlist.builders import build_netlist
from repro.synthesis.synthesizer import optimize, report


class TestFidelityProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_negation_invariance(self, seed):
        """Negating both vectors flips every pairwise relation in sync,
        so fidelity is invariant."""
        rng = np.random.default_rng(seed)
        y = rng.normal(size=25)
        pred = rng.normal(size=25)
        assert fidelity(y, pred) == pytest.approx(fidelity(-y, -pred))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=-5.0, max_value=5.0))
    def test_affine_invariance_of_predictions(self, seed, scale, shift):
        """Fidelity only sees the order: positive affine maps of the
        predictions change nothing."""
        rng = np.random.default_rng(seed)
        y = rng.normal(size=25)
        pred = rng.normal(size=25)
        assert fidelity(y, pred) == pytest.approx(
            fidelity(y, scale * pred + shift)
        )


class TestCharacterisationVsSynthesis:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=7))
    def test_truncation_trades_error_for_area(self, t):
        """More truncation can only decrease area and increase MED —
        the monotone trade-off the library generation relies on."""
        base = record_from_circuit(
            TruncatedAdder(8, t, "zero"), sample_size=1 << 10
        )
        more = record_from_circuit(
            TruncatedAdder(8, min(t + 1, 8), "zero"),
            sample_size=1 << 10,
        )
        assert more.hardware.area <= base.hardware.area
        assert more.errors.med >= base.errors.med

    @settings(max_examples=10, deadline=None)
    @given(
        blocks=st.lists(st.integers(min_value=1, max_value=4),
                        min_size=2, max_size=3).filter(
            lambda b: sum(b) == 8
        )
    )
    def test_synthesised_area_at_most_raw(self, blocks):
        circuit = QuAdAdder(8, blocks)
        netlist = build_netlist(circuit)
        raw = netlist.area()
        optimize(netlist)
        assert netlist.area() <= raw

    def test_report_consistent_with_netlist(self):
        netlist = build_netlist(ExactAdder(8))
        optimize(netlist)
        rep = report(netlist)
        assert rep.area == pytest.approx(netlist.area())
        assert rep.power == pytest.approx(netlist.power())
        assert rep.gate_count == netlist.gate_count()


class TestCharacterisationScaling:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=7))
    def test_exhaustive_med_formula(self, t):
        """Exhaustive MED of operand truncation has a closed form under
        uniform inputs: E[a mod 2^t] + E[b mod 2^t] = 2^t - 1."""
        stats = characterize(TruncatedAdder(8, t, "zero"))
        assert stats.med == pytest.approx((1 << t) - 1)
