"""Built-in workload catalog: every entry builds and is semantically right.

The golden (exact) output of every catalog workload is checked against a
direct numpy/scipy window-convolution model, so a mis-derived width or a
wrong scenario coefficient set fails loudly here.
"""

import numpy as np
import pytest
from scipy import ndimage

from repro.accelerators.window import WindowAccelerator
from repro.workloads import WORKLOADS, build_bundle

#: Catalog names that must stay stable (consumers key on them).
EXPECTED_NAMES = [
    "sobel",
    "fixed_gf",
    "generic_gf",
    "gaussian5",
    "box5",
    "box3_6b",
    "sharpen3",
    "unsharp3",
    "log5",
    "gaussian5_sep",
]

FAMILY_NAMES = [
    name
    for name in EXPECTED_NAMES
    if isinstance(
        WORKLOADS.get(name).build_accelerator(), WindowAccelerator
    )
]


def scenario_kernel(accelerator, extra):
    """The integer kernel a scenario (or fixed spec) realises."""
    spec = accelerator.spec
    n = spec.size
    if spec.mode == "fixed":
        return np.asarray(spec.weights, dtype=np.int64).reshape(n, n)
    if spec.mode == "general":
        return np.asarray(
            [extra[f"w{k}"] for k in range(n * n)], dtype=np.int64
        ).reshape(n, n)
    h = np.asarray([extra[f"h{c}"] for c in range(n)], dtype=np.int64)
    v = np.asarray([extra[f"v{r}"] for r in range(n)], dtype=np.int64)
    return np.outer(v, h)


class TestCatalogShape:
    def test_registered_names(self):
        assert WORKLOADS.names() == EXPECTED_NAMES

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_builds_and_describes(self, name):
        workload = WORKLOADS.get(name)
        accelerator = workload.build_accelerator()
        assert workload.description
        assert accelerator.op_slots()
        scenarios = workload.build_scenarios()
        if scenarios is not None:
            # every scenario must be a valid extra-input assignment
            image = np.zeros((8, 8), dtype=np.uint8)
            for extra in scenarios:
                accelerator.golden(image, extra=extra)

    def test_family_opens_new_windows(self):
        windows = {
            WORKLOADS.get(name).build_accelerator().window
            for name in FAMILY_NAMES
        }
        assert 5 in windows  # beyond the seed 3x3 case studies


class TestCatalogSemantics:
    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_golden_matches_direct_convolution(self, name):
        bundle = build_bundle(name, n_images=1, image_shape=(20, 28))
        accelerator = bundle.accelerator
        spec = accelerator.spec
        image = bundle.images[0]
        for extra in bundle.scenarios or [None]:
            got = accelerator.golden(image, extra=extra)
            kernel = scenario_kernel(accelerator, extra)
            want = ndimage.correlate(
                image.astype(np.int64), kernel, mode="nearest"
            )
            if spec.absolute:
                want = np.abs(want)
            want = np.clip(want >> spec.shift, 0, spec.pixel_max)
            assert np.array_equal(got, want)

    def test_blur_scenarios_preserve_brightness(self):
        # normalised kernels: Σw == 2**shift, so flat images map to
        # themselves (up to the floor of the final shift)
        for name in ("gaussian5", "box5", "box3_6b", "gaussian5_sep"):
            bundle = build_bundle(name, n_images=1, image_shape=(8, 8))
            spec = bundle.accelerator.spec
            for extra in bundle.scenarios:
                kernel = scenario_kernel(bundle.accelerator, extra)
                assert int(kernel.sum()) == 1 << spec.shift, name

    def test_scenario_counts(self):
        counts = {
            name: len(WORKLOADS.get(name).build_scenarios() or [None])
            for name in EXPECTED_NAMES
        }
        assert counts["gaussian5"] == 5
        assert counts["gaussian5_sep"] == 5
        assert counts["box5"] == 3
        assert counts["box3_6b"] == 2
        assert counts["generic_gf"] == 5

    def test_gaussian5_sigma_sweep_is_monotonic(self):
        # wider sigma => flatter kernel => smaller centre tap
        scenarios = WORKLOADS.get("gaussian5").build_scenarios()
        centres = [extra["w12"] for extra in scenarios]
        assert centres == sorted(centres, reverse=True)
        # quantisation can collapse neighbouring sigmas; most must differ
        assert len(set(centres)) >= 4
