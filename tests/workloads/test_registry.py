"""Workload registry container semantics."""

import pytest

from repro.accelerators.sobel import SobelEdgeDetector
from repro.errors import WorkloadError
from repro.workloads import (
    Workload,
    WorkloadRegistry,
    build_bundle,
)


def sobel_workload(name="test_sobel", scenario_factory=None):
    return Workload(
        name=name,
        description="test entry",
        factory=SobelEdgeDetector,
        scenario_factory=scenario_factory,
        tags=("test",),
    )


class TestRegistry:
    def test_register_and_get(self):
        registry = WorkloadRegistry()
        workload = registry.register(sobel_workload())
        assert registry.get("test_sobel") is workload
        assert "test_sobel" in registry
        assert registry.names() == ["test_sobel"]
        assert len(registry) == 1

    def test_add_shortcut(self):
        registry = WorkloadRegistry()
        registry.add("s", "desc", SobelEdgeDetector)
        assert registry.get("s").description == "desc"

    def test_duplicate_rejected(self):
        registry = WorkloadRegistry()
        registry.register(sobel_workload())
        with pytest.raises(WorkloadError, match="already registered"):
            registry.register(sobel_workload())

    def test_empty_name_rejected(self):
        registry = WorkloadRegistry()
        with pytest.raises(WorkloadError, match="non-empty"):
            registry.register(sobel_workload(name=""))

    def test_unknown_name_lists_known(self):
        registry = WorkloadRegistry()
        registry.register(sobel_workload())
        with pytest.raises(WorkloadError, match="test_sobel"):
            registry.get("nope")

    def test_iteration_preserves_order(self):
        registry = WorkloadRegistry()
        registry.add("b", "", SobelEdgeDetector)
        registry.add("a", "", SobelEdgeDetector)
        assert [w.name for w in registry] == ["b", "a"]


class TestWorkloadChecks:
    def test_factory_type_checked(self):
        workload = Workload("bad", "", factory=lambda: object())
        with pytest.raises(WorkloadError, match="ImageAccelerator"):
            workload.build_accelerator()

    def test_empty_scenario_list_rejected(self):
        workload = sobel_workload(scenario_factory=lambda: [])
        with pytest.raises(WorkloadError, match="empty scenario"):
            workload.build_scenarios()

    def test_none_scenarios_pass_through(self):
        assert sobel_workload().build_scenarios() is None


class TestBuildBundle:
    def test_materialises_images_and_scenarios(self):
        registry = WorkloadRegistry()
        registry.register(
            sobel_workload(scenario_factory=lambda: [{}, {}])
        )
        bundle = build_bundle(
            "test_sobel", n_images=2, image_shape=(16, 24),
            registry=registry,
        )
        assert len(bundle.images) == 2
        assert bundle.images[0].shape == (16, 24)
        assert bundle.run_count == 4
        assert bundle.workload.name == "test_sobel"

    def test_default_registry_has_catalog(self):
        bundle = build_bundle("sobel", n_images=1, image_shape=(8, 8))
        assert bundle.accelerator.name == "sobel_ed"
        assert bundle.run_count == 1
