import numpy as np
import pytest

from repro.ml.boosting import AdaBoostRegressor, GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.trees import DecisionTreeRegressor


@pytest.fixture(scope="module")
def step_data():
    """Piecewise-constant target: trees should nail it, linear can't."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, (400, 3))
    y = np.where(X[:, 0] > 5, 10.0, 0.0) + np.where(X[:, 1] > 3, 5.0, 0.0)
    return X, y


class TestDecisionTree:
    def test_interpolates_training_data(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_generalises_step_function(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor().fit(X[:300], y[:300])
        assert r2_score(y[300:], model.predict(X[300:])) > 0.95

    def test_max_depth_limits_nodes(self, step_data):
        X, y = step_data
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert shallow.node_count() < deep.node_count()
        assert shallow.node_count() <= 3

    def test_min_samples_leaf(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(min_samples_leaf=50).fit(X, y)
        # every leaf mean pools >= 50 samples; tree stays small
        assert model.node_count() < 30

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        y = np.full(50, 3.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(model.predict(X), 3.0)
        assert model.node_count() == 1

    def test_single_sample(self):
        model = DecisionTreeRegressor().fit(np.zeros((1, 2)),
                                            np.array([5.0]))
        assert model.predict(np.zeros((3, 2)))[0] == 5.0

    @pytest.mark.parametrize("kwargs", [
        {"max_depth": 0},
        {"min_samples_split": 1},
        {"min_samples_leaf": 0},
        {"max_features": 1.5},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(**kwargs)


class TestRandomForest:
    def test_beats_single_tree_on_noise(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, (300, 4))
        y = np.sin(X[:, 0]) * 3 + rng.normal(0, 0.8, 300)
        tree = DecisionTreeRegressor().fit(X[:200], y[:200])
        forest = RandomForestRegressor(n_estimators=30, rng=0).fit(
            X[:200], y[:200]
        )
        assert r2_score(y[200:], forest.predict(X[200:])) > r2_score(
            y[200:], tree.predict(X[200:])
        )

    def test_deterministic_with_seed(self, step_data):
        X, y = step_data
        a = RandomForestRegressor(n_estimators=5, rng=7).fit(X, y)
        b = RandomForestRegressor(n_estimators=5, rng=7).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_compiled_predict_matches_tree_average(self, step_data):
        X, y = step_data
        forest = RandomForestRegressor(n_estimators=8, rng=0).fit(X, y)
        compiled = forest.predict(X[:50])
        manual = np.mean(
            [t.predict(X[:50]) for t in forest._trees], axis=0
        )
        assert np.allclose(compiled, manual)

    def test_single_row_prediction(self, step_data):
        X, y = step_data
        forest = RandomForestRegressor(n_estimators=5, rng=0).fit(X, y)
        out = forest.predict(X[:1])
        assert out.shape == (1,)

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestGradientBoosting:
    def test_improves_over_iterations(self, step_data):
        X, y = step_data
        weak = GradientBoostingRegressor(n_estimators=2, rng=0).fit(X, y)
        strong = GradientBoostingRegressor(n_estimators=80, rng=0).fit(X, y)
        assert r2_score(y, strong.predict(X)) > r2_score(
            y, weak.predict(X)
        )

    def test_fits_nonlinear(self, step_data):
        X, y = step_data
        model = GradientBoostingRegressor(n_estimators=60, rng=0).fit(
            X[:300], y[:300]
        )
        assert r2_score(y[300:], model.predict(X[300:])) > 0.9

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)


class TestAdaBoost:
    def test_fits_step_function(self, step_data):
        X, y = step_data
        model = AdaBoostRegressor(n_estimators=20, rng=0).fit(
            X[:300], y[:300]
        )
        assert r2_score(y[300:], model.predict(X[300:])) > 0.85

    def test_perfect_fit_stops_early(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 10).astype(float)
        model = AdaBoostRegressor(n_estimators=50, rng=0).fit(X, y)
        assert len(model._trees) < 50

    def test_weighted_median_prediction_shape(self, step_data):
        X, y = step_data
        model = AdaBoostRegressor(n_estimators=10, rng=0).fit(X, y)
        assert model.predict(X[:7]).shape == (7,)
