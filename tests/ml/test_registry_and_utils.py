import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.base import Regressor
from repro.ml.metrics import mean_absolute_error, r2_score, rmse
from repro.ml.model_selection import train_test_split
from repro.ml.registry import default_engines, make_engine


class TestRegistry:
    def test_thirteen_engines(self):
        names = default_engines()
        assert len(names) == 13
        assert names[0] == "Random Forest"
        assert "Stochastic Gradient Descent" in names

    def test_all_instantiable_and_fittable(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (40, 3))
        y = X.sum(axis=1)
        for name in default_engines():
            model = make_engine(name, seed=0)
            assert isinstance(model, Regressor)
            model.fit(X, y)
            pred = model.predict(X)
            assert pred.shape == (40,)
            assert np.all(np.isfinite(pred))

    def test_unknown_engine(self):
        with pytest.raises(ModelError):
            make_engine("Flux Capacitor")

    def test_fresh_instances(self):
        assert make_engine("Lasso") is not make_engine("Lasso")


class TestMetrics:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.full(3, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_mae_rmse(self):
        y = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert mean_absolute_error(y, p) == 3.5
        assert rmse(y, p) == pytest.approx(np.sqrt(12.5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            r2_score(np.array([]), np.array([]))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.3, rng=0)
        assert len(X_te) == 3 and len(X_tr) == 7
        assert len(y_te) == 3 and len(y_tr) == 7

    def test_partition(self):
        X = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        X_tr, X_te, _, _ = train_test_split(X, y, 0.4, rng=1)
        together = sorted(X_tr[:, 0].tolist() + X_te[:, 0].tolist())
        assert together == list(range(10))

    def test_rows_stay_aligned(self):
        X = np.arange(10).reshape(10, 1)
        y = np.arange(10) * 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.5, rng=2)
        assert np.array_equal(y_tr, X_tr[:, 0] * 2)
        assert np.array_equal(y_te, X_te[:, 0] * 2)

    def test_invalid_fraction(self):
        X = np.zeros((4, 1))
        y = np.zeros(4)
        with pytest.raises(ValueError):
            train_test_split(X, y, 0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, 1.0)

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5), 0.5)
