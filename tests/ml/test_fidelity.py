import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.fidelity import fidelity, fidelity_matrix


class TestFidelity:
    def test_perfect_agreement(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert fidelity(y, y * 10 + 5) == 1.0  # monotone map

    def test_reversed_order_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert fidelity(y, -y) == 0.0

    def test_constant_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        # all predicted pairs tie while no true pair does
        assert fidelity(y, np.zeros(3)) == 0.0

    def test_half_right(self):
        y_true = np.array([0.0, 1.0, 2.0])
        y_pred = np.array([0.0, 2.0, 1.0])
        # pairs: (0,1) ok, (0,2) ok, (1,2) flipped
        assert fidelity(y_true, y_pred) == pytest.approx(2 / 3)

    def test_tolerance_treats_close_as_equal(self):
        y_true = np.array([1.0, 1.05, 3.0])
        y_pred = np.array([2.0, 2.02, 5.0])
        assert fidelity(y_true, y_pred, tol=0.1) == 1.0

    def test_sampled_mode_close_to_exhaustive(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=5000)
        pred = y + rng.normal(scale=0.5, size=5000)
        exact_small = fidelity(y[:2000], pred[:2000])
        sampled = fidelity(y, pred, max_pairs=300_000, rng=1)
        assert sampled == pytest.approx(exact_small, abs=0.02)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fidelity(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            fidelity(np.zeros(1), np.zeros(1))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=3, max_size=20))
    def test_self_fidelity_is_one(self, values):
        y = np.asarray(values)
        assert fidelity(y, y.copy()) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=30)
        pred = rng.normal(size=30)
        assert 0.0 <= fidelity(y, pred) <= 1.0


class TestFidelityMatrix:
    def test_multiple_predictions(self):
        y = np.array([1.0, 2.0, 3.0])
        out = fidelity_matrix(
            y, {"good": y.copy(), "bad": -y}
        )
        assert out["good"] == 1.0
        assert out["bad"] == 0.0
