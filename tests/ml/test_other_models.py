import numpy as np
import pytest

from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernel_ridge import KernelRidgeRegressor
from repro.ml.metrics import r2_score
from repro.ml.mlp import MLPRegressor
from repro.ml.naive import NaiveAdditiveModel
from repro.ml.neighbors import KNeighborsRegressor


@pytest.fixture(scope="module")
def smooth_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, (300, 2))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2
    return X, y


class TestKNN:
    def test_k1_interpolates(self, smooth_data):
        X, y = smooth_data
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_generalises(self, smooth_data):
        X, y = smooth_data
        model = KNeighborsRegressor(n_neighbors=5).fit(X[:250], y[:250])
        assert r2_score(y[250:], model.predict(X[250:])) > 0.9

    def test_k_larger_than_train(self):
        X = np.zeros((3, 1))
        y = np.array([1.0, 2.0, 3.0])
        model = KNeighborsRegressor(n_neighbors=10).fit(X, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(2.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=0)


class TestMLP:
    def test_learns_smooth_function(self, smooth_data):
        X, y = smooth_data
        model = MLPRegressor(
            hidden_layer_sizes=(32,), max_iter=300, rng=0
        ).fit(X[:250], y[:250])
        assert r2_score(y[250:], model.predict(X[250:])) > 0.8

    def test_deterministic(self, smooth_data):
        X, y = smooth_data
        a = MLPRegressor(max_iter=5, rng=3).fit(X, y).predict(X[:10])
        b = MLPRegressor(max_iter=5, rng=3).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_two_hidden_layers(self, smooth_data):
        X, y = smooth_data
        model = MLPRegressor(
            hidden_layer_sizes=(16, 16), max_iter=100, rng=0
        ).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layer_sizes=(0,))


class TestGaussianProcess:
    def test_interpolates_training_set(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_far_points_revert_to_mean(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor().fit(X, y)
        far = np.full((1, 2), 1e6)
        assert model.predict(far)[0] == pytest.approx(y.mean(), rel=1e-6)

    def test_explicit_scale(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor(length_scale=0.5).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(length_scale=-1.0)


class TestKernelRidge:
    def test_smooth_fit(self, smooth_data):
        X, y = smooth_data
        model = KernelRidgeRegressor(alpha=0.1, gamma=0.5).fit(
            X[:250], y[:250]
        )
        assert r2_score(y[250:], model.predict(X[250:])) > 0.8

    def test_strong_ridge_flattens(self, smooth_data):
        X, y = smooth_data
        model = KernelRidgeRegressor(alpha=1e6).fit(X, y)
        assert np.abs(model.predict(X)).max() < np.abs(y).max()

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            KernelRidgeRegressor(alpha=0.0)


class TestNaiveAdditive:
    def test_sums_all_columns(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        model = NaiveAdditiveModel().fit(X, np.zeros(2))
        assert np.array_equal(model.predict(X), [3.0, 7.0])

    def test_column_subset_and_sign(self):
        X = np.array([[1.0, 2.0, 3.0]])
        model = NaiveAdditiveModel(columns=[0, 2], sign=-1).fit(
            X, np.zeros(1)
        )
        assert model.predict(X)[0] == -4.0

    def test_bad_columns(self):
        with pytest.raises(ValueError):
            NaiveAdditiveModel(columns=[5]).fit(
                np.zeros((2, 2)), np.zeros(2)
            )

    def test_bad_sign(self):
        with pytest.raises(ValueError):
            NaiveAdditiveModel(sign=2.0)
