import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.linear import (
    BayesianRidge,
    LarsRegressor,
    LassoRegressor,
    LinearRegression,
    SGDRegressor,
)
from repro.ml.metrics import r2_score
from repro.ml.pls import PLSRegression


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-2, 2, (300, 6))
    w = np.array([3.0, -1.5, 0.0, 2.0, 0.0, 0.5])
    y = X @ w + 1.0 + rng.normal(0, 0.05, 300)
    return X, y, w


LINEAR_MODELS = [
    LinearRegression,
    lambda: LassoRegressor(alpha=0.001),
    BayesianRidge,
    LarsRegressor,
    lambda: PLSRegression(n_components=6),
]


class TestLinearRecovery:
    @pytest.mark.parametrize("factory", LINEAR_MODELS)
    def test_recovers_linear_function(self, factory, linear_data):
        X, y, _ = linear_data
        model = factory().fit(X[:200], y[:200])
        assert r2_score(y[200:], model.predict(X[200:])) > 0.98

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelError):
            LinearRegression().predict(np.zeros((2, 3)))

    def test_feature_count_checked(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 3)))

    def test_invalid_shapes(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ModelError):
            LinearRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nan_rejected(self):
        X = np.zeros((4, 2))
        y = np.array([1.0, np.nan, 0.0, 2.0])
        with pytest.raises(ModelError):
            LinearRegression().fit(X, y)


class TestLasso:
    def test_sparsity_grows_with_alpha(self, linear_data):
        X, y, _ = linear_data
        weak = LassoRegressor(alpha=0.001).fit(X, y)
        strong = LassoRegressor(alpha=2.0).fit(X, y)
        nz_weak = np.count_nonzero(np.abs(weak._w) > 1e-9)
        nz_strong = np.count_nonzero(np.abs(strong._w) > 1e-9)
        assert nz_strong < nz_weak

    def test_huge_alpha_predicts_mean(self, linear_data):
        X, y, _ = linear_data
        model = LassoRegressor(alpha=1e6).fit(X, y)
        assert np.allclose(model.predict(X), y.mean(), atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            LassoRegressor(alpha=-1.0)


class TestLars:
    def test_selects_strong_features_first(self, linear_data):
        X, y, w = linear_data
        model = LarsRegressor(n_nonzero_coefs=2).fit(X, y)
        nonzero = set(np.nonzero(np.abs(model._w) > 1e-9)[0])
        assert nonzero <= {0, 1, 3, 5}
        assert 0 in nonzero  # strongest coefficient enters

    def test_invalid_coef_count(self):
        with pytest.raises(ValueError):
            LarsRegressor(n_nonzero_coefs=0)


class TestBayesianRidge:
    def test_shrinks_with_noise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y_noisy = X[:, 0] + rng.normal(0, 5.0, 100)
        model = BayesianRidge().fit(X, y_noisy)
        # heavy noise => strong shrinkage toward zero
        assert np.all(np.abs(model._w) < 1.5)


class TestSGD:
    def test_deterministic_with_seed(self, linear_data):
        X, y, _ = linear_data
        m1 = SGDRegressor(max_iter=5, rng=0).fit(X, y)
        m2 = SGDRegressor(max_iter=5, rng=0).fit(X, y)
        assert np.array_equal(m1.predict(X), m2.predict(X))

    def test_survives_divergent_scales(self):
        # large unscaled features blow plain SGD up; predictions must
        # still be finite (the divergence guard)
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1000, (100, 4))
        y = X.sum(axis=1)
        model = SGDRegressor(max_iter=10, rng=0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_fits_well_scaled_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 0.1, (200, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        model = SGDRegressor(eta0=0.5, max_iter=300, rng=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9


class TestPLS:
    def test_fewer_components_than_features(self, linear_data):
        X, y, _ = linear_data
        model = PLSRegression(n_components=2).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            PLSRegression(n_components=0)
