"""Property layer: configuration-axis batched execution == per-config loop.

``GraphProgram.execute_batch`` stacks the per-configuration LUTs of every
approximate op and evaluates all ``C`` configurations in one
gather-per-step pass.  Its contract is byte-identity: row ``c`` of the
batched output must equal ``execute(inputs, assignment_c)`` exactly, for
every well-formed graph, table mix (some ops exact for all configs),
input shape regime, and executor flavour (fused and classic).  This
module checks that on ~100 random dataflow DAGs with random config
batches, plus the ``REPRO_NO_CONFIG_BATCH`` engine fallback knob.
"""

import numpy as np
import pytest

from repro.accelerators.graph import NO_FUSION_ENV
from repro.core.engine import NO_CONFIG_BATCH_ENV
from repro.utils.bitops import bit_mask

from tests.accelerators.test_property_random_graphs import (
    random_graph,
    random_inputs,
)

#: Random graphs per shape regime (2 regimes => ~100 graphs).
GRAPHS_PER_REGIME = 50


def config_row(batched, inputs, c):
    """Configuration ``c``'s slice of a batched result.

    The configuration axis, when present, sits above the common input
    rank (``execute_batch`` pads all inputs to it); results that no
    tabled op reached carry no configuration axis and are shared by
    every configuration.
    """
    base_rank = max(
        (np.ndim(v) for v in inputs.values()), default=0
    )
    batched = np.asarray(batched)
    if batched.ndim == base_rank + 1:
        return batched[c]
    return batched


def assert_rows_equal(batched, inputs, assignments, program, g):
    for c, assignment in enumerate(assignments):
        expected = program.execute(inputs, assignment or None)
        row = config_row(batched, inputs, c)
        pair = np.broadcast_arrays(row, np.asarray(expected))
        assert np.array_equal(pair[0], pair[1]), g.name


def random_tables(rng, g, program, n_configs):
    """Random stacked LUTs for a coin-flipped subset of the ops.

    Returns ``(tables, assignments)`` where ``tables`` aligns with
    ``program.op_names`` and ``assignments[c]`` is the equivalent
    per-config impl dict (gathering from config ``c``'s LUT row).
    """
    widths = {n.name: n.width for n in g.approximable_ops()}
    tables = []
    assignments = [dict() for _ in range(n_configs)]
    for name in program.op_names:
        if rng.random() < 0.4:
            tables.append(None)  # exact for every configuration
            continue
        width = widths[name]
        mask = bit_mask(width)
        n_rows = int(rng.integers(1, 5))
        flat = rng.integers(
            -(1 << 32), 1 << 32, size=n_rows * 4**width, dtype=np.int64
        )
        rows = rng.integers(0, n_rows, size=n_configs, dtype=np.int64)
        tables.append((flat, rows, width, mask))
        for c in range(n_configs):
            lut = flat[rows[c] * 4**width:(rows[c] + 1) * 4**width]
            assignments[c][name] = (
                lambda a, b, lut=lut, w=width, m=mask:
                lut[((a & m) << w) | (b & m)]
            )
    return tables, assignments


@pytest.mark.parametrize("regime", ("vector", "batch"))
def test_execute_batch_matches_per_config(regime):
    rng = np.random.default_rng(("vector", "batch").index(regime) + 11)
    for _ in range(GRAPHS_PER_REGIME):
        g = random_graph(rng)
        program = g.compile()
        inputs = random_inputs(rng, g, regime)
        n_configs = int(rng.integers(1, 7))
        tables, assignments = random_tables(rng, g, program, n_configs)

        batched = program.execute_batch(inputs, tables)
        assert_rows_equal(batched, inputs, assignments, program, g)


def test_execute_batch_fused_and_classic_identical(monkeypatch):
    """The per-config reference is executor-independent, so the batch
    matches both the fused and the classic per-config paths."""
    rng = np.random.default_rng(99)
    for _ in range(10):
        g = random_graph(rng)
        program = g.compile()
        inputs = random_inputs(rng, g, "batch")
        tables, assignments = random_tables(rng, g, program, 4)
        batched = program.execute_batch(inputs, tables)
        for no_fusion in ("", "1"):
            if no_fusion:
                monkeypatch.setenv(NO_FUSION_ENV, no_fusion)
            else:
                monkeypatch.delenv(NO_FUSION_ENV, raising=False)
            assert_rows_equal(batched, inputs, assignments, program, g)


def test_execute_batch_masks_inputs_unless_assume_masked():
    rng = np.random.default_rng(5)
    g = random_graph(rng)
    program = g.compile()
    raw = random_inputs(rng, g, "vector")
    masked = {
        name: np.asarray(raw[name], dtype=np.int64) & mask
        for (name, _, mask) in program.inputs
    }
    tables, _ = random_tables(rng, g, program, 3)
    a = program.execute_batch(raw, tables)
    b = program.execute_batch(masked, tables, assume_masked=True)
    assert np.array_equal(
        *np.broadcast_arrays(np.asarray(a), np.asarray(b))
    )


def test_execute_batch_rejects_misaligned_tables():
    from repro.errors import AcceleratorError

    rng = np.random.default_rng(6)
    g = random_graph(rng)
    program = g.compile()
    inputs = random_inputs(rng, g, "vector")
    with pytest.raises(AcceleratorError):
        program.execute_batch(
            inputs, [None] * (len(program.op_names) + 1)
        )


def test_no_config_batch_env_forces_classic_loop(
    monkeypatch, sobel_space, sobel_evaluator
):
    """The fallback knob and the batched path agree exactly."""
    configs = sobel_space.random_configurations(6, rng=21)
    monkeypatch.setenv(NO_CONFIG_BATCH_ENV, "1")
    classic = sobel_evaluator.evaluate_many(sobel_space, configs)
    monkeypatch.delenv(NO_CONFIG_BATCH_ENV)
    batched = sobel_evaluator.evaluate_many(sobel_space, configs)
    assert batched == classic
