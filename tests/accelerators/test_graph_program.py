"""Compiled GraphProgram vs the dict interpreter: bit-identical, cached."""

import numpy as np
import pytest

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import GenericGaussianFilter
from repro.accelerators.graph import DataflowGraph, GraphProgram, NodeKind
from repro.accelerators.sobel import SobelEdgeDetector
from repro.errors import AcceleratorError


def random_inputs(graph, rng, size=333, overshoot=2):
    """Random input arrays, deliberately wider than the declared width."""
    return {
        node.name: rng.integers(
            0, 1 << (overshoot * node.width), size=size
        )
        for node in graph.inputs()
    }


@pytest.mark.parametrize(
    "accelerator_cls",
    [SobelEdgeDetector, FixedGaussianFilter, GenericGaussianFilter],
)
class TestBitIdentical:
    def test_exact_evaluation(self, accelerator_cls):
        graph = accelerator_cls().graph
        rng = np.random.default_rng(1)
        for _ in range(3):
            inputs = random_inputs(graph, rng)
            expected = graph.evaluate_interpreted(inputs)
            assert np.array_equal(
                expected, graph.compile().execute(inputs)
            )
            # the public evaluate() wrapper runs the compiled program
            assert np.array_equal(expected, graph.evaluate(inputs))

    def test_randomized_assignments(self, accelerator_cls):
        graph = accelerator_cls().graph
        rng = np.random.default_rng(2)
        ops = [node.name for node in graph.approximable_ops()]
        for _ in range(5):
            inputs = random_inputs(graph, rng)
            chosen = rng.choice(
                ops, size=rng.integers(1, len(ops) + 1), replace=False
            )
            assignment = {}
            for name in chosen:
                shift = int(rng.integers(0, 3))
                assignment[name] = (
                    lambda a, b, s=shift: (a + b) >> s
                )
            expected = graph.evaluate_interpreted(inputs, assignment)
            assert np.array_equal(
                expected, graph.compile().execute(inputs, assignment)
            )

    def test_capture_identical(self, accelerator_cls):
        graph = accelerator_cls().graph
        rng = np.random.default_rng(3)
        inputs = random_inputs(graph, rng)
        interpreted, compiled = {}, {}
        graph.evaluate_interpreted(inputs, capture=interpreted)
        graph.compile().execute(inputs, capture=compiled)
        assert list(interpreted) == list(compiled)
        for name in interpreted:
            for ref, got in zip(interpreted[name], compiled[name]):
                assert np.array_equal(ref, got)


class TestBatchedExecution:
    def test_stacked_rows_match_per_run(self):
        graph = SobelEdgeDetector().graph
        rng = np.random.default_rng(4)
        stacked = {
            node.name: rng.integers(0, 256, size=(6, 50))
            for node in graph.inputs()
        }
        out = graph.compile().execute(stacked)
        assert out.shape == (6, 50)
        for r in range(6):
            row = graph.evaluate(
                {name: value[r] for name, value in stacked.items()}
            )
            assert np.array_equal(out[r], row)

    def test_broadcast_scalar_rows(self):
        """(R, 1) inputs broadcast against (R, P) inputs."""
        graph = GenericGaussianFilter().graph
        rng = np.random.default_rng(5)
        inputs = {
            f"x{k}": rng.integers(0, 256, size=(3, 40))
            for k in range(9)
        }
        weights = rng.integers(0, 256, size=(3, 9))
        inputs.update(
            {f"w{k}": weights[:, k : k + 1] for k in range(9)}
        )
        out = graph.compile().execute(inputs)
        for r in range(3):
            row_inputs = {
                f"x{k}": inputs[f"x{k}"][r] for k in range(9)
            }
            row_inputs.update(
                {f"w{k}": np.int64(weights[r, k]) for k in range(9)}
            )
            assert np.array_equal(out[r], graph.evaluate(row_inputs))

    def test_assume_masked_skips_input_masking(self):
        graph = SobelEdgeDetector().graph
        rng = np.random.default_rng(6)
        masked = {
            node.name: rng.integers(0, 256, size=20)
            for node in graph.inputs()
        }
        expected = graph.evaluate(masked)
        assert np.array_equal(
            expected,
            graph.compile().execute(masked, assume_masked=True),
        )


class TestProgramLifecycle:
    def test_compile_is_cached(self):
        graph = SobelEdgeDetector().graph
        assert graph.compile() is graph.compile()

    def test_cache_invalidated_by_mutation(self):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        g.set_output("a")
        first = g.compile()
        g.add_shl("up", "a", 1)
        g.set_output("up")
        second = g.compile()
        assert first is not second
        out = g.evaluate({"a": np.array([3])})
        assert out[0] == 6

    def test_missing_input_rejected(self):
        g = SobelEdgeDetector().graph
        with pytest.raises(AcceleratorError):
            g.compile().execute({"x0": np.array([1])})

    def test_program_is_picklable(self):
        import pickle

        program = SobelEdgeDetector().graph.compile()
        clone = pickle.loads(pickle.dumps(program))
        rng = np.random.default_rng(7)
        inputs = {
            node.name: rng.integers(0, 256, size=11)
            for node in SobelEdgeDetector().graph.inputs()
        }
        assert np.array_equal(
            program.execute(inputs), clone.execute(inputs)
        )


class TestConstWidth:
    def _graph(self, value, width):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        g.add_const("c", value, width)
        g.add_op("s", NodeKind.ADD, 8, "a", "c")
        g.set_output("s")
        return g

    def test_const_masked_to_declared_width(self):
        # 0x1FF at width 8 must behave as 0xFF, like INPUT nodes do.
        g = self._graph(0x1FF, 8)
        out = g.evaluate({"a": np.array([0])})
        assert out[0] == 0xFF

    def test_const_masking_matches_interpreter(self):
        g = self._graph(0x1FF, 8)
        inputs = {"a": np.array([0, 5, 250])}
        assert np.array_equal(
            g.evaluate(inputs), g.evaluate_interpreted(inputs)
        )

    def test_in_range_const_unchanged(self):
        g = self._graph(42, 8)
        out = g.evaluate({"a": np.array([1])})
        assert out[0] == 43
