"""Property layer: compiled execution == interpreter on random graphs.

The PR-1 engine rests on one invariant: ``DataflowGraph.compile().execute``
is bit-identical to ``evaluate_interpreted`` for *every* well-formed graph,
input batch and assignment — not just the hand-built accelerators.  This
module generates hundreds of random dataflow DAGs (all node kinds, random
widths, CONST values wider than their declared width, negative and huge
int64 inputs, scalar / vector / broadcast-batch shapes, partial
assignments) and checks the two paths agree exactly, including the
profiler's ``capture`` side channel.
"""

import numpy as np
import pytest

from repro.accelerators.graph import APPROXIMABLE, DataflowGraph, NodeKind
from repro.utils.bitops import bit_mask

#: Number of random graphs per shape regime (3 regimes => 201 graphs).
GRAPHS_PER_REGIME = 67

#: Input-batch shape regimes: scalar runs, flat vectors, and stacked
#: broadcastable batches (pixel rows against scenario columns).
SHAPE_REGIMES = ("scalar", "vector", "batch")

_OP_KINDS = (
    NodeKind.ADD,
    NodeKind.SUB,
    NodeKind.MUL,
    NodeKind.SHL,
    NodeKind.SHR,
    NodeKind.ABS,
    NodeKind.CLIP,
)


def random_graph(rng: np.random.Generator) -> DataflowGraph:
    """A random well-formed single-output dataflow DAG."""
    g = DataflowGraph(f"rand{rng.integers(1 << 30)}")
    names = []
    for i in range(int(rng.integers(1, 5))):
        names.append(g.add_input(f"in{i}", int(rng.integers(1, 13))))
    for i in range(int(rng.integers(0, 4))):
        # values deliberately overflow the declared width sometimes,
        # exercising CONST masking in both paths
        names.append(
            g.add_const(
                f"c{i}",
                int(rng.integers(0, 1 << 16)),
                int(rng.integers(1, 11)),
            )
        )
    for i in range(int(rng.integers(3, 13))):
        kind = _OP_KINDS[rng.integers(len(_OP_KINDS))]
        name = f"n{i}"
        a = names[rng.integers(len(names))]
        if kind in APPROXIMABLE:
            b = names[rng.integers(len(names))]
            g.add_op(name, kind, int(rng.integers(1, 13)), a, b)
        elif kind is NodeKind.SHL:
            g.add_shl(name, a, int(rng.integers(0, 7)))
        elif kind is NodeKind.SHR:
            g.add_shr(name, a, int(rng.integers(0, 7)))
        elif kind is NodeKind.ABS:
            g.add_abs(name, a)
        else:
            low = int(rng.integers(-64, 64))
            high = low + int(rng.integers(0, 1 << 12))
            g.add_clip(name, a, low, high)
        names.append(name)
    g.set_output(names[-1])
    return g


def random_inputs(rng, g: DataflowGraph, regime: str):
    """Random int64 input values for ``g`` in one shape regime."""
    def draw(shape):
        # span negatives and values far beyond any declared width
        return rng.integers(
            -(1 << 40), 1 << 40, size=shape, dtype=np.int64
        )

    inputs = {}
    if regime == "scalar":
        for node in g.inputs():
            inputs[node.name] = draw(())
    elif regime == "vector":
        n = int(rng.integers(1, 64))
        for node in g.inputs():
            inputs[node.name] = draw(n)
    else:
        runs, scen, pixels = (
            int(rng.integers(1, 4)),
            int(rng.integers(1, 4)),
            int(rng.integers(1, 16)),
        )
        for node in g.inputs():
            if rng.random() < 0.5:
                inputs[node.name] = draw((runs, 1, pixels))
            else:
                inputs[node.name] = draw((1, scen, 1))
    return inputs


def random_assignment(rng, g: DataflowGraph):
    """A partial assignment of deterministic fake 'approximate' impls."""
    assignment = {}
    for node in g.approximable_ops():
        if rng.random() < 0.5:
            continue
        mask = bit_mask(node.width)
        flavour = rng.integers(3)
        if flavour == 0:
            impl = lambda a, b, m=mask: (a & m) ^ (b & m)
        elif flavour == 1:
            impl = lambda a, b, m=mask: ((a & m) + (b & m)) >> 1
        else:
            impl = lambda a, b, m=mask: (a & m) | (b & m)
        assignment[node.name] = impl
    return assignment or None


def _assert_captures_equal(got, want):
    assert got.keys() == want.keys()
    for name in want:
        for side in (0, 1):
            assert np.array_equal(
                np.broadcast_arrays(*got[name])[side],
                np.broadcast_arrays(*want[name])[side],
            ), name


@pytest.mark.parametrize("regime", SHAPE_REGIMES)
def test_compiled_matches_interpreter(regime):
    rng = np.random.default_rng(SHAPE_REGIMES.index(regime) + 1)
    for _ in range(GRAPHS_PER_REGIME):
        g = random_graph(rng)
        inputs = random_inputs(rng, g, regime)
        assignment = random_assignment(rng, g)
        cap_fast, cap_ref = {}, {}
        want = g.evaluate_interpreted(inputs, assignment, cap_ref)
        got = g.compile().execute(inputs, assignment, cap_fast)
        assert np.array_equal(
            np.broadcast_to(got, np.shape(want)), want
        ), g.name
        _assert_captures_equal(cap_fast, cap_ref)


def test_recompile_after_mutation():
    """The compile cache invalidates on construction changes."""
    rng = np.random.default_rng(7)
    g = DataflowGraph("mut")
    g.add_input("a", 8)
    g.add_input("b", 8)
    g.add_op("s", NodeKind.ADD, 8, "a", "b")
    g.set_output("s")
    x = {"a": np.arange(10), "b": np.arange(10)}
    first = g.evaluate(x)
    g.add_shl("t", "s", 2)
    g.set_output("t")
    second = g.evaluate(x)
    assert np.array_equal(second, first << 2)


def test_masking_of_wide_consts_is_identical():
    """CONST values wider than the node width mask the same both ways."""
    for value in (255, 256, 0xFFFF, 0x12345):
        g = DataflowGraph("constmask")
        g.add_input("x", 8)
        g.add_const("k", value, 8)
        g.add_op("s", NodeKind.ADD, 9, "x", "k")
        g.set_output("s")
        inputs = {"x": np.arange(32, dtype=np.int64)}
        assert np.array_equal(
            g.compile().execute(inputs),
            g.evaluate_interpreted(inputs),
        )
        assert g.evaluate_interpreted(inputs)[0] == (value & 0xFF)
