"""Hardware-model lowering: composed netlists must equal software models.

For every accelerator, compose a netlist from a mixed exact/approximate
assignment and check the synthesised hardware computes exactly what the
software simulation computes, pixel for pixel.
"""

import numpy as np
import pytest

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    gaussian_kernel_weights,
)
from repro.accelerators.sobel import SobelEdgeDetector
from repro.circuits.adders import LowerOrAdder, QuAdAdder, TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier, ExactSubtractor
from repro.circuits.multipliers import BrokenArrayMultiplier
from repro.circuits.subtractors import TruncatedSubtractor
from repro.errors import AcceleratorError
from repro.imaging.datasets import synthetic_image
from repro.library.component import record_from_circuit
from repro.netlist.simulate import simulate
from repro.synthesis.synthesizer import optimize


def exact_records(accelerator):
    out = {}
    for slot in accelerator.op_slots():
        kind, width = slot.signature
        klass = {
            "add": ExactAdder, "sub": ExactSubtractor,
            "mul": ExactMultiplier,
        }[kind]
        out[slot.name] = record_from_circuit(
            klass(width), sample_size=1 << 8
        )
    return out


def check_netlist_matches_sw(accelerator, records, extra=None):
    image = synthetic_image(2, shape=(12, 16))
    netlist = accelerator.to_netlist(records)
    netlist.validate()
    optimize(netlist)
    netlist.validate()
    inputs = accelerator.window_inputs(image)
    merged = accelerator.extra_inputs()
    if extra:
        merged.update(extra)
    for name, value in merged.items():
        inputs[name] = np.full(image.size, value, dtype=np.int64)
    got = simulate(netlist, inputs)["out"].reshape(image.shape)
    impls = {}
    for op, rec in records.items():
        impls[op] = (lambda r: lambda a, b: r.circuit.evaluate(a, b))(rec)
    want = accelerator.compute(image, assignment=impls, extra=extra)
    assert np.array_equal(got, want)


class TestSobelLowering:
    def test_exact(self):
        acc = SobelEdgeDetector()
        check_netlist_matches_sw(acc, exact_records(acc))

    def test_mixed_approximate(self):
        acc = SobelEdgeDetector()
        records = exact_records(acc)
        records["add1"] = record_from_circuit(
            TruncatedAdder(8, 3, "half"), sample_size=1 << 8
        )
        records["add2"] = record_from_circuit(
            QuAdAdder(9, [4, 5], [0, 2]), sample_size=1 << 8
        )
        records["sub"] = record_from_circuit(
            TruncatedSubtractor(10, 4, "zero"), sample_size=1 << 8
        )
        check_netlist_matches_sw(acc, records)

    def test_missing_assignment_rejected(self):
        acc = SobelEdgeDetector()
        records = exact_records(acc)
        del records["sub"]
        with pytest.raises(AcceleratorError):
            acc.to_netlist(records)

    def test_wrong_signature_rejected(self):
        acc = SobelEdgeDetector()
        records = exact_records(acc)
        records["sub"] = record_from_circuit(
            ExactAdder(10), sample_size=1 << 8
        )
        with pytest.raises(AcceleratorError):
            acc.to_netlist(records)


class TestFixedGFLowering:
    def test_exact(self):
        acc = FixedGaussianFilter()
        check_netlist_matches_sw(acc, exact_records(acc))

    def test_mixed_approximate(self):
        acc = FixedGaussianFilter()
        records = exact_records(acc)
        records["add_c1"] = record_from_circuit(
            LowerOrAdder(8, 3), sample_size=1 << 8
        )
        records["mcm12"] = record_from_circuit(
            TruncatedAdder(16, 5, "zero"), sample_size=1 << 8
        )
        records["mcm15"] = record_from_circuit(
            TruncatedSubtractor(16, 4, "zero"), sample_size=1 << 8
        )
        check_netlist_matches_sw(acc, records)


class TestGenericGFLowering:
    def test_exact_with_kernel(self):
        acc = GenericGaussianFilter()
        extra = acc.kernel_extra(gaussian_kernel_weights(0.5))
        check_netlist_matches_sw(acc, exact_records(acc), extra=extra)

    def test_approximate_multipliers(self):
        acc = GenericGaussianFilter()
        records = exact_records(acc)
        for k in range(0, 9, 2):
            records[f"mul{k}"] = record_from_circuit(
                BrokenArrayMultiplier(8, 6, 4), sample_size=1 << 8
            )
        extra = acc.kernel_extra(gaussian_kernel_weights(0.4))
        check_netlist_matches_sw(acc, records, extra=extra)


class TestCrossComponentOptimisation:
    def test_truncated_sub_shrinks_upstream(self):
        """The paper's §4.1.2 effect: a high-error final operation lets
        synthesis strip logic from upstream components."""
        acc = SobelEdgeDetector()
        exact = exact_records(acc)
        nl_exact = acc.to_netlist(exact)
        optimize(nl_exact)

        truncated = dict(exact)
        truncated["sub"] = record_from_circuit(
            TruncatedSubtractor(10, 8, "zero"), sample_size=1 << 8
        )
        nl_trunc = acc.to_netlist(truncated)
        optimize(nl_trunc)

        # area saved exceeds the isolated sub-component area delta
        isolated_delta = (
            exact["sub"].hardware.area
            - truncated["sub"].hardware.area
        )
        composed_delta = nl_exact.area() - nl_trunc.area()
        assert composed_delta > isolated_delta * 1.2
