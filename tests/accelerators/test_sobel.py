import numpy as np
import pytest
from scipy import ndimage

from repro.accelerators.sobel import SobelEdgeDetector
from repro.imaging.datasets import synthetic_image


@pytest.fixture(scope="module")
def sobel_acc():
    return SobelEdgeDetector()


@pytest.fixture(scope="module")
def image():
    return synthetic_image(0, shape=(48, 64))


class TestStructure:
    def test_table1_inventory(self, sobel_acc):
        assert sobel_acc.op_inventory() == {
            ("add", 8): 2,
            ("add", 9): 2,
            ("sub", 10): 1,
        }

    def test_five_slots(self, sobel_acc):
        assert len(sobel_acc.op_slots()) == 5


class TestGolden:
    def test_matches_scipy_correlate(self, sobel_acc, image):
        out = sobel_acc.golden(image)
        kernel = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]])
        # our graph computes right-column minus left-column
        ref = ndimage.correlate(
            image.astype(np.int64), -kernel, mode="nearest"
        )
        ref = np.clip(np.abs(ref), 0, 255)
        assert np.array_equal(out, ref)

    def test_flat_image_zero_output(self, sobel_acc):
        flat = np.full((16, 16), 77, dtype=np.uint8)
        assert np.all(sobel_acc.golden(flat) == 0)

    def test_vertical_edge_detected(self, sobel_acc):
        img = np.zeros((16, 16), dtype=np.uint8)
        img[:, 8:] = 255
        out = sobel_acc.golden(img)
        assert out[:, 7:9].max() == 255
        assert np.all(out[:, :6] == 0)

    def test_horizontal_edge_ignored(self, sobel_acc):
        img = np.zeros((16, 16), dtype=np.uint8)
        img[8:, :] = 255
        out = sobel_acc.golden(img)
        # a vertical-edge detector sees nothing on a horizontal edge
        assert np.all(out[:, 2:-2] == 0)

    def test_output_range(self, sobel_acc, image):
        out = sobel_acc.golden(image)
        assert out.min() >= 0 and out.max() <= 255


class TestApproximateSimulation:
    def test_exact_assignment_matches_golden(self, sobel_acc, image):
        impls = {
            "add1": lambda a, b: a + b,
            "add2": lambda a, b: a + b,
        }
        out = sobel_acc.compute(image, assignment=impls)
        assert np.array_equal(out, sobel_acc.golden(image))

    def test_lossy_assignment_changes_output(self, sobel_acc, image):
        impls = {"sub": lambda a, b: ((a >> 6) - (b >> 6)) << 6}
        out = sobel_acc.compute(image, assignment=impls)
        assert not np.array_equal(out, sobel_acc.golden(image))

    def test_non_2d_rejected(self, sobel_acc):
        with pytest.raises(Exception):
            sobel_acc.golden(np.zeros(16, dtype=np.uint8))
