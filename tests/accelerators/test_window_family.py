"""The parameterized N x N window-convolution accelerator family."""

import numpy as np
import pytest
from scipy import ndimage

from repro.accelerators.window import (
    WindowAccelerator,
    WindowSpec,
    gaussian_window,
    quantize_kernel,
)
from repro.circuits.base import ExactAdder, ExactMultiplier, ExactSubtractor
from repro.errors import AcceleratorError
from repro.imaging.datasets import synthetic_image
from repro.library.component import record_from_circuit
from repro.netlist.simulate import simulate
from repro.synthesis.synthesizer import optimize


def reference(image, kernel, shift=0, absolute=False, clip_high=255):
    """Direct numpy/scipy model of a window convolution accelerator."""
    acc = ndimage.correlate(
        image.astype(np.int64), np.asarray(kernel, dtype=np.int64),
        mode="nearest",
    )
    if absolute:
        acc = np.abs(acc)
    return np.clip(acc >> shift, 0, clip_high)


def exact_records(accelerator):
    out = {}
    cache = {}
    for slot in accelerator.op_slots():
        kind, width = slot.signature
        if (kind, width) not in cache:
            klass = {
                "add": ExactAdder, "sub": ExactSubtractor,
                "mul": ExactMultiplier,
            }[kind]
            cache[(kind, width)] = record_from_circuit(
                klass(width), sample_size=1 << 7
            )
        out[slot.name] = cache[(kind, width)]
    return out


class TestWindowSpecValidation:
    def test_even_window_rejected(self):
        with pytest.raises(AcceleratorError, match="odd"):
            WindowSpec("bad", size=4, mode="general", weight_sum=16)

    def test_unknown_mode_rejected(self):
        with pytest.raises(AcceleratorError, match="mode"):
            WindowSpec("bad", size=3, mode="mcm")

    def test_fixed_needs_all_weights(self):
        with pytest.raises(AcceleratorError, match="9 weights"):
            WindowSpec("bad", size=3, mode="fixed", weights=(1, 2, 3))

    def test_fixed_rejects_zero_kernel(self):
        with pytest.raises(AcceleratorError, match="all-zero"):
            WindowSpec("bad", size=3, mode="fixed", weights=(0,) * 9)

    def test_general_needs_weight_sum(self):
        with pytest.raises(AcceleratorError, match="weight_sum"):
            WindowSpec("bad", size=3, mode="general")

    def test_general_rejects_fixed_weights(self):
        with pytest.raises(AcceleratorError, match="runtime"):
            WindowSpec(
                "bad", size=3, mode="general", weight_sum=16,
                weights=(1,) * 9,
            )

    def test_negative_shift_rejected(self):
        with pytest.raises(AcceleratorError, match="shift"):
            WindowSpec(
                "bad", size=3, mode="general", weight_sum=16, shift=-1
            )

    def test_absolute_needs_signed_kernel(self):
        spec = WindowSpec(
            "bad", size=3, mode="fixed", weights=(1,) * 9,
            absolute=True,
        )
        with pytest.raises(AcceleratorError, match="signed"):
            WindowAccelerator(spec)


class TestFixedMode:
    def test_signed_kernel_matches_reference(self):
        spec = WindowSpec(
            "sharpen", size=3, mode="fixed",
            weights=(0, -1, 0, -1, 5, -1, 0, -1, 0),
        )
        acc = WindowAccelerator(spec)
        image = synthetic_image(0, shape=(20, 24))
        got = acc.golden(image)
        want = reference(image, spec.weights_2d())
        assert np.array_equal(got, want)

    def test_power_of_two_weights_are_multiplier_less(self):
        spec = WindowSpec(
            "edges", size=3, mode="fixed",
            weights=(-1, -2, -1, 0, 0, 0, 1, 2, 1),
            absolute=True,
        )
        acc = WindowAccelerator(spec)
        kinds = {sig for sig, _ in acc.op_inventory().items()}
        assert not any(kind == "mul" for kind, _ in kinds)
        image = synthetic_image(1, shape=(16, 16))
        want = reference(image, spec.weights_2d(), absolute=True)
        assert np.array_equal(acc.golden(image), want)

    def test_all_negative_kernel(self):
        spec = WindowSpec(
            "neg", size=3, mode="fixed",
            weights=(-1,) * 9, absolute=True,
        )
        acc = WindowAccelerator(spec)
        image = synthetic_image(2, shape=(12, 12))
        want = reference(image, spec.weights_2d(), absolute=True)
        assert np.array_equal(acc.golden(image), want)

    def test_5x5_window_shape_and_padding(self):
        spec = WindowSpec(
            "big", size=5, mode="fixed",
            weights=tuple([1] * 25), shift=4,
        )
        acc = WindowAccelerator(spec)
        assert acc.window == 5
        image = synthetic_image(3, shape=(10, 14))
        inputs = acc.window_inputs(image)
        assert len(inputs) == 25
        # centre tap of the window is the image itself
        assert np.array_equal(
            inputs["x12"].reshape(image.shape), image
        )
        want = reference(image, spec.weights_2d(), shift=4)
        assert np.array_equal(acc.golden(image), want)

    def test_no_runtime_coefficients(self):
        spec = WindowSpec(
            "fixed", size=3, mode="fixed", weights=(1,) * 9, shift=3
        )
        acc = WindowAccelerator(spec)
        assert acc.coefficient_names() == []
        assert acc.extra_inputs() == {}
        with pytest.raises(AcceleratorError, match="no runtime"):
            acc.kernel_extra([1] * 9)


class TestGeneralMode:
    SPEC = WindowSpec(
        "gen5", size=5, mode="general", shift=8, weight_sum=256
    )

    def test_matches_reference_per_scenario(self):
        acc = WindowAccelerator(self.SPEC)
        image = synthetic_image(4, shape=(18, 22))
        for sigma in (0.9, 1.6):
            weights = quantize_kernel(gaussian_window(5, sigma), 256)
            extra = acc.kernel_extra(weights)
            got = acc.golden(image, extra=extra)
            want = reference(
                image, np.asarray(weights).reshape(5, 5), shift=8
            )
            assert np.array_equal(got, want)

    def test_signatures_match_generic_gf_family(self):
        acc = WindowAccelerator(self.SPEC)
        inventory = acc.op_inventory()
        assert inventory == {("mul", 8): 25, ("add", 16): 24}

    def test_kernel_extra_validates_length_and_bounds(self):
        acc = WindowAccelerator(self.SPEC)
        with pytest.raises(AcceleratorError, match="25 coefficients"):
            acc.kernel_extra([1] * 9)
        with pytest.raises(AcceleratorError, match="outside"):
            acc.kernel_extra([-1] + [1] * 24)
        with pytest.raises(AcceleratorError, match="sum"):
            acc.kernel_extra([200] * 25)

    def test_default_coefficients_fill_budget(self):
        acc = WindowAccelerator(self.SPEC)
        defaults = acc.default_coefficients()
        assert len(defaults) == 25
        assert sum(defaults) <= 256
        # the defaults must be a valid extra assignment
        extras = acc.extra_inputs()
        assert set(extras) == {f"w{k}" for k in range(25)}


class TestSeparableMode:
    SPEC = WindowSpec(
        "sep5", size=5, mode="separable", shift=8,
        coeff_bits=5, weight_sum=16,
    )

    def test_matches_outer_product_reference(self):
        acc = WindowAccelerator(self.SPEC)
        image = synthetic_image(5, shape=(16, 20))
        h = (1, 4, 6, 4, 1)
        v = (2, 3, 6, 3, 2)
        extra = acc.kernel_extra(list(h) + list(v))
        got = acc.golden(image, extra=extra)
        kernel = np.outer(np.asarray(v), np.asarray(h))
        want = reference(image, kernel, shift=8)
        assert np.array_equal(got, want)

    def test_coefficient_names_and_per_axis_sum_check(self):
        acc = WindowAccelerator(self.SPEC)
        names = acc.coefficient_names()
        assert names == [f"h{c}" for c in range(5)] + [
            f"v{r}" for r in range(5)
        ]
        with pytest.raises(AcceleratorError, match="sum"):
            acc.kernel_extra([16, 16, 0, 0, 0] + [1, 1, 1, 1, 1])

    def test_wide_second_stage_multipliers(self):
        acc = WindowAccelerator(self.SPEC)
        inventory = acc.op_inventory()
        assert inventory[("mul", 8)] == 25  # horizontal taps
        assert inventory[("mul", 12)] == 5  # vertical combine


class TestHardwareLowering:
    @pytest.mark.parametrize(
        "spec, extra",
        [
            (
                WindowSpec(
                    "hw_sharpen", size=3, mode="fixed",
                    weights=(0, -1, 0, -1, 5, -1, 0, -1, 0),
                ),
                None,
            ),
            (
                WindowSpec(
                    "hw_unsharp", size=3, mode="fixed", shift=2,
                    weights=(-1, -1, -1, -1, 12, -1, -1, -1, -1),
                ),
                None,
            ),
            (
                WindowSpec(
                    "hw_blur", size=3, mode="general", shift=6,
                    coeff_bits=6, weight_sum=64,
                ),
                "default",
            ),
        ],
    )
    def test_netlist_matches_software(self, spec, extra):
        acc = WindowAccelerator(spec)
        records = exact_records(acc)
        image = synthetic_image(6, shape=(8, 10))
        netlist = acc.to_netlist(records)
        netlist.validate()
        optimize(netlist)
        inputs = acc.window_inputs(image)
        for name, value in acc.extra_inputs().items():
            inputs[name] = np.full(image.size, value, dtype=np.int64)
        got = simulate(netlist, inputs)["out"].reshape(image.shape)
        want = acc.golden(image)
        assert np.array_equal(got, want)


class TestQuantizeKernel:
    def test_sums_exactly(self):
        weights = quantize_kernel(gaussian_window(5, 1.2), 256)
        assert sum(weights) == 256
        assert all(w >= 0 for w in weights)

    def test_flat_kernel_centre_tiebreak(self):
        weights = quantize_kernel([1.0] * 9, 64)
        assert sum(weights) == 64
        # drift lands on the middle tap, not the first
        assert weights[4] == max(weights)

    def test_rejects_negative_and_zero(self):
        with pytest.raises(ValueError):
            quantize_kernel([1.0, -1.0], 16)
        with pytest.raises(ValueError):
            quantize_kernel([0.0, 0.0], 16)

    def test_rejects_unrepresentable_total(self):
        # a near-delta kernel cannot sum to 1024 with 8-bit taps
        with pytest.raises(ValueError):
            quantize_kernel([1.0, 0.001, 0.001], 1024)

    def test_gaussian_window_validation(self):
        with pytest.raises(ValueError):
            gaussian_window(4, 1.0)
        with pytest.raises(ValueError):
            gaussian_window(5, 0.0)
