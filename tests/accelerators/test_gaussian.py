import numpy as np
import pytest
from scipy import ndimage

from repro.accelerators.gaussian_fixed import KERNEL, FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    gaussian_kernel_weights,
    kernel_sweep,
)
from repro.imaging.datasets import synthetic_image


@pytest.fixture(scope="module")
def image():
    return synthetic_image(1, shape=(48, 64))


class TestFixedGF:
    def test_table1_inventory(self):
        acc = FixedGaussianFilter()
        assert acc.op_inventory() == {
            ("add", 8): 4,
            ("add", 9): 2,
            ("add", 16): 4,
            ("sub", 16): 1,
        }

    def test_kernel_sums_to_128(self):
        assert sum(sum(row) for row in KERNEL) == 128

    def test_matches_integer_convolution(self, image):
        acc = FixedGaussianFilter()
        out = acc.golden(image)
        k = np.asarray(KERNEL, dtype=np.int64)
        ref = ndimage.correlate(
            image.astype(np.int64), k, mode="nearest"
        ) >> 7
        assert np.array_equal(out, np.clip(ref, 0, 255))

    def test_smooths(self, image):
        out = FixedGaussianFilter().golden(image)
        assert out.astype(float).std() <= image.astype(float).std()

    def test_constant_image_preserved(self):
        flat = np.full((16, 16), 100, dtype=np.uint8)
        out = FixedGaussianFilter().golden(flat)
        assert np.all(np.abs(out.astype(int) - 100) <= 1)


class TestKernelWeights:
    def test_sum_is_256(self):
        for sigma in (0.3, 0.5, 0.8, 2.0):
            assert sum(gaussian_kernel_weights(sigma)) == 256

    def test_symmetry(self):
        w = gaussian_kernel_weights(0.6)
        assert w[0] == w[2] == w[6] == w[8]
        assert w[1] == w[3] == w[5] == w[7]

    def test_small_sigma_concentrates_centre(self):
        w03 = gaussian_kernel_weights(0.3)
        w08 = gaussian_kernel_weights(0.8)
        assert w03[4] > w08[4]

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_weights(0.0)

    def test_sweep(self):
        kernels = kernel_sweep(5, 0.3, 0.8)
        assert len(kernels) == 5
        assert kernels[0][4] > kernels[-1][4]  # sigma grows, centre falls

    def test_sweep_single(self):
        assert len(kernel_sweep(1)) == 1

    def test_sweep_invalid(self):
        with pytest.raises(ValueError):
            kernel_sweep(0)


class TestGenericGF:
    def test_table1_inventory(self):
        acc = GenericGaussianFilter()
        assert acc.op_inventory() == {("mul", 8): 9, ("add", 16): 8}

    def test_matches_integer_convolution(self, image):
        acc = GenericGaussianFilter()
        weights = gaussian_kernel_weights(0.5)
        out = acc.golden(image, extra=acc.kernel_extra(weights))
        k = np.asarray(weights, dtype=np.int64).reshape(3, 3)
        ref = ndimage.correlate(
            image.astype(np.int64), k, mode="nearest"
        ) >> 8
        assert np.array_equal(out, np.clip(ref, 0, 255))

    def test_default_extra_inputs(self, image):
        acc = GenericGaussianFilter()
        out_default = acc.golden(image)
        out_explicit = acc.golden(
            image,
            extra=acc.kernel_extra(
                gaussian_kernel_weights(acc.DEFAULT_SIGMA)
            ),
        )
        assert np.array_equal(out_default, out_explicit)

    def test_kernel_extra_validation(self):
        with pytest.raises(ValueError):
            GenericGaussianFilter.kernel_extra((1, 2, 3))

    def test_different_kernels_differ(self, image):
        acc = GenericGaussianFilter()
        a = acc.golden(image, extra=acc.kernel_extra(
            gaussian_kernel_weights(0.3)))
        b = acc.golden(image, extra=acc.kernel_extra(
            gaussian_kernel_weights(0.8)))
        assert not np.array_equal(a, b)
