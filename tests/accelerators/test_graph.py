import numpy as np
import pytest

from repro.accelerators.graph import DataflowGraph, NodeKind
from repro.errors import AcceleratorError


def simple_graph():
    g = DataflowGraph("g")
    g.add_input("a", 8)
    g.add_input("b", 8)
    g.add_op("sum", NodeKind.ADD, 8, "a", "b")
    g.add_shr("half", "sum", 1)
    g.set_output("half")
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        with pytest.raises(AcceleratorError):
            g.add_input("a", 8)

    def test_unknown_operand_rejected(self):
        g = DataflowGraph("g")
        with pytest.raises(AcceleratorError):
            g.add_op("x", NodeKind.ADD, 8, "missing", "missing")

    def test_non_arith_kind_rejected(self):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        with pytest.raises(AcceleratorError):
            g.add_op("x", NodeKind.SHL, 8, "a", "a")

    def test_output_must_exist(self):
        g = DataflowGraph("g")
        with pytest.raises(AcceleratorError):
            g.set_output("nope")

    def test_output_unset(self):
        g = DataflowGraph("g")
        with pytest.raises(AcceleratorError):
            _ = g.output

    def test_approximable_ops_in_order(self):
        g = simple_graph()
        assert [n.name for n in g.approximable_ops()] == ["sum"]


class TestEvaluation:
    def test_exact_semantics(self):
        g = simple_graph()
        out = g.evaluate({"a": np.array([10, 20]), "b": np.array([4, 6])})
        assert np.array_equal(out, [7, 13])

    def test_missing_input_rejected(self):
        with pytest.raises(AcceleratorError):
            simple_graph().evaluate({"a": np.array([1])})

    def test_assignment_overrides(self):
        g = simple_graph()
        out = g.evaluate(
            {"a": np.array([10]), "b": np.array([4])},
            assignment={"sum": lambda a, b: a},
        )
        assert out[0] == 5

    def test_capture_collects_operands(self):
        g = simple_graph()
        capture = {}
        g.evaluate(
            {"a": np.array([300]), "b": np.array([4])}, capture=capture
        )
        # inputs masked to 8 bits: 300 & 255 = 44
        a, b = capture["sum"]
        assert a[0] == 44 and b[0] == 4

    def test_all_wiring_nodes(self):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        g.add_const("c", 3, 8)
        g.add_op("s", NodeKind.MUL, 8, "a", "c")
        g.add_shl("up", "s", 2)
        g.add_shr("down", "up", 1)
        g.add_op("d", NodeKind.SUB, 10, "down", "c")
        g.add_abs("m", "d")
        g.add_clip("out", "m", 0, 255)
        g.set_output("out")
        out = g.evaluate({"a": np.array([7])})
        expected = np.clip(abs(((7 * 3) << 2 >> 1) - 3), 0, 255)
        assert out[0] == expected

    def test_sub_yields_negative_intermediates(self):
        g = DataflowGraph("g")
        g.add_input("a", 8)
        g.add_input("b", 8)
        g.add_op("d", NodeKind.SUB, 8, "a", "b")
        g.set_output("d")
        out = g.evaluate({"a": np.array([1]), "b": np.array([9])})
        assert out[0] == -8
