import numpy as np
import pytest

from repro.accelerators.gaussian_generic import GenericGaussianFilter, kernel_sweep
from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.imaging.datasets import benchmark_images


class TestProfileSobel:
    def test_all_slots_profiled(self, sobel, small_images, sobel_profiles):
        assert set(sobel_profiles) == {
            s.name for s in sobel.op_slots()
        }

    def test_dense_pmfs_for_narrow_ops(self, sobel_profiles):
        for name in ("add1", "add2", "sub"):
            pmf = sobel_profiles[name].pmf
            assert pmf is not None
            assert pmf.sum() == pytest.approx(1.0)
            assert pmf.min() >= 0

    def test_pmf_2d_shape(self, sobel_profiles):
        p = sobel_profiles["add1"].pmf_2d()
        assert p.shape == (256, 256)
        p = sobel_profiles["sub"].pmf_2d()
        assert p.shape == (1024, 1024)

    def test_total_count_matches_pixels(self, sobel_profiles, small_images):
        pixels = sum(img.size for img in small_images)
        assert sobel_profiles["add1"].total_count == pixels

    def test_samples_bounded(self, sobel, small_images):
        profiles = profile_accelerator(
            sobel, small_images, max_samples=500, rng=0
        )
        for p in profiles.values():
            assert p.sample_a.size <= 500
            assert p.sample_a.shape == p.sample_b.shape

    def test_diagonal_concentration(self, sobel_profiles):
        """Neighbouring pixels correlate: PMF mass hugs the diagonal
        (the paper's Fig. 3 observation)."""
        pmf = sobel_profiles["add1"].pmf_2d()
        a, b = np.nonzero(pmf)
        w = pmf[a, b]
        near = w[np.abs(a - b) <= 32].sum()
        assert near > 0.6

    def test_deterministic(self, sobel, small_images):
        p1 = profile_accelerator(sobel, small_images, rng=3)
        p2 = profile_accelerator(sobel, small_images, rng=3)
        assert np.array_equal(p1["add1"].sample_a, p2["add1"].sample_a)

    def test_empty_images_rejected(self, sobel):
        with pytest.raises(ValueError):
            profile_accelerator(sobel, [])


class TestStackedProfiling:
    def _reference_profiles(self, accelerator, images, scenarios,
                            max_samples, seed):
        """The seed semantics: per-run compute + capture + subsample."""
        from repro.utils.rng import ensure_rng

        gen = ensure_rng(seed)
        runs = scenarios if scenarios else [None]
        slots = accelerator.op_slots()
        samples = {s.name: [] for s in slots}
        counts = {s.name: 0 for s in slots}
        per_run_quota = max(
            1, max_samples // (len(images) * len(runs))
        )
        for image in images:
            for extra in runs:
                capture = {}
                accelerator.compute(
                    image, assignment=None, extra=extra,
                    capture=capture,
                )
                for name, (a, b) in capture.items():
                    a = a.reshape(-1)
                    b = b.reshape(-1)
                    counts[name] += a.size
                    take = min(per_run_quota, a.size)
                    if take < a.size:
                        idx = gen.choice(
                            a.size, size=take, replace=False
                        )
                        samples[name].append((a[idx], b[idx]))
                    else:
                        samples[name].append((a, b))
        return counts, {
            name: (
                np.concatenate([a for a, _ in pairs]),
                np.concatenate([b for _, b in pairs]),
            )
            for name, pairs in samples.items()
        }

    def test_stacked_path_matches_per_run_semantics(self, sobel,
                                                    small_images):
        profiles = profile_accelerator(
            sobel, small_images, max_samples=1000, rng=21
        )
        counts, samples = self._reference_profiles(
            sobel, small_images, None, 1000, 21
        )
        for name, profile in profiles.items():
            assert profile.total_count == counts[name]
            ref_a, ref_b = samples[name]
            assert np.array_equal(profile.sample_a, ref_a)
            assert np.array_equal(profile.sample_b, ref_b)

    def test_stacked_path_with_scenarios(self, small_images):
        acc = GenericGaussianFilter()
        scenarios = [acc.kernel_extra(w) for w in kernel_sweep(2)]
        profiles = profile_accelerator(
            acc, small_images, scenarios=scenarios, max_samples=800,
            rng=5,
        )
        counts, samples = self._reference_profiles(
            acc, small_images, scenarios, 800, 5
        )
        for name, profile in profiles.items():
            assert profile.total_count == counts[name]
            assert np.array_equal(profile.sample_a, samples[name][0])

    def test_mixed_shapes_fall_back(self, sobel):
        images = [
            benchmark_images(1, shape=(24, 32))[0],
            benchmark_images(1, shape=(32, 24))[0],
        ]
        profiles = profile_accelerator(sobel, images, rng=0)
        pixels = sum(img.size for img in images)
        assert profiles["add1"].total_count == pixels

    def test_chunked_batches_match_unchunked(self, sobel, small_images,
                                             monkeypatch):
        import repro.accelerators.profiler as profiler_module

        baseline = profile_accelerator(
            sobel, small_images, max_samples=900, rng=13
        )
        # Force many tiny chunks (and image groups of one).
        monkeypatch.setattr(
            profiler_module, "PROFILE_CHUNK_ELEMS", 64
        )
        chunked = profile_accelerator(
            sobel, small_images, max_samples=900, rng=13
        )
        for name, profile in baseline.items():
            other = chunked[name]
            assert other.total_count == profile.total_count
            assert np.array_equal(other.sample_a, profile.sample_a)
            assert np.array_equal(other.sample_b, profile.sample_b)
            if profile.pmf is not None:
                assert np.array_equal(other.pmf, profile.pmf)

    def test_const_operand_op_profiles(self, small_images):
        """Ops with a CONST operand capture a scalar; the stacked path
        must broadcast it per run instead of indexing into it."""
        from repro.accelerators.base import ImageAccelerator
        from repro.accelerators.graph import DataflowGraph, NodeKind

        class ConstBias(ImageAccelerator):
            name = "const_bias"

            def _build_graph(self):
                g = DataflowGraph(self.name)
                for k in range(9):
                    g.add_input(f"x{k}", 8)
                g.add_const("bias", 7, 8)
                g.add_op("add_b", NodeKind.ADD, 8, "x4", "bias")
                g.add_clip("out", "add_b", 0, 255)
                g.set_output("out")
                return g

        acc = ConstBias()
        profiles = profile_accelerator(acc, small_images, rng=0)
        profile = profiles["add_b"]
        # the scalar operand broadcasts against the pixel operand:
        # aligned (a, b) pairs, one per pixel per run
        pixels = sum(img.size for img in small_images)
        assert profile.total_count == pixels
        assert profile.sample_a.shape == profile.sample_b.shape
        assert np.all(profile.sample_b == 7)
        assert profile.pmf is not None
        assert profile.pmf.sum() == pytest.approx(1.0)


class TestProfileGenericGF:
    def test_wide_ops_use_samples(self, small_images):
        acc = GenericGaussianFilter()
        scenarios = [
            acc.kernel_extra(w) for w in kernel_sweep(2)
        ]
        profiles = profile_accelerator(
            acc, small_images[:1], scenarios=scenarios, rng=0
        )
        wide = profiles["sum1"]
        assert wide.pmf is None
        assert wide.sample_a.size > 0
        with pytest.raises(ValueError):
            wide.pmf_2d()

    def test_scenarios_multiply_counts(self, small_images):
        acc = GenericGaussianFilter()
        scenarios = [acc.kernel_extra(w) for w in kernel_sweep(3)]
        profiles = profile_accelerator(
            acc, small_images[:1], scenarios=scenarios, rng=0
        )
        assert profiles["mul0"].total_count == 3 * small_images[0].size
