import numpy as np
import pytest

from repro.accelerators.gaussian_generic import GenericGaussianFilter, kernel_sweep
from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.imaging.datasets import benchmark_images


class TestProfileSobel:
    def test_all_slots_profiled(self, sobel, small_images, sobel_profiles):
        assert set(sobel_profiles) == {
            s.name for s in sobel.op_slots()
        }

    def test_dense_pmfs_for_narrow_ops(self, sobel_profiles):
        for name in ("add1", "add2", "sub"):
            pmf = sobel_profiles[name].pmf
            assert pmf is not None
            assert pmf.sum() == pytest.approx(1.0)
            assert pmf.min() >= 0

    def test_pmf_2d_shape(self, sobel_profiles):
        p = sobel_profiles["add1"].pmf_2d()
        assert p.shape == (256, 256)
        p = sobel_profiles["sub"].pmf_2d()
        assert p.shape == (1024, 1024)

    def test_total_count_matches_pixels(self, sobel_profiles, small_images):
        pixels = sum(img.size for img in small_images)
        assert sobel_profiles["add1"].total_count == pixels

    def test_samples_bounded(self, sobel, small_images):
        profiles = profile_accelerator(
            sobel, small_images, max_samples=500, rng=0
        )
        for p in profiles.values():
            assert p.sample_a.size <= 500
            assert p.sample_a.shape == p.sample_b.shape

    def test_diagonal_concentration(self, sobel_profiles):
        """Neighbouring pixels correlate: PMF mass hugs the diagonal
        (the paper's Fig. 3 observation)."""
        pmf = sobel_profiles["add1"].pmf_2d()
        a, b = np.nonzero(pmf)
        w = pmf[a, b]
        near = w[np.abs(a - b) <= 32].sum()
        assert near > 0.6

    def test_deterministic(self, sobel, small_images):
        p1 = profile_accelerator(sobel, small_images, rng=3)
        p2 = profile_accelerator(sobel, small_images, rng=3)
        assert np.array_equal(p1["add1"].sample_a, p2["add1"].sample_a)

    def test_empty_images_rejected(self, sobel):
        with pytest.raises(ValueError):
            profile_accelerator(sobel, [])


class TestProfileGenericGF:
    def test_wide_ops_use_samples(self, small_images):
        acc = GenericGaussianFilter()
        scenarios = [
            acc.kernel_extra(w) for w in kernel_sweep(2)
        ]
        profiles = profile_accelerator(
            acc, small_images[:1], scenarios=scenarios, rng=0
        )
        wide = profiles["sum1"]
        assert wide.pmf is None
        assert wide.sample_a.size > 0
        with pytest.raises(ValueError):
            wide.pmf_2d()

    def test_scenarios_multiply_counts(self, small_images):
        acc = GenericGaussianFilter()
        scenarios = [acc.kernel_extra(w) for w in kernel_sweep(3)]
        profiles = profile_accelerator(
            acc, small_images[:1], scenarios=scenarios, rng=0
        )
        assert profiles["mul0"].total_count == 3 * small_images[0].size
