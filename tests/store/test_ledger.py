"""RunLedger: manifests, enumeration, gc roots."""

import json

import pytest

from repro.errors import StoreError
from repro.store import MANIFEST_VERSION, RunLedger


def _record(ledger, run_id, cache="miss", kind="workload"):
    return ledger.record(
        run_id,
        kind=kind,
        label="sobel",
        params={"command": "workloads", "name": "sobel"},
        config_hash="c" * 64,
        stages=[
            {
                "name": "preprocessing",
                "seconds": 1.25,
                "cache": cache,
                "artifacts": [{"kind": "space", "key": "a" * 64}],
            },
            {
                "name": "final_analysis",
                "seconds": 0.5,
                "cache": cache,
                "artifacts": [
                    {"kind": "evaluations", "key": "b" * 64}
                ],
            },
        ],
        seed=0,
    )


class TestLedger:
    def test_record_and_get(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.new_run_id()
        manifest = _record(ledger, run_id)
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["total_seconds"] == pytest.approx(1.75)
        loaded = ledger.get(run_id)
        assert loaded == manifest
        # manifest is valid, sorted JSON on disk
        raw = (tmp_path / "runs" / f"{run_id}.json").read_text()
        assert json.loads(raw)["run_id"] == run_id

    def test_runs_sorted_and_skip_garbage(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = [ledger.new_run_id() for _ in range(3)]
        for i, run_id in enumerate(ids):
            _record(ledger, f"{run_id}-{i}")
        (tmp_path / "runs" / "junk.json").write_text("{broken")
        manifests = ledger.runs()
        assert len(manifests) == 3
        stamps = [m["created_ts"] for m in manifests]
        assert stamps == sorted(stamps)
        assert ledger.latest()["run_id"] == manifests[-1]["run_id"]

    def test_get_unknown_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no run"):
            RunLedger(tmp_path).get("nope")

    def test_delete(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.new_run_id()
        _record(ledger, run_id)
        ledger.delete(run_id)
        assert ledger.runs() == []
        with pytest.raises(StoreError):
            ledger.delete(run_id)

    def test_new_run_ids_unique(self, tmp_path):
        ids = {RunLedger.new_run_id() for _ in range(50)}
        assert len(ids) == 50

    def test_referenced_artifacts_union(self, tmp_path):
        ledger = RunLedger(tmp_path)
        _record(ledger, ledger.new_run_id())
        _record(ledger, ledger.new_run_id(), cache="hit")
        refs = ledger.referenced_artifacts()
        assert refs == {
            ("space", "a" * 64),
            ("evaluations", "b" * 64),
        }
