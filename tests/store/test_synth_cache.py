"""Store-backed synthesis cache: engine plumbing and cross-process reuse."""

from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.engine import EvaluationEngine
from repro.store import (
    ArtifactStore,
    MemorySynthCache,
    StoreSynthCache,
    accelerator_fingerprint,
    content_hash,
    synth_cache_for,
)


def _engine(small_images, cache=None):
    return EvaluationEngine(
        SobelEdgeDetector(), small_images[:1], synth_cache=cache
    )


def _cache(tmp_path):
    namespace = content_hash(
        accelerator_fingerprint(SobelEdgeDetector())
    )
    return StoreSynthCache(ArtifactStore(tmp_path), namespace)


class TestEngineSynthCache:
    def test_second_engine_skips_synthesis(self, tmp_path, sobel_space,
                                           small_images):
        config = sobel_space.random_configuration(rng=0)
        records = sobel_space.records(config)

        first = _engine(small_images, _cache(tmp_path))
        report = first.hardware(records)
        assert first.synth_misses == 1
        assert first.synth_store_hits == 0

        # a *fresh* engine (fresh memo) resolves from the store
        second = _engine(small_images, _cache(tmp_path))
        assert second.hardware(records) == report
        assert second.synth_misses == 0
        assert second.synth_store_hits == 1
        # and its own memo answers from then on
        second.hardware(records)
        assert second.synth_hits == 1

    def test_no_cache_unchanged(self, sobel_space, small_images):
        config = sobel_space.random_configuration(rng=0)
        engine = _engine(small_images)
        engine.hardware(sobel_space.records(config))
        assert engine.synth_misses == 1
        assert engine.synth_store_hits == 0

    def test_memory_cache_shares_between_engines(self, sobel_space,
                                                 small_images):
        shared = MemorySynthCache()
        config = sobel_space.random_configuration(rng=0)
        records = sobel_space.records(config)
        _engine(small_images, shared).hardware(records)
        assert len(shared) == 1
        other = _engine(small_images, shared)
        other.hardware(records)
        assert other.synth_misses == 0

    def test_namespace_scopes_keys(self, tmp_path, sobel_space,
                                   small_images):
        config = sobel_space.random_configuration(rng=0)
        records = sobel_space.records(config)
        _engine(small_images, _cache(tmp_path)).hardware(records)
        foreign = StoreSynthCache(ArtifactStore(tmp_path), "other-acc")
        assert foreign.get(
            EvaluationEngine._memo_key(records)
        ) is None

    def test_synth_cache_for_none_store(self):
        assert synth_cache_for(None, "abc") is None


class TestParallelEvaluateWithStore:
    def test_evaluate_many_workers_with_store_cache(
        self, tmp_path, sobel_space, small_images
    ):
        """Fork workers write reports into the store without tearing."""
        engine = _engine(small_images, _cache(tmp_path))
        configs = sobel_space.random_configurations(6, rng=1)
        parallel = engine.evaluate_many(
            sobel_space, configs, workers=2
        )
        serial_engine = _engine(small_images, _cache(tmp_path))
        serial = serial_engine.evaluate_many(sobel_space, configs)
        assert parallel == serial
        # the second engine answered synthesis from the store
        assert serial_engine.synth_misses == 0
