"""Resumable pipelines: warm-store runs skip every heavy stage.

The PR's acceptance bar lives here: with a warm store, a repeated
``AutoAx.run()`` (same seed/params) performs **zero new synthesis
calls** and **zero model refits**, asserted via both the run ledger and
the engine/fit counters.
"""

import numpy as np
import pytest

from repro.core.modeling import fit_count
from repro.core.pipeline import AutoAx, AutoAxConfig, PIPELINE_STAGES
from repro.store import ArtifactStore, RunLedger


@pytest.fixture()
def fast_config():
    return AutoAxConfig(
        n_train=16, n_test=8, engines=("K-Neighbors",),
        max_evaluations=300, seed=3,
    )


def _pipeline(sobel, tiny_library, small_images, config, store):
    return AutoAx(
        sobel, tiny_library, small_images[:1], config=config,
        store=store, run_kind="test", run_label="sobel-test",
        run_params={"command": "test"},
    )


class TestWarmRun:
    @pytest.fixture()
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_cold_then_warm(self, sobel, tiny_library, small_images,
                            fast_config, store):
        cold = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        assert set(cold.stage_cache) == set(PIPELINE_STAGES)
        assert set(cold.stage_cache.values()) == {"miss"}
        assert cold.engine_stats["synth_misses"] > 0
        assert cold.engine_stats["model_fits"] > 0

        fits_before = fit_count()
        warm = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()

        # ledger: every heavy stage of the second run was a cache hit
        ledger = RunLedger(store.root)
        manifest = ledger.get(warm.run_id)
        assert [s["name"] for s in manifest["stages"]] == list(
            PIPELINE_STAGES
        )
        assert all(
            s["cache"] == "hit" for s in manifest["stages"]
        )
        # counters: zero new synthesis calls, zero model refits
        assert warm.engine_stats["synth_misses"] == 0
        assert warm.engine_stats["engine_built"] is False
        assert warm.engine_stats["model_fits"] == 0
        assert fit_count() == fits_before

        # and the result is bit-identical to the cold run
        assert warm.pseudo_pareto.configs == cold.pseudo_pareto.configs
        np.testing.assert_allclose(
            warm.final_points, cold.final_points
        )
        np.testing.assert_allclose(
            warm.final_points_3d, cold.final_points_3d
        )
        assert warm.final_configs == cold.final_configs

    def test_manifests_reproducible_config_hash(
        self, sobel, tiny_library, small_images, fast_config, store
    ):
        r1 = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        r2 = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        ledger = RunLedger(store.root)
        m1, m2 = ledger.get(r1.run_id), ledger.get(r2.run_id)
        assert m1["config_hash"] == m2["config_hash"]
        assert m1["params"] == {"command": "test"}

    def test_changed_seed_misses(self, sobel, tiny_library,
                                 small_images, fast_config, store):
        _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        other = AutoAxConfig(
            n_train=16, n_test=8, engines=("K-Neighbors",),
            max_evaluations=300, seed=4,
        )
        rerun = _pipeline(
            sobel, tiny_library, small_images, other, store
        ).run()
        assert rerun.stage_cache["preprocessing"] == "miss"

    def test_workers_do_not_fragment_cache(self, sobel, tiny_library,
                                           small_images, fast_config,
                                           store):
        """Parallelism is excluded from cache identity."""
        _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        with_workers = AutoAxConfig(
            n_train=16, n_test=8, engines=("K-Neighbors",),
            max_evaluations=300, seed=3, workers=1,
        )
        warm = _pipeline(
            sobel, tiny_library, small_images, with_workers, store
        ).run()
        assert set(warm.stage_cache.values()) == {"hit"}

    def test_partial_resume_after_corruption(
        self, sobel, tiny_library, small_images, fast_config, store
    ):
        """Losing one stage artifact recomputes only from that stage."""
        cold = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        ledger = RunLedger(store.root)
        manifest = ledger.get(cold.run_id)
        final_stage = manifest["stages"][-1]
        assert final_stage["name"] == "final_analysis"
        [artifact] = final_stage["artifacts"]
        # corrupt the final-analysis blob on disk
        ref_entries = [
            e for e in store.entries(artifact["kind"])
            if e.key == artifact["key"]
        ]
        ref_entries[0].path.write_bytes(b"\x00 truncated")
        resumed = _pipeline(
            sobel, tiny_library, small_images, fast_config, store
        ).run()
        assert resumed.stage_cache["preprocessing"] == "hit"
        assert resumed.stage_cache["pseudo_pareto"] == "hit"
        assert resumed.stage_cache["final_analysis"] == "miss"
        np.testing.assert_allclose(
            resumed.final_points, cold.final_points
        )

    def test_store_off_records_off(self, sobel, tiny_library,
                                   small_images, fast_config):
        result = AutoAx(
            sobel, tiny_library, small_images[:1], config=fast_config
        ).run()
        assert set(result.stage_cache.values()) == {"off"}
        assert result.run_id is None
