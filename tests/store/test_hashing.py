"""Canonical hashing: stability, normalisation, domain fingerprints."""

import numpy as np
import pytest

from repro.accelerators.sobel import SobelEdgeDetector
from repro.store import (
    accelerator_fingerprint,
    canonical_json,
    content_hash,
    images_fingerprint,
    library_fingerprint,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_tuples_and_lists_alias(self):
        assert content_hash((1, 2, 3)) == content_hash([1, 2, 3])

    def test_numpy_scalars_normalise(self):
        assert content_hash({"x": np.int64(7)}) == content_hash({"x": 7})
        assert content_hash(np.float64(0.5)) == content_hash(0.5)

    def test_arrays_hash_by_content(self):
        a = np.arange(12).reshape(3, 4)
        b = np.arange(12).reshape(3, 4)
        assert content_hash(a) == content_hash(b)
        b[0, 0] = 99
        assert content_hash(a) != content_hash(b)

    def test_array_shape_matters(self):
        a = np.arange(12).reshape(3, 4)
        assert content_hash(a) != content_hash(a.reshape(4, 3))

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalise"):
            content_hash({"x": object()})

    def test_digest_is_stable_across_calls(self):
        doc = {"nested": [{"k": (1, 2)}, None, True, 0.25]}
        assert content_hash(doc) == content_hash(doc)


class TestFingerprints:
    def test_accelerator_fingerprint_deterministic(self):
        fp1 = accelerator_fingerprint(SobelEdgeDetector())
        fp2 = accelerator_fingerprint(SobelEdgeDetector())
        assert content_hash(fp1) == content_hash(fp2)
        assert fp1["class"] == "SobelEdgeDetector"
        assert len(fp1["nodes"]) > 10

    def test_library_fingerprint_order_independent(self, tiny_library):
        fp = library_fingerprint(tiny_library)
        assert content_hash(fp) == content_hash(
            library_fingerprint(tiny_library)
        )
        assert len(fp["components"]) == len(tiny_library)

    def test_images_fingerprint_sensitive_to_pixels(self, small_images):
        fp1 = content_hash(images_fingerprint(small_images))
        altered = [img.copy() for img in small_images]
        altered[0][0, 0] ^= 1
        assert fp1 != content_hash(images_fingerprint(altered))
