"""RemoteBackend HTTP semantics: retries, backoff, ETag, error taxonomy.

A scripted stub server (no repro serve involved) hands back canned
responses so every failure mode is exercised deterministically:
transient 5xx retried, 404 an immediate miss, other 4xx an immediate
error, corrupt ETag retried as transport damage, digest mismatch on
PUT rejected.
"""

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import StoreError
from repro.store.remote import RemoteBackend

KEY = "a" * 64


class StubStoreServer:
    """Serves a scripted list of responses and records every request."""

    def __init__(self):
        self.responses = []
        self.requests = []
        self.headers = []
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def _serve(self):
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                outer.requests.append(
                    (self.command, self.path, body)
                )
                outer.headers.append(dict(self.headers))
                if not outer.responses:
                    status, headers, payload = 500, {}, b"unscripted"
                else:
                    status, headers, payload = outer.responses.pop(0)
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_PUT = do_DELETE = do_POST = _serve

        self.httpd = HTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        self.base_url = (
            f"http://127.0.0.1:{self.httpd.server_address[1]}"
        )

    def script(self, status, payload=b"", headers=None):
        self.responses.append((status, headers or {}, payload))

    def stop(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=10)


@pytest.fixture()
def stub():
    server = StubStoreServer()
    yield server
    server.stop()


def backend_for(stub, retries=2):
    return RemoteBackend(stub.base_url, timeout=5.0, retries=retries)


def ok_blob(data):
    etag = hashlib.sha256(data).hexdigest()
    return 200, data, {"ETag": f'"{etag}"'}


class TestRetries:
    def test_transient_500_is_retried(self, stub, monkeypatch):
        monkeypatch.setattr("repro.store.remote._BACKOFF_BASE", 0.001)
        status, data, headers = ok_blob(b'{"x": 1}')
        stub.script(500, b"flaky")
        stub.script(status, data, headers)
        assert backend_for(stub).get_bytes("dse", KEY) == b'{"x": 1}'
        assert len(stub.requests) == 2

    def test_retry_budget_exhausted_raises(self, stub, monkeypatch):
        monkeypatch.setattr("repro.store.remote._BACKOFF_BASE", 0.001)
        for _ in range(3):
            stub.script(503, b"down")
        with pytest.raises(StoreError, match="3 attempts"):
            backend_for(stub, retries=2).get_bytes("dse", KEY)
        assert len(stub.requests) == 3

    def test_corrupt_etag_is_retried(self, stub, monkeypatch):
        monkeypatch.setattr("repro.store.remote._BACKOFF_BASE", 0.001)
        stub.script(200, b'{"x": 1}', {"ETag": '"' + "0" * 64 + '"'})
        status, data, headers = ok_blob(b'{"x": 1}')
        stub.script(status, data, headers)
        assert backend_for(stub).get_bytes("dse", KEY) == b'{"x": 1}'
        assert len(stub.requests) == 2

    def test_persistent_corruption_raises(self, stub, monkeypatch):
        monkeypatch.setattr("repro.store.remote._BACKOFF_BASE", 0.001)
        for _ in range(3):
            stub.script(200, b'{"x": 1}',
                        {"ETag": '"' + "0" * 64 + '"'})
        with pytest.raises(StoreError, match="hash mismatch"):
            backend_for(stub, retries=2).get_bytes("dse", KEY)

    def test_connection_refused_raises_store_error(self):
        backend = RemoteBackend(
            "http://127.0.0.1:1", timeout=0.2, retries=0
        )
        with pytest.raises(StoreError, match="failed after 1"):
            backend.get_bytes("dse", KEY)


class TestErrorTaxonomy:
    def test_404_is_a_miss_not_retried(self, stub):
        stub.script(404, b'{"error": "no such artifact"}')
        assert backend_for(stub).get_bytes("dse", KEY) is None
        assert len(stub.requests) == 1

    def test_4xx_raises_immediately(self, stub):
        stub.script(400, json.dumps({"error": "bad key"}).encode())
        with pytest.raises(StoreError, match="bad key"):
            backend_for(stub).get_bytes("dse", "-bad-")
        assert len(stub.requests) == 1

    def test_delete_missing_is_noop(self, stub):
        stub.script(404, b'{"error": "no such artifact"}')
        backend_for(stub).delete("dse", KEY)  # no exception

    def test_manifest_miss_is_none(self, stub):
        stub.script(404, b'{"error": "no such run"}')
        assert backend_for(stub).get_manifest("nope") is None


class TestPut:
    def test_put_round_trip_and_digest_check(self, stub):
        data = b'{"x": 1}'
        digest = hashlib.sha256(data).hexdigest()
        stub.script(200, json.dumps(
            {"sha256": digest, "size": len(data)}
        ).encode())
        ref = backend_for(stub).put_bytes(
            "dse", KEY, data, ext="json", meta={"note": "hi"}
        )
        assert (ref.sha256, ref.size) == (digest, len(data))
        method, path, body = stub.requests[0]
        assert (method, body) == ("PUT", data)
        assert path == f"/v1/store/blob/dse/{KEY}"

    def test_put_digest_mismatch_raises(self, stub):
        stub.script(200, json.dumps(
            {"sha256": "0" * 64, "size": 8}
        ).encode())
        with pytest.raises(StoreError, match="digest"):
            backend_for(stub).put_bytes("dse", KEY, b'{"x": 1}')

    def test_malformed_gc_reply_raises(self, stub):
        stub.script(200, json.dumps({"surprise": True}).encode())
        with pytest.raises(StoreError, match="malformed gc"):
            backend_for(stub).gc(set(), set())


class TestAuth:
    def test_api_key_sent_as_bearer(self, stub, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_KEY", "sk-test")
        stub.script(404, b"{}")
        RemoteBackend(stub.base_url, retries=0).get_bytes("dse", KEY)
        assert stub.headers[0].get("Authorization") == "Bearer sk-test"

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIMEOUT", "3.5")
        monkeypatch.setenv("REPRO_STORE_RETRIES", "7")
        monkeypatch.setenv("REPRO_STORE_KEY", "sk-env")
        backend = RemoteBackend("http://localhost:1")
        assert backend.timeout == 3.5
        assert backend.retries == 7
        assert backend.api_key == "sk-env"
