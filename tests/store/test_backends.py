"""StoreBackend protocol: equivalence, sharding, fork safety, URIs.

The three backends (plain sqlite, sharded, remote HTTP) must be
observationally equivalent: any interleaving of put/get/delete/iter —
including corrupting a blob on disk mid-sequence — yields the same
visible results no matter which backend holds the bytes.
"""

import json
import multiprocessing
import random

import pytest

from repro.errors import StoreError, ValidationError
from repro.store import (
    ArtifactStore,
    ShardedBackend,
    SqliteBackend,
    parse_store_uri,
)
from repro.store.backends import STORE_MANIFEST
from repro.store.remote import RemoteBackend

KEY = "a" * 64
KINDS = ("training-set", "dse", "models")


def make_remote(tmp_path):
    """A RemoteBackend speaking to a ``repro serve`` thread.

    Returns ``(backend, server, server_store_root)`` — the root lets
    corruption tests damage blobs behind the server's back.
    """
    from repro.serve import (
        ApiKeyRegistry,
        Coordinator,
        ServeApp,
        ServerThread,
    )

    root = tmp_path / "served-store"
    app = ServeApp(
        Coordinator(store=ArtifactStore(root)), ApiKeyRegistry(None)
    )
    server = ServerThread(app).start()
    return RemoteBackend(server.base_url), server, root


@pytest.fixture()
def remote(tmp_path):
    backend, server, root = make_remote(tmp_path)
    yield backend, root
    server.stop()


# -- observational equivalence ----------------------------------------------


def run_sequence(backend, seed, steps=120):
    """One deterministic randomized op sequence; returns observations."""
    rng = random.Random(seed)
    keys = [format(i, "x") * 16 for i in range(8)]
    trace = []
    for _ in range(steps):
        op = rng.choice(("put", "get", "get", "delete", "iter"))
        kind = rng.choice(KINDS)
        key = rng.choice(keys)
        if op == "put":
            data = f"{kind}/{key}#{rng.randrange(4)}".encode()
            ref = backend.put_bytes(kind, key, data, ext="json")
            trace.append(("put", ref.kind, ref.key, ref.sha256,
                          ref.size))
        elif op == "get":
            trace.append(("get", kind, key,
                          backend.get_bytes(kind, key)))
        elif op == "delete":
            backend.delete(kind, key)
            trace.append(("delete", kind, key))
        else:
            trace.append(("iter", [
                (r.kind, r.key, r.sha256, r.size)
                for r in backend.iter_refs()
            ]))
    return trace


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_backends_observationally_equivalent(tmp_path, remote, seed):
    remote_backend, _ = remote
    backends = [
        SqliteBackend(tmp_path / "plain"),
        ShardedBackend(tmp_path / "sharded", shards=3),
        remote_backend,
    ]
    traces = [run_sequence(b, seed) for b in backends]
    assert traces[0] == traces[1] == traces[2]


def _blob_paths(root, kind, key):
    return list(root.rglob(f"{key}.json"))


def test_corrupt_blob_heals_identically(tmp_path, remote):
    """Disk corruption mid-sequence self-heals the same way everywhere.

    At the byte level changed bytes are indistinguishable from a raced
    valid write, so every backend adopts and re-serves them; the codec
    layer above (:class:`ArtifactStore`) is where garbage turns into a
    transparent miss.  Both halves must hold for all three backends.
    """
    remote_backend, served_root = remote
    cases = [
        (SqliteBackend(tmp_path / "plain"), tmp_path / "plain"),
        (ShardedBackend(tmp_path / "sharded", shards=3),
         tmp_path / "sharded"),
        (remote_backend, served_root),
    ]
    for backend, root in cases:
        backend.put_bytes("dse", KEY, b'{"x": 1}')
        [path] = _blob_paths(root, "dse", KEY)
        path.write_bytes(b'{"x": "raced"}')
        # byte layer: adopted, re-indexed, served consistently
        assert backend.get_bytes("dse", KEY) == b'{"x": "raced"}'
        assert backend.get_bytes("dse", KEY) == b'{"x": "raced"}'

        store = ArtifactStore(backend=backend)
        path.write_bytes(b"garbage")  # undecodable corruption
        assert store.get("dse", KEY) is None  # evicted, not a crash
        store.put("dse", KEY, {"x": 2})
        assert store.get("dse", KEY) == {"x": 2}


def test_gc_equivalent_across_backends(tmp_path, remote):
    remote_backend, _ = remote
    backends = [
        SqliteBackend(tmp_path / "plain"),
        ShardedBackend(tmp_path / "sharded", shards=3),
        remote_backend,
    ]
    stats = []
    for backend in backends:
        for i in range(6):
            backend.put_bytes("dse", format(i, "x") * 16,
                              b"x" * (i + 1))
        kept = {("dse", format(i, "x") * 16) for i in range(2)}
        dry = backend.gc(kept, set(), dry_run=True)
        assert dry["dry_run"] is True
        assert len(backend.iter_refs()) == 6  # nothing deleted
        real = backend.gc(kept, set())
        assert len(backend.iter_refs()) == 2
        dry.pop("dry_run"), real.pop("dry_run")
        assert dry == real
        stats.append(real)
    assert stats[0] == stats[1] == stats[2]


# -- sharded layout invariants ----------------------------------------------


class TestSharded:
    def test_manifest_written_and_validated(self, tmp_path):
        store = ShardedBackend(tmp_path, shards=4)
        store.put_bytes("dse", KEY, b"{}")
        doc = json.loads((tmp_path / STORE_MANIFEST).read_text())
        assert doc == {"format": "sharded", "version": 1, "shards": 4}
        # reopening with the recorded count works ...
        again = ShardedBackend(tmp_path, shards=4)
        assert again.get_bytes("dse", KEY) == b"{}"

    def test_shard_count_mismatch_rejected(self, tmp_path):
        ShardedBackend(tmp_path, shards=4).put_bytes("dse", KEY, b"{}")
        with pytest.raises(StoreError, match="shard"):
            ShardedBackend(tmp_path, shards=8)

    def test_plain_store_rejected_as_sharded(self, tmp_path):
        SqliteBackend(tmp_path).put_bytes("dse", KEY, b"{}")
        with pytest.raises(StoreError):
            ShardedBackend(tmp_path, shards=4)

    def test_sharded_store_rejected_as_plain(self, tmp_path):
        ShardedBackend(tmp_path, shards=4).put_bytes("dse", KEY, b"{}")
        with pytest.raises(StoreError):
            SqliteBackend(tmp_path)

    def test_routing_is_stable(self, tmp_path):
        store = ShardedBackend(tmp_path, shards=4)
        keys = [format(i, "x") * 16 for i in range(16)]
        for key in keys:
            store.put_bytes("dse", key, key.encode())
        shards = {key: store._shard("dse", key) for key in keys}
        assert len(set(shards.values())) > 1  # actually spread out
        reopened = ShardedBackend(tmp_path, shards=4)
        for key in keys:
            assert reopened._shard("dse", key) == shards[key]
            assert reopened.get_bytes("dse", key) == key.encode()

    def test_artifact_store_facade_over_sharded(self, tmp_path):
        store = ArtifactStore(
            backend=ShardedBackend(tmp_path, shards=2)
        )
        store.put("dse", KEY, {"front": [1, 2]})
        assert store.get("dse", KEY) == {"front": [1, 2]}
        assert store.uri == f"sharded:{tmp_path}?shards=2"


# -- fork safety -------------------------------------------------------------


def _child_reads(backend, queue):
    try:
        queue.put(("ok", backend.get_bytes("dse", KEY)))
    except Exception as exc:  # pragma: no cover - the failure mode
        queue.put(("err", repr(exc)))


def test_fork_after_read_gets_fresh_connection(tmp_path):
    """A child forked after a read must not share the parent's handle."""
    backend = SqliteBackend(tmp_path)
    backend.put_bytes("dse", KEY, b'{"x": 1}')
    assert backend.get_bytes("dse", KEY) == b'{"x": 1}'  # caches conn
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    child = ctx.Process(target=_child_reads, args=(backend, queue))
    child.start()
    tag, value = queue.get(timeout=30)
    child.join(timeout=30)
    assert (tag, value) == ("ok", b'{"x": 1}')
    assert child.exitcode == 0
    # and the parent's cached connection still works after the fork
    assert backend.get_bytes("dse", KEY) == b'{"x": 1}'
    backend.put_bytes("dse", "b" * 64, b"[]")
    assert backend.get_bytes("dse", "b" * 64) == b"[]"


# -- store URIs --------------------------------------------------------------


class TestStoreUri:
    def test_bare_path_is_sqlite(self, tmp_path):
        backend = parse_store_uri(str(tmp_path))
        assert isinstance(backend, SqliteBackend)
        assert backend.root == tmp_path

    def test_sqlite_scheme(self, tmp_path):
        backend = parse_store_uri(f"sqlite:{tmp_path}")
        assert isinstance(backend, SqliteBackend)
        assert backend.root == tmp_path

    def test_sharded_scheme(self, tmp_path):
        backend = parse_store_uri(f"sharded:{tmp_path}?shards=5")
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 5
        assert backend.uri == f"sharded:{tmp_path}?shards=5"

    def test_sharded_default_shards(self, tmp_path):
        from repro.store.backends import DEFAULT_SHARDS

        backend = parse_store_uri(f"sharded:{tmp_path}")
        assert backend.shards == DEFAULT_SHARDS

    def test_http_scheme(self):
        backend = parse_store_uri("http://127.0.0.1:9999")
        assert isinstance(backend, RemoteBackend)
        assert backend.uri == "http://127.0.0.1:9999"

    def test_bad_shards_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            parse_store_uri(f"sharded:{tmp_path}?shards=zero")
        with pytest.raises(ValidationError):
            parse_store_uri(f"sharded:{tmp_path}?bogus=1")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            parse_store_uri("")

    def test_uri_round_trips(self, tmp_path):
        for uri in (f"sqlite:{tmp_path / 'a'}",
                    f"sharded:{tmp_path / 'b'}?shards=3",
                    "http://localhost:8035"):
            assert parse_store_uri(uri).uri == uri

    def test_open_store_accepts_uri(self, tmp_path):
        from repro.store import open_store

        store = open_store(f"sharded:{tmp_path}?shards=2")
        store.put("dse", KEY, {"x": 1})
        assert open_store(store) is store
        assert open_store(store.uri).get("dse", KEY) == {"x": 1}
