"""ArtifactStore: codecs, robustness, concurrency, gc, env resolution."""

import hashlib
import json
import multiprocessing

import pytest

from repro.errors import StoreError, ValidationError
from repro.store import (
    ArtifactStore,
    content_hash,
    default_store_dir,
    open_store,
    require_store,
)
from repro.synthesis.synthesizer import SynthesisReport

KEY = "a" * 64


class TestRoundTrip:
    def test_json_kinds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        doc = {"qor": [0.5, 1.0], "configs": [[0, 1], [2, 3]]}
        store.put("training-set", KEY, doc)
        assert store.get("training-set", KEY) == doc

    def test_synthesis_codec(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = SynthesisReport(
            area=12.5, delay=0.8, power=3.25, gate_count=42,
            cells={"NAND2": 21, "INV": 21},
        )
        store.put("synthesis", KEY, report)
        back = store.get("synthesis", KEY)
        assert back == report

    def test_library_codec(self, tmp_path, tiny_library):
        store = ArtifactStore(tmp_path)
        store.put("library", KEY, tiny_library)
        back = store.get("library", KEY)
        assert len(back) == len(tiny_library)
        assert back.summary() == tiny_library.summary()

    def test_get_missing_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("training-set", KEY) is None
        assert not store.has("training-set", KEY)

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dse", KEY, {"x": 1})
        store.delete("dse", KEY)
        assert store.get("dse", KEY) is None

    def test_meta_and_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dse", KEY, {"x": 1}, meta={"note": "hi"})
        [entry] = store.entries("dse")
        assert entry.kind == "dse" and entry.key == KEY
        assert entry.size > 0 and entry.path.is_file()
        assert store.keys("dse") == [KEY]
        assert store.stats()["dse"]["count"] == 1


class TestRobustness:
    """Corrupt/stale entries must be transparent misses, never crashes."""

    def _put(self, store):
        return store.put("training-set", KEY, {"qor": [1.0, 2.0]})

    def test_truncated_blob_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = self._put(store)
        ref.path.write_bytes(ref.path.read_bytes()[:5])
        assert store.get("training-set", KEY) is None
        # the poisoned entry was evicted: a fresh put works again
        self._put(store)
        assert store.get("training-set", KEY) == {"qor": [1.0, 2.0]}

    def test_corrupt_blob_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = self._put(store)
        ref.path.write_bytes(b"{not json at all")
        assert store.get("training-set", KEY) is None

    def test_stale_index_entry_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = self._put(store)
        ref.path.unlink()  # blob vanished; index row is now stale
        assert store.get("training-set", KEY) is None
        assert store.entries("training-set") == []

    def test_undecodable_payload_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put("synthesis", KEY, SynthesisReport(
            area=1.0, delay=1.0, power=1.0, gate_count=1,
        ))
        # valid JSON, wrong schema: decode raises -> miss, evicted
        ref.path.write_text(json.dumps({"bogus": True}))
        with open(ref.path, "rb") as fh:
            data = fh.read()
        # re-index the rewritten bytes so the checksum matches
        store._index(
            "synthesis", KEY, ref.path,
            hashlib.sha256(data).hexdigest(), len(data), None,
        )
        assert store.get("synthesis", KEY) is None
        assert store.get("synthesis", KEY) is None  # stays a clean miss

    def test_orphan_blob_is_adopted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = self._put(store)
        # simulate a writer that died between rename and index insert
        with store._connect() as conn:
            conn.execute("DELETE FROM artifacts")
        assert store.get("training-set", KEY) == {"qor": [1.0, 2.0]}
        assert store.entries("training-set") != []
        assert ref.path.is_file()


def _writer(root: str, worker: int, n: int) -> None:
    store = ArtifactStore(root)
    for i in range(n):
        key = content_hash({"item": i})
        store.put("dse", key, {"item": i, "writer": worker})


class TestConcurrency:
    def test_two_process_writes_never_tear(self, tmp_path):
        """Two processes hammering the same keys via atomic rename."""
        n = 25
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_writer, args=(str(tmp_path), w, n))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = ArtifactStore(tmp_path)
        for i in range(n):
            doc = store.get("dse", content_hash({"item": i}))
            assert doc is not None and doc["item"] == i
            assert doc["writer"] in (0, 1)


class TestGc:
    def test_keeps_referenced_and_shared(self, tmp_path, tiny_library):
        store = ArtifactStore(tmp_path)
        store.put("dse", "1" * 64, {"x": 1})
        store.put("dse", "2" * 64, {"x": 2})
        store.put("library", "3" * 64, tiny_library)
        stats = store.gc({("dse", "1" * 64)})
        assert stats["removed"] == 1  # the unreferenced dse artifact
        assert store.get("dse", "1" * 64) == {"x": 1}
        assert store.get("dse", "2" * 64) is None
        assert store.get("library", "3" * 64) is not None  # shared kind

    def test_keep_kinds_override_drops_shared(self, tmp_path,
                                              tiny_library):
        store = ArtifactStore(tmp_path)
        store.put("library", "3" * 64, tiny_library)
        store.gc(set(), keep_kinds=())
        assert store.get("library", "3" * 64) is None


class TestEnvResolution:
    def test_default_dir_priority(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_store_dir()) == ".repro-store"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "legacy"))
        assert default_store_dir() == tmp_path / "legacy"
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "new"))
        assert default_store_dir() == tmp_path / "new"

    @pytest.mark.parametrize("env", ["REPRO_STORE_DIR",
                                     "REPRO_CACHE_DIR"])
    @pytest.mark.parametrize("bad", ["", "   ", "\t"])
    def test_blank_env_values_rejected(self, monkeypatch, env, bad):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv(env, bad)
        with pytest.raises(ValidationError, match=env):
            default_store_dir()

    def test_open_store_uses_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert open_store().root == tmp_path

    def test_require_store_missing_root(self, tmp_path):
        with pytest.raises(StoreError, match="no experiment store"):
            require_store(tmp_path / "absent")
