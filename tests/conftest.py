"""Shared fixtures: a tiny characterised library and small benchmark data.

Session-scoped so the (seconds-long) library characterisation runs once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import SobelEdgeDetector, profile_accelerator
from repro.core import AcceleratorEvaluator, reduce_library
from repro.imaging import benchmark_images
from repro.library import generate_library
from repro.library.generation import GenerationPlan


@pytest.fixture(autouse=True)
def _isolate_store_env(monkeypatch):
    """Keep a developer's real REPRO_STORE_DIR out of the test suite.

    Tests opt back in with their own ``monkeypatch.setenv``.
    """
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)


@pytest.fixture(scope="session")
def tiny_library():
    """A small but complete library covering all six signatures."""
    plan = GenerationPlan(
        {
            ("add", 8): 24,
            ("add", 9): 16,
            ("add", 16): 12,
            ("sub", 10): 16,
            ("sub", 16): 12,
            ("mul", 8): 24,
        },
        seed=0,
        sample_size=1 << 12,
    )
    return generate_library(plan)


@pytest.fixture(scope="session")
def small_images():
    """Two small benchmark images (48x64) for fast QoR evaluation."""
    return benchmark_images(2, shape=(48, 64))


@pytest.fixture(scope="session")
def sobel():
    return SobelEdgeDetector()


@pytest.fixture(scope="session")
def sobel_profiles(sobel, small_images):
    return profile_accelerator(sobel, small_images, rng=0)


@pytest.fixture(scope="session")
def sobel_space(sobel, tiny_library, sobel_profiles):
    return reduce_library(sobel, tiny_library, sobel_profiles)


@pytest.fixture(scope="session")
def sobel_evaluator(sobel, small_images):
    return AcceleratorEvaluator(sobel, small_images)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
