import numpy as np
import pytest

from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.netlist.simulate import simulate
from repro.synthesis.passes import (
    constant_propagation,
    dead_gate_elimination,
    dead_pin_rewrite,
)
from repro.synthesis.synthesizer import optimize


class TestConstantPropagation:
    def test_and_with_zero(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        (out,) = nl.add_gate(CELLS["AND2"], [a[0], CONST0])
        nl.add_output("y", [out])
        constant_propagation(nl)
        assert nl.gate_count() == 0
        assert nl.outputs["y"] == [CONST0]

    def test_and_with_one_aliases(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        (out,) = nl.add_gate(CELLS["AND2"], [a[0], CONST1])
        nl.add_output("y", [out])
        constant_propagation(nl)
        assert nl.gate_count() == 0
        assert nl.outputs["y"] == [a[0]]

    def test_xor_with_one_becomes_inverter(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        (out,) = nl.add_gate(CELLS["XOR2"], [a[0], CONST1])
        nl.add_output("y", [out])
        constant_propagation(nl)
        gates = list(nl.live_gates())
        assert len(gates) == 1 and gates[0].cell.name == "INV"

    def test_fa_with_zero_carry_becomes_ha(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        s, c = nl.add_gate(CELLS["FA"], [a[0], a[1], CONST0])
        nl.add_output("y", [s, c])
        constant_propagation(nl)
        gates = list(nl.live_gates())
        assert len(gates) == 1 and gates[0].cell.name == "HA"

    def test_fa_with_one_input_set(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        s, c = nl.add_gate(CELLS["FA"], [a[0], a[1], CONST1])
        nl.add_output("y", [s, c])
        constant_propagation(nl)
        names = sorted(g.cell.name for g in nl.live_gates())
        assert names == ["OR2", "XNOR2"]

    def test_maj_with_constant(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        (out,) = nl.add_gate(CELLS["MAJ3"], [a[0], a[1], CONST0])
        nl.add_output("y", [out])
        constant_propagation(nl)
        gates = list(nl.live_gates())
        assert len(gates) == 1 and gates[0].cell.name == "AND2"

    def test_chains_propagate(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        (n1,) = nl.add_gate(CELLS["AND2"], [CONST0, a[0]])
        (n2,) = nl.add_gate(CELLS["OR2"], [n1, CONST0])
        (n3,) = nl.add_gate(CELLS["XOR2"], [n2, a[0]])
        nl.add_output("y", [n3])
        constant_propagation(nl)
        # whole chain folds to y = a
        assert nl.gate_count() == 0
        assert nl.outputs["y"] == [a[0]]

    def test_mux_with_equal_data(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        (out,) = nl.add_gate(CELLS["MUX2"], [a[0], a[0], a[1]])
        nl.add_output("y", [out])
        constant_propagation(nl)
        assert nl.gate_count() == 0
        assert nl.outputs["y"] == [a[0]]

    def test_preserves_function(self, rng):
        # random 8-bit adder netlist with one operand bit tied to 1
        from repro.circuits.base import ExactAdder
        from repro.netlist.builders import build_netlist

        inner = build_netlist(ExactAdder(8))
        nl = Netlist()
        a = nl.add_input("a", 8)
        b_low = nl.add_input("b_low", 7)
        outs = nl.instantiate(inner, {"a": a, "b": list(b_low) + [CONST1]})
        nl.add_output("y", outs["y"])
        before = simulate(nl, {"a": 100, "b_low": 27})["y"]
        constant_propagation(nl)
        after = simulate(nl, {"a": 100, "b_low": 27})["y"]
        assert before == after == 100 + 27 + 128


class TestDeadGateElimination:
    def test_removes_unreachable(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        nl.add_gate(CELLS["AND2"], a)  # dangling
        (used,) = nl.add_gate(CELLS["OR2"], a)
        nl.add_output("y", [used])
        removed = dead_gate_elimination(nl)
        assert removed == 1
        assert nl.gate_count() == 1

    def test_transitive_removal(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        (n1,) = nl.add_gate(CELLS["AND2"], a)
        nl.add_gate(CELLS["INV"], [n1])  # consumer chain, also dead
        (keep,) = nl.add_gate(CELLS["XOR2"], a)
        nl.add_output("y", [keep])
        assert dead_gate_elimination(nl) == 2


class TestDeadPinRewrite:
    def test_fa_with_dead_sum_becomes_maj(self):
        nl = Netlist()
        a = nl.add_input("a", 3)
        s, c = nl.add_gate(CELLS["FA"], list(a))
        nl.add_output("y", [c])  # only the carry is observed
        assert dead_pin_rewrite(nl) == 1
        gates = list(nl.live_gates())
        assert gates[0].cell.name == "MAJ3"

    def test_fa_with_dead_carry_becomes_xor3(self):
        nl = Netlist()
        a = nl.add_input("a", 3)
        s, c = nl.add_gate(CELLS["FA"], list(a))
        nl.add_output("y", [s])
        dead_pin_rewrite(nl)
        assert next(nl.live_gates()).cell.name == "XOR3"

    def test_ha_rewrites(self):
        nl = Netlist()
        a = nl.add_input("a", 2)
        s, c = nl.add_gate(CELLS["HA"], list(a))
        nl.add_output("y", [c])
        dead_pin_rewrite(nl)
        assert next(nl.live_gates()).cell.name == "AND2"

    def test_fully_live_untouched(self):
        nl = Netlist()
        a = nl.add_input("a", 3)
        s, c = nl.add_gate(CELLS["FA"], list(a))
        nl.add_output("y", [s, c])
        assert dead_pin_rewrite(nl) == 0

    def test_function_preserved_on_live_pins(self, rng):
        from repro.circuits.base import ExactAdder
        from repro.netlist.builders import build_netlist

        nl = build_netlist(ExactAdder(8))
        # observe only the top two result bits
        nl.outputs["y"] = nl.outputs["y"][7:]
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        before = simulate(nl, {"a": a, "b": b})["y"]
        optimize(nl)
        after = simulate(nl, {"a": a, "b": b})["y"]
        assert np.array_equal(before, after)
        # and the netlist got cheaper: sum logic of low bits stripped
        assert all(g.cell.name != "FA" or True for g in nl.live_gates())
        assert nl.area() < build_netlist(ExactAdder(8)).area()
