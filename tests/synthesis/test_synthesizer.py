import pytest

from repro.circuits.adders import TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier
from repro.netlist.builders import build_netlist
from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, Netlist
from repro.synthesis.synthesizer import SynthesisReport, optimize, report, synthesize
from repro.synthesis.timing import critical_path_delay


class TestOptimize:
    def test_idempotent(self):
        nl = build_netlist(ExactAdder(8))
        optimize(nl)
        area_once = nl.area()
        optimize(nl)
        assert nl.area() == area_once

    def test_reduces_area(self):
        nl = build_netlist(TruncatedAdder(8, 4, "zero"))
        raw_area = nl.area()
        optimize(nl)
        assert nl.area() <= raw_area


class TestSynthesizeMutation:
    def test_default_leaves_netlist_untouched(self):
        nl = build_netlist(TruncatedAdder(8, 4, "zero"))
        gates_before = nl.gate_count()
        area_before = nl.area()
        rep = synthesize(nl)
        assert nl.gate_count() == gates_before
        assert nl.area() == area_before
        assert rep.area <= area_before

    def test_in_place_optimises_original(self):
        nl = build_netlist(TruncatedAdder(8, 4, "zero"))
        rep = synthesize(nl, in_place=True)
        assert nl.gate_count() == rep.gate_count
        assert nl.area() == rep.area

    def test_both_modes_agree(self):
        copied = synthesize(build_netlist(TruncatedAdder(8, 2, "half")))
        in_place = synthesize(
            build_netlist(TruncatedAdder(8, 2, "half")), in_place=True
        )
        assert copied == in_place

    def test_netlist_copy_is_independent(self):
        nl = build_netlist(TruncatedAdder(8, 4, "zero"))
        gates_before = nl.gate_count()
        clone = nl.copy()
        assert clone.inputs == nl.inputs
        assert clone.outputs == nl.outputs
        optimize(clone)
        assert clone.gate_count() <= gates_before
        assert nl.gate_count() == gates_before


class TestReport:
    def test_fields(self):
        rep = synthesize(build_netlist(ExactAdder(8)))
        assert isinstance(rep, SynthesisReport)
        assert rep.area > 0
        assert rep.delay > 0
        assert rep.power > 0
        assert rep.gate_count > 0
        assert rep.energy == pytest.approx(rep.power * rep.delay)
        assert sum(rep.cells.values()) == rep.gate_count

    def test_multiplier_bigger_than_adder(self):
        add = synthesize(build_netlist(ExactAdder(8)))
        mul = synthesize(build_netlist(ExactMultiplier(8)))
        assert mul.area > 3 * add.area
        assert mul.delay > add.delay


class TestTiming:
    def test_constant_only_netlist(self):
        nl = Netlist()
        nl.add_input("a", 1)
        nl.add_output("y", [CONST0])
        assert critical_path_delay(nl) == 0.0

    def test_chain_depth(self):
        nl = Netlist()
        a = nl.add_input("a", 1)
        net = a[0]
        for _ in range(5):
            (net,) = nl.add_gate(CELLS["INV"], [net])
        nl.add_output("y", [net])
        assert critical_path_delay(nl) == pytest.approx(
            5 * CELLS["INV"].delay
        )

    def test_ripple_delay_linear_in_width(self):
        d8 = critical_path_delay(build_netlist(ExactAdder(8)))
        d16 = critical_path_delay(build_netlist(ExactAdder(16)))
        assert d16 > 1.7 * d8
