"""Property-based equivalence checks of the synthesis substitute.

The optimiser may rewrite anything as long as the observable function is
preserved.  These tests tie random subsets of inputs to constants, run
the full optimisation pipeline, and check the optimised netlist against
the unoptimised one on random stimulus — across circuit families and
random parameterisations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import LowerOrAdder, QuAdAdder, TruncatedAdder
from repro.circuits.base import ExactAdder, ExactMultiplier, ExactSubtractor
from repro.circuits.multipliers import BrokenArrayMultiplier
from repro.circuits.subtractors import BlockSubtractor
from repro.netlist.builders import build_netlist
from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.netlist.simulate import simulate
from repro.synthesis.synthesizer import optimize


def tie_input_bits(netlist: Netlist, port: str, tie_mask: int,
                   tie_values: int) -> None:
    """Tie selected bits of an input port to constants (rewires gates)."""
    nets = netlist.inputs[port]
    mapping = {}
    for position, net in enumerate(nets):
        if (tie_mask >> position) & 1:
            mapping[net] = (
                CONST1 if (tie_values >> position) & 1 else CONST0
            )
    for idx, gate in enumerate(netlist.gates):
        if gate is None:
            continue
        if any(n in mapping for n in gate.inputs):
            new_inputs = tuple(mapping.get(n, n) for n in gate.inputs)
            netlist.gates[idx] = type(gate)(
                gate.cell, new_inputs, gate.outputs
            )
    for name, outs in netlist.outputs.items():
        netlist.outputs[name] = [mapping.get(n, n) for n in outs]


CIRCUITS = [
    lambda: ExactAdder(8),
    lambda: TruncatedAdder(8, 3, "half"),
    lambda: LowerOrAdder(8, 4),
    lambda: QuAdAdder(8, [3, 5], [0, 2]),
    lambda: ExactSubtractor(10),
    lambda: BlockSubtractor(10, [4, 6], [0, 3]),
    lambda: ExactMultiplier(4),
    lambda: BrokenArrayMultiplier(8, 5, 4),
]


@settings(max_examples=40, deadline=None)
@given(
    circuit_index=st.integers(min_value=0, max_value=len(CIRCUITS) - 1),
    tie_mask=st.integers(min_value=0, max_value=255),
    tie_values=st.integers(min_value=0, max_value=255),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_optimizer_preserves_function_under_constant_ties(
    circuit_index, tie_mask, tie_values, seed
):
    """Tying operand-a bits to constants then optimising must not change
    the output for any stimulus consistent with the ties."""
    circuit = CIRCUITS[circuit_index]()
    reference = build_netlist(circuit)
    tie_input_bits(reference, "a", tie_mask, tie_values)

    optimised = build_netlist(circuit)
    tie_input_bits(optimised, "a", tie_mask, tie_values)
    optimize(optimised)

    rng = np.random.default_rng(seed)
    width = circuit.width
    a = rng.integers(0, 1 << width, 64)
    b = rng.integers(0, 1 << width, 64)
    # force the tied bits of the stimulus to the tied values so both
    # netlists see consistent inputs on the untied paths
    mask = tie_mask & ((1 << width) - 1)
    a = (a & ~mask) | (tie_values & mask)

    want = simulate(reference, {"a": a, "b": b})["y"]
    got = simulate(optimised, {"a": a, "b": b})["y"]
    assert np.array_equal(got, want)


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=1, max_value=4),
                    min_size=2, max_size=4).filter(
        lambda b: 4 <= sum(b) <= 10
    ),
    observe_from=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_optimizer_preserves_observed_bits(blocks, observe_from, seed):
    """Observing only the top result bits (dead-pin territory) must not
    corrupt those bits."""
    width = sum(blocks)
    observe_from = min(observe_from, width - 1)
    circuit = QuAdAdder(width, blocks)
    reference = build_netlist(circuit)
    reference.outputs["y"] = reference.outputs["y"][observe_from:]

    optimised = build_netlist(circuit)
    optimised.outputs["y"] = optimised.outputs["y"][observe_from:]
    optimize(optimised)
    assert optimised.area() <= reference.area()

    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << width, 64)
    b = rng.integers(0, 1 << width, 64)
    want = simulate(reference, {"a": a, "b": b})["y"]
    got = simulate(optimised, {"a": a, "b": b})["y"]
    assert np.array_equal(got, want)
