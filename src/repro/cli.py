"""Command-line interface: ``python -m repro <command>``.

Commands

* ``inventory`` — print the operation inventory of the case-study
  accelerators (Table 1).
* ``generate-library`` — build and characterise a component library
  through the parallel construction pipeline (``--workers`` processes,
  per-component memoisation with ``--store``, per-chunk progress lines
  on stderr) and save it as JSON (``--out``) and/or into the store.
* ``profile`` — profile an accelerator on the synthetic benchmark set and
  print per-operation operand statistics (Fig. 3 numbers).
* ``run`` — execute the full autoAx pipeline and print (optionally save)
  the final Pareto front.
* ``workloads`` — ``list`` the registered workloads or ``run <name>``:
  the full pipeline on any registry entry, with a library generated (and
  cached) to cover exactly that workload's operation signatures.
* ``search`` — budget-exact parallel portfolio design-space search:
  strategy islands (hill climber, NSGA-II, random sampling, capped
  exhaustive) over a workload's configuration space, with periodic
  front merging and (with ``--store``) per-round checkpoints that
  ``runs resume`` continues.  ``--distributed N`` runs the islands on
  a store-backed work queue serviced by N spawned ``search-worker``
  processes (plus any externally started ones), with bit-identical
  fronts for any topology.
* ``search-worker`` — lease and execute ``search --distributed`` work
  items from an experiment store (local path or ``http://`` URI of a
  ``repro serve`` instance) until idle or killed; crashed workers'
  leases expire and other workers pick the items up.
* ``runs`` — the persistent experiment store's run ledger: ``list`` and
  ``show`` recorded pipeline runs, ``resume`` one against the warm
  store (including interrupted ``search`` runs), ``gc`` artifacts no
  manifest references.
* ``export-verilog`` — lower an accelerator with exact components and
  write structural Verilog.
* ``serve`` — approximation-as-a-service: a stdlib HTTP server where
  clients submit (workload, quality-target, budget) jobs; concurrent
  identical requests coalesce into one pipeline pass, warm queries are
  answered from the store, and every job is metered per API key and
  recorded in the run ledger (``repro runs list --kind serve-job``).

Store-aware commands accept ``--store [URI]``/``--no-store`` to enable
the persistent stage cache (default: on when ``REPRO_STORE_DIR`` is
set).  The optional URI selects a backend: ``sqlite:PATH`` (or a bare
path), ``sharded:PATH?shards=N``, or ``http://host:port`` for the
store API of a ``repro serve`` instance.  ``run``, ``workloads run``,
``search`` and every ``runs`` command accept ``--json`` for
machine-readable output (stable key order, ``version`` field).  With
``--json``, stdout carries the JSON document and nothing else —
progress and diagnostics go to stderr.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import GenericGaussianFilter
from repro.accelerators.sobel import SobelEdgeDetector
from repro.telemetry import get_logger, setup_logging
from repro.utils.tabulate import format_table

ACCELERATORS = {
    "sobel": SobelEdgeDetector,
    "fixed_gf": FixedGaussianFilter,
    "generic_gf": GenericGaussianFilter,
}

#: Version of every ``--json`` document this CLI emits.
JSON_VERSION = 1


def _emit_json(doc: Dict) -> None:
    """Print a machine-readable result (sorted keys, version field)."""
    doc = {"version": JSON_VERSION, **doc}
    print(json.dumps(doc, sort_keys=True, indent=2))


@contextlib.contextmanager
def _tracing(command: str, trace_path: Optional[str]):
    """Span-trace one CLI command when ``--trace``/``REPRO_TRACE`` asks.

    Installs a process-wide :class:`~repro.telemetry.tracing.Tracer`,
    wraps the whole command in one top-level ``cli.<command>`` span
    (worker spans parent under it through the runtime piggyback), and
    writes the Chrome trace-event JSON on the way out — including when
    the command raises, so a failed run still leaves its timeline.
    """
    import os

    from repro.telemetry import TRACE_ENV, Tracer, install_tracer
    from repro.telemetry import uninstall_tracer

    if trace_path is None:
        raw = os.environ.get(TRACE_ENV)
        if raw is not None:
            if not raw.strip():
                from repro.errors import ValidationError

                raise ValidationError(
                    f"{TRACE_ENV} must name a trace output file, "
                    f"got {raw!r}"
                )
            trace_path = raw.strip()
    if trace_path is None:
        yield
        return
    tracer = Tracer()
    install_tracer(tracer)
    try:
        with tracer.span(f"cli.{command}", cat="cli"):
            yield
    finally:
        uninstall_tracer()
        tracer.write(trace_path)
        get_logger("cli").info(
            "trace written", extra={"data": {"file": trace_path}}
        )


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON timeline of this "
             "command (default: REPRO_TRACE env, else off)",
    )


def _workers_arg(text: str) -> int:
    """argparse type for ``--workers``: clear error on bad values.

    The validated value is passed through verbatim — an explicit
    ``--workers 1`` must reach the engine as 1 (forcing in-process
    evaluation) rather than collapsing to the ``REPRO_WORKERS``
    fallback.
    """
    from repro.core.engine import validate_workers

    try:
        validate_workers(text, source="--workers")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(text)


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_workers_arg, default=None,
        help="worker processes for real evaluation "
             "(default: REPRO_WORKERS env or in-process)",
    )


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", nargs="?", const=True, default=None, metavar="URI",
        help="persist/reuse pipeline stages in the experiment store; "
             "optionally a store URI (sqlite:PATH, "
             "sharded:PATH?shards=N, http://host:port) "
             "(default: enabled when REPRO_STORE_DIR is set)",
    )
    parser.add_argument(
        "--no-store", action="store_const", const=False, dest="store",
        help="disable the experiment store",
    )


def _add_accelerator_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accelerator",
        choices=sorted(ACCELERATORS),
        default="sobel",
        help="target accelerator (default: sobel)",
    )


def _resolve_store(flag):
    """Map ``--store [URI]`` / ``--no-store`` to a store (or None).

    ``None`` (unset) enables the store iff ``REPRO_STORE_DIR`` is set;
    ``True``/``False`` force it on/off; a string is a store URI
    (``sqlite:PATH``, ``sharded:PATH?shards=N``, ``http://host:port``)
    or plain path.
    """
    import os

    from repro.store import STORE_ENV, open_store

    if isinstance(flag, str):
        return open_store(flag)
    if flag is None:
        flag = os.environ.get(STORE_ENV) is not None
    return open_store() if flag else None


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.experiments.table1_operations import (
        TABLE1_COLUMNS,
        table1_rows,
    )

    rows = table1_rows()
    headers = ["Problem"] + [
        f"{kind}{width}" for kind, width in TABLE1_COLUMNS
    ] + ["Total"]
    print(
        format_table(
            headers,
            [[r["problem"], *r["counts"], r["total"]] for r in rows],
        )
    )
    return 0


def _cmd_generate_library(args: argparse.Namespace) -> int:
    from repro.experiments.setup import default_library_key
    from repro.library.generation import scaled_plan
    from repro.library.io import save_library
    from repro.library.pipeline import build_library

    log = get_logger("library")
    store = _resolve_store(args.store)
    if not args.out and store is None:
        log.error("generate-library needs --out and/or --store")
        return 2
    plan = scaled_plan(args.scale, seed=args.seed)
    log.info(
        "generating components",
        extra={"data": {
            "components": plan.total(),
            "store": store.uri if store else None,
        }},
    )
    result = build_library(
        plan,
        workers=args.workers,
        store=store,
        progress=log.info,
    )
    library, stats = result.library, result.stats
    if store is not None:
        # Whole-library blob under the shared experiment-setup key, so
        # `repro run --store` and default_setup() get a one-read hit.
        store.put(
            "library",
            default_library_key(plan, args.scale),
            library,
            meta={"components": len(library)},
        )
    if args.out:
        save_library(library, args.out)
    if args.json:
        _emit_json(
            {
                "generate_library": {
                    "components": len(library),
                    "scale": args.scale,
                    "seed": args.seed,
                    "summary": {
                        f"{kind}{width}": count
                        for (kind, width), count
                        in library.summary().items()
                    },
                    "stats": stats.as_dict(),
                    "out": args.out,
                    "store": store.uri if store else None,
                    "run_id": result.run_id,
                }
            }
        )
    else:
        where = args.out or f"store {store.uri}"
        print(
            f"wrote {len(library)} components to {where} "
            f"({stats.store_hits} cached, "
            f"{stats.characterized} characterised, "
            f"{stats.seconds:.1f}s, "
            f"workers={stats.workers})"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.accelerators.profiler import profile_accelerator
    from repro.imaging.datasets import benchmark_images

    accelerator = ACCELERATORS[args.accelerator]()
    images = benchmark_images(args.images)
    profiles = profile_accelerator(accelerator, images, rng=args.seed)
    rows = []
    for name, profile in profiles.items():
        rows.append(
            [
                name,
                f"{profile.signature[0]}{profile.signature[1]}",
                profile.total_count,
                "dense" if profile.pmf is not None else "sampled",
                profile.sample_a.size,
            ]
        )
    print(
        format_table(
            ["op", "signature", "operand pairs", "PMF", "samples"],
            rows,
        )
    )
    return 0


def _result_doc(result, label_key: str, label: str) -> Dict:
    """The ``--json`` document of one pipeline run."""
    order = result.final_points[:, 1].argsort()
    return {
        label_key: label,
        "run_id": result.run_id,
        "space": result.summary_row(),
        "models": {
            "qor": {
                "name": result.qor_model.name,
                "fidelity_test": result.qor_model.fidelity_test,
            },
            "hw": {
                "name": result.hw_model.name,
                "fidelity_test": result.hw_model.fidelity_test,
            },
        },
        "stage_cache": result.stage_cache,
        "timings": result.timings,
        "engine_stats": result.engine_stats,
        "front": [
            [float(s), float(a)] for s, a in result.final_points[order]
        ],
    }


def _write_front_csv(result, out: str) -> None:
    """Write the final Pareto front as ``ssim,area`` CSV rows."""
    order = result.final_points[:, 1].argsort()
    with open(out, "w") as handle:
        handle.write("ssim,area\n")
        for s, a in result.final_points[order]:
            handle.write(f"{s},{a}\n")


def _emit_pipeline_json(result, doc: Dict, out: Optional[str]) -> None:
    """``--json`` output of a pipeline run: pure JSON on stdout.

    ``--out`` still writes the CSV front; the confirmation goes to
    stderr so stdout stays machine-parseable.
    """
    if out:
        _write_front_csv(result, out)
        get_logger("cli").info(
            "front written", extra={"data": {"file": out}}
        )
    _emit_json(doc)


def _print_pipeline_result(result, out: Optional[str]) -> None:
    """Shared result reporting of the ``run`` commands."""
    sizes = result.summary_row()
    print(
        f"space: {sizes['all_possible']:.3g} -> "
        f"{sizes['after_preprocessing']:.3g} -> "
        f"{int(sizes['pseudo_pareto'])} pseudo -> "
        f"{int(sizes['final_pareto'])} final"
    )
    print(
        f"models: QoR={result.qor_model.name} "
        f"({result.qor_model.fidelity_test:.1%}), "
        f"HW={result.hw_model.name} "
        f"({result.hw_model.fidelity_test:.1%})"
    )
    if result.run_id is not None:
        hits = sum(
            1 for v in result.stage_cache.values() if v == "hit"
        )
        print(
            f"run {result.run_id}: {hits}/{len(result.stage_cache)} "
            f"stages from cache"
        )
    order = result.final_points[:, 1].argsort()
    print(format_table(
        ["SSIM", "area (um^2)"],
        [[f"{s:.4f}", f"{a:.1f}"]
         for s, a in result.final_points[order]],
    ))
    if out:
        _write_front_csv(result, out)
        print(f"front written to {out}")


def _run_accelerator_pipeline(
    accelerator_name: str,
    library_path: Optional[str],
    scale: float,
    n_images: int,
    train: int,
    evals: int,
    seed: int,
    workers: Optional[int],
    store,
    out: Optional[str] = None,
):
    from repro.core.pipeline import AutoAx, AutoAxConfig
    from repro.experiments.setup import scaled_library
    from repro.imaging.datasets import benchmark_images
    from repro.library.io import load_library

    if library_path:
        library = load_library(library_path)
    else:
        library = scaled_library(scale, seed=seed, store=store)
    accelerator = ACCELERATORS[accelerator_name]()
    images = benchmark_images(n_images)
    config = AutoAxConfig(
        n_train=train,
        n_test=max(2, train // 2),
        max_evaluations=evals,
        seed=seed,
        workers=workers,
    )
    pipeline = AutoAx(
        accelerator, library, images, config=config, store=store,
        run_kind="run", run_label=accelerator_name,
        run_params={
            "command": "run",
            "accelerator": accelerator_name,
            "library": library_path,
            "scale": scale,
            "images": n_images,
            "train": train,
            "evals": evals,
            "seed": seed,
            "out": out,
        },
    )
    return pipeline.run()


def _cmd_run(args: argparse.Namespace) -> int:
    result = _run_accelerator_pipeline(
        args.accelerator, args.library, args.scale, args.images,
        args.train, args.evals, args.seed, args.workers,
        _resolve_store(args.store), out=args.out,
    )
    if args.json:
        _emit_pipeline_json(
            result,
            _result_doc(result, "accelerator", args.accelerator),
            args.out,
        )
    else:
        _print_pipeline_result(result, args.out)
    return 0


def _run_workload_pipeline(
    name: str,
    scale: Optional[float],
    n_images: int,
    train: int,
    evals: int,
    seed: int,
    workers: Optional[int],
    store,
    out: Optional[str] = None,
):
    # Shared with `runs resume` and the serving layer: one entry point
    # guarantees byte-identical results and common stage-cache keys.
    from repro.experiments.setup import run_workload_pipeline

    return run_workload_pipeline(
        name, scale=scale, n_images=n_images, train=train, evals=evals,
        seed=seed, workers=workers, store=store, out=out,
    )


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS

    if args.workloads_command == "list":
        rows = []
        for workload in WORKLOADS:
            accelerator = workload.build_accelerator()
            scenarios = workload.build_scenarios()
            rows.append(
                [
                    workload.name,
                    f"{accelerator.window}x{accelerator.window}",
                    len(accelerator.op_slots()),
                    len(scenarios) if scenarios else 1,
                    ",".join(workload.tags),
                    workload.description,
                ]
            )
        print(
            format_table(
                ["workload", "window", "op slots", "scenarios",
                 "tags", "description"],
                rows,
            )
        )
        return 0

    # workloads run <name>
    setup, result = _run_workload_pipeline(
        args.name, args.scale, args.images, args.train, args.evals,
        args.seed, args.workers, _resolve_store(args.store),
        out=args.out,
    )
    if args.json:
        doc = _result_doc(result, "workload", args.name)
        doc["runs_per_config"] = setup.bundle.run_count
        _emit_pipeline_json(result, doc, args.out)
    else:
        print(
            f"workload {args.name}: {setup.bundle.run_count} "
            f"runs/config ({len(setup.images)} images x "
            f"{len(setup.scenarios or [None])} scenarios)"
        )
        _print_pipeline_result(result, args.out)
    return 0


def _run_search(
    workload: str,
    scale: Optional[float],
    n_images: int,
    train: int,
    test: int,
    budget: int,
    strategies: List[str],
    rounds: int,
    seed: int,
    engines: List[str],
    workers: Optional[int],
    store,
    resume_from: Optional[str] = None,
    executor=None,
):
    """Fit estimation models for a workload and run the portfolio."""
    from repro.accelerators.profiler import profile_accelerator
    from repro.core.preprocessing import reduce_library
    from repro.experiments.setup import (
        build_workload_engine,
        fit_search_models,
        workload_setup,
    )
    from repro.search import PortfolioRunner

    setup = workload_setup(
        workload, scale=scale, n_images=n_images, seed=seed,
    )
    profiles = profile_accelerator(
        setup.accelerator, setup.images, rng=seed
    )
    space = reduce_library(setup.accelerator, setup.library, profiles)
    engine = build_workload_engine(setup, workers=workers)
    qor_model, hw_model = fit_search_models(
        space, engine, train, test, engines=engines, seed=seed,
        workers=workers,
    )
    runner = PortfolioRunner(
        space,
        qor_model,
        hw_model,
        strategies=strategies,
        rounds=rounds,
        seed=seed,
        workers=workers,
        store=store,
        executor=executor,
        label=f"search:{workload}",
        run_params={
            "command": "search",
            "workload": workload,
            "scale": scale,
            "images": n_images,
            "train": train,
            "test": test,
            "budget": budget,
            "strategies": list(strategies),
            "rounds": rounds,
            "seed": seed,
            "engines": list(engines),
        },
    )
    return runner.run(budget, resume_from=resume_from)


def _search_doc(result, workload: str) -> Dict:
    return {
        "workload": workload,
        "run_id": result.run_id,
        "resumed_from": result.resumed_from,
        "evaluations": result.evaluations,
        "max_evaluations": result.max_evaluations,
        "rounds": result.rounds,
        "front_size": len(result),
        "front": {
            "configs": [list(c) for c in result.configs],
            "points": [
                [float(p[0]), float(p[1])] for p in result.points
            ],
        },
        "islands": [
            {
                "round": r.round,
                "island": r.island,
                "strategy": r.strategy,
                "evaluations": r.evaluations,
                "front_size": r.front_size,
                "seconds": round(r.seconds, 6),
            }
            for r in result.islands
        ],
    }


def _print_search_result(result, workload: str) -> None:
    print(
        f"portfolio search on {workload}: {result.evaluations} "
        f"model evaluations (budget {result.max_evaluations}), "
        f"{len(result)} front members"
        + (f", run {result.run_id}" if result.run_id else "")
    )
    rows = [
        [
            r.round,
            r.island,
            r.strategy,
            r.evaluations,
            r.front_size,
            f"{r.seconds:.3f}",
        ]
        for r in result.islands
    ]
    print(
        format_table(
            ["round", "island", "strategy", "evals", "front",
             "seconds"],
            rows,
        )
    )


def _spawn_search_workers(count: int, store_uri: str):
    """Start ``count`` detached ``repro search-worker`` processes."""
    import os
    import subprocess

    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "search-worker",
             "--store", store_uri],
            env=env,
        )
        for _ in range(count)
    ]


def _reap_search_workers(procs) -> None:
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except Exception:
            proc.kill()
            proc.wait()


def _cmd_search(args: argparse.Namespace) -> int:
    strategies = [
        s.strip() for s in args.strategies.split(",") if s.strip()
    ]
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    store = _resolve_store(args.store)
    executor = None
    workers = []
    if args.distributed is not None:
        from repro.search import DistributedExecutor

        if store is None:
            get_logger("search").error(
                "search --distributed needs an experiment store "
                "(--store URI or REPRO_STORE_DIR)"
            )
            return 2
        executor = DistributedExecutor(label=f"search:{args.workload}")
        if args.distributed > 0:
            # Materialise the store (mkdir + index) before the workers
            # probe it, or they would race the first driver write.
            store.backend.initialize()
            workers = _spawn_search_workers(args.distributed, store.uri)
    try:
        result = _run_search(
            args.workload, args.scale, args.images, args.train,
            args.test, args.budget, strategies, args.rounds, args.seed,
            engines, args.workers, store, executor=executor,
        )
    finally:
        _reap_search_workers(workers)
    if args.json:
        _emit_json({"search": _search_doc(result, args.workload)})
    else:
        _print_search_result(result, args.workload)
    return 0


def _restore_sigint() -> None:
    """Make Ctrl-C / ``kill -INT`` work even when launched as ``cmd &``.

    Shells start background jobs with SIGINT set to ignore, and Python
    keeps an inherited ignore — so a long-running server/worker would
    be unstoppable by SIGINT.  These commands rely on
    ``KeyboardInterrupt`` for graceful shutdown, so restore the default
    handler explicitly.
    """
    import signal

    if signal.getsignal(signal.SIGINT) == signal.SIG_IGN:
        signal.signal(signal.SIGINT, signal.default_int_handler)


def _cmd_search_worker(args: argparse.Namespace) -> int:
    from repro.search import run_worker
    from repro.store import require_store

    _restore_sigint()
    store = require_store(args.store)
    log = get_logger("search-worker")
    log.info(f"search worker draining {store.uri}")
    try:
        executed = run_worker(
            store,
            poll=args.poll,
            idle_timeout=args.idle_timeout,
            max_items=args.max_items,
        )
    except KeyboardInterrupt:
        log.info("search worker: shutting down")
        return 0
    log.info(f"search worker done ({executed} items)")
    return 0


# -- runs (experiment-store ledger) -----------------------------------------


def _runs_ledger(args: argparse.Namespace):
    from repro.store import RunLedger, require_store

    store = require_store(args.store_dir)
    return store, RunLedger(store)


def _stage_hits(manifest: Dict) -> str:
    stages = manifest.get("stages", [])
    hits = sum(1 for s in stages if s.get("cache") == "hit")
    return f"{hits}/{len(stages)}"


def _cmd_runs_list(args: argparse.Namespace) -> int:
    _, ledger = _runs_ledger(args)
    manifests = ledger.runs(kind=args.kind)
    if args.json:
        _emit_json({"runs": manifests})
        return 0
    rows = [
        [
            m.get("run_id", "?"),
            m.get("kind", "?"),
            m.get("label", ""),
            m.get("status", "?"),
            _stage_hits(m),
            f"{m.get('total_seconds', 0.0):.2f}",
            m.get("created_at", ""),
        ]
        for m in manifests
    ]
    print(
        format_table(
            ["run", "kind", "label", "status", "cache", "seconds",
             "created (UTC)"],
            rows,
        )
    )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    _, ledger = _runs_ledger(args)
    manifest = ledger.get(args.run_id)
    if args.json:
        _emit_json({"run": manifest})
        return 0
    for key in ("run_id", "kind", "label", "status", "created_at",
                "seed", "config_hash", "total_seconds"):
        print(f"{key}: {manifest.get(key)}")
    print(f"params: {json.dumps(manifest.get('params', {}), sort_keys=True)}")
    stages = manifest.get("stages", [])
    total = sum(s.get("seconds", 0.0) for s in stages) or 1.0
    rows = [
        [
            stage.get("name", "?"),
            stage.get("cache", "?"),
            f"{stage.get('seconds', 0.0):.3f}",
            f"{100.0 * stage.get('seconds', 0.0) / total:.1f}%",
            ", ".join(
                f"{a['kind']}:{a['key'][:12]}"
                for a in stage.get("artifacts", [])
            ),
        ]
        for stage in stages
    ]
    print(format_table(
        ["stage", "cache", "seconds", "% of total", "artifacts"], rows
    ))
    hits = sum(1 for s in stages if s.get("cache") == "hit")
    print(f"cache: {hits}/{len(stages)} stages hit")
    extra = manifest.get("extra") or {}
    engine_stats = extra.get("engine_stats")
    if engine_stats:
        print(
            "engine: "
            + " ".join(
                f"{key}={value}"
                for key, value in sorted(engine_stats.items())
            )
        )
    metrics = extra.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        print(format_table(
            ["metric", "count"],
            [[name, counters[name]] for name in sorted(counters)],
        ))
    histograms = metrics.get("histograms") or {}
    if histograms:
        print(format_table(
            ["histogram", "count", "p50", "p95", "p99"],
            [
                [
                    name,
                    h.get("count", 0),
                    f"{h.get('p50') or 0.0:.4g}",
                    f"{h.get('p95') or 0.0:.4g}",
                    f"{h.get('p99') or 0.0:.4g}",
                ]
                for name, h in sorted(histograms.items())
            ],
        ))
    return 0


def _cmd_runs_resume(args: argparse.Namespace) -> int:
    from repro.errors import StoreError

    store, ledger = _runs_ledger(args)
    manifest = ledger.get(args.run_id)
    params = manifest.get("params") or {}
    command = params.get("command")
    if command == "workloads":
        _, result = _run_workload_pipeline(
            params["name"], params.get("scale"), params["images"],
            params["train"], params["evals"], params["seed"],
            args.workers, store, out=params.get("out"),
        )
        label_key, label = "workload", params["name"]
    elif command == "run":
        result = _run_accelerator_pipeline(
            params["accelerator"], params.get("library"),
            params["scale"], params["images"], params["train"],
            params["evals"], params["seed"], args.workers, store,
            out=params.get("out"),
        )
        label_key, label = "accelerator", params["accelerator"]
    elif command == "search":
        result = _run_search(
            params["workload"], params.get("scale"), params["images"],
            params["train"], params["test"], params["budget"],
            list(params["strategies"]), params["rounds"],
            params["seed"], list(params["engines"]), args.workers,
            store, resume_from=args.run_id,
        )
        if args.json:
            doc = _search_doc(result, params["workload"])
            doc["resumed_from"] = args.run_id
            _emit_json({"search": doc})
        else:
            print(f"resumed {args.run_id} -> {result.run_id}")
            _print_search_result(result, params["workload"])
        return 0
    else:
        raise StoreError(
            f"run {args.run_id!r} has no resumable params "
            f"(command={command!r})"
        )
    if args.json:
        doc = _result_doc(result, label_key, label)
        doc["resumed_from"] = args.run_id
        _emit_json(doc)
    else:
        print(f"resumed {args.run_id} -> {result.run_id}")
        _print_pipeline_result(result, None)
    return 0


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    from repro.errors import StoreError

    try:
        store, ledger = _runs_ledger(args)
        keep_kinds = () if args.all else None
        stats = store.gc(
            ledger.referenced_artifacts(),
            keep_kinds=keep_kinds,
            dry_run=args.dry_run,
        )
    except StoreError as exc:
        print(f"gc failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _emit_json({"gc": stats, "store": store.uri})
        return 0
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"gc {store.uri}: {verb} {stats['removed']} artifacts "
        f"({stats['freed_bytes']} bytes), kept {stats['kept']}"
    )
    by_kind = stats.get("by_kind") or {}
    if by_kind:
        print(format_table(
            ["kind", "artifacts", "bytes"],
            [
                [kind, entry["count"], entry["bytes"]]
                for kind, entry in sorted(by_kind.items())
            ],
        ))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    return {
        "list": _cmd_runs_list,
        "show": _cmd_runs_show,
        "resume": _cmd_runs_resume,
        "gc": _cmd_runs_gc,
    }[args.runs_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serve import (
        SERVE_KEYS_ENV,
        ApiKeyRegistry,
        Coordinator,
        ServeApp,
        default_port,
        serve_forever,
    )

    keys = ApiKeyRegistry(
        args.keys if args.keys is not None
        else os.environ.get(SERVE_KEYS_ENV)
    )
    coordinator = Coordinator(
        store=_resolve_store(args.store),
        workers=args.workers,
        parallel_jobs=args.parallel_jobs,
    )
    app = ServeApp(coordinator, keys)
    port = args.port if args.port is not None else default_port()

    log = get_logger("serve")

    def ready(actual_port: int) -> None:
        mode = (
            f"{len(keys.accounts)} API key(s)" if keys.enabled
            else "open (no API keys)"
        )
        where = (
            coordinator.store.uri if coordinator.store else "none"
        )
        log.info(
            f"repro serve on http://{args.host}:{actual_port} "
            f"[auth: {mode}, store: {where}]"
        )

    try:
        _restore_sigint()
        asyncio.run(
            serve_forever(app, host=args.host, port=port, ready=ready)
        )
    except KeyboardInterrupt:
        log.info("repro serve: shutting down")
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    from repro.circuits.base import (
        ExactAdder,
        ExactMultiplier,
        ExactSubtractor,
    )
    from repro.library.component import record_from_circuit
    from repro.netlist.verilog import to_verilog
    from repro.synthesis.synthesizer import optimize

    accelerator = ACCELERATORS[args.accelerator]()
    records = {}
    for slot in accelerator.op_slots():
        kind, width = slot.signature
        klass = {
            "add": ExactAdder,
            "sub": ExactSubtractor,
            "mul": ExactMultiplier,
        }[kind]
        records[slot.name] = record_from_circuit(
            klass(width), sample_size=1 << 8
        )
    netlist = accelerator.to_netlist(records)
    if args.optimize:
        optimize(netlist)
    text = to_verilog(netlist, module_name=args.accelerator)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({netlist.gate_count()} gates)")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="autoAx (DAC 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="Table 1 operation inventory")

    gen = sub.add_parser("generate-library",
                         help="build a characterised library")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out",
                     help="library JSON file (optional with --store)")
    _add_workers_arg(gen)
    _add_store_arg(gen)
    gen.add_argument("--json", action="store_true",
                     help="machine-readable result document")

    prof = sub.add_parser("profile", help="operand profiling stats")
    _add_accelerator_arg(prof)
    prof.add_argument("--images", type=int, default=4)
    prof.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="full autoAx pipeline")
    _add_accelerator_arg(run)
    run.add_argument("--library", help="library JSON (else generated)")
    run.add_argument("--scale", type=float, default=0.01)
    run.add_argument("--images", type=int, default=4)
    run.add_argument("--train", type=int, default=150)
    run.add_argument("--evals", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    _add_workers_arg(run)
    _add_store_arg(run)
    _add_trace_arg(run)
    run.add_argument("--json", action="store_true",
                     help="machine-readable result document")
    run.add_argument("--out", help="CSV file for the final front")

    workloads = sub.add_parser("workloads",
                               help="workload registry operations")
    wl_sub = workloads.add_subparsers(dest="workloads_command",
                                      required=True)
    wl_sub.add_parser("list", help="print the registered workloads")
    wl_run = wl_sub.add_parser(
        "run", help="full autoAx pipeline on a registered workload"
    )
    wl_run.add_argument("name", help="workload name (see 'list')")
    wl_run.add_argument("--scale", type=float, default=None,
                        help="library scale (default: REPRO_SCALE)")
    wl_run.add_argument("--images", type=int, default=4)
    wl_run.add_argument("--train", type=int, default=150)
    wl_run.add_argument("--evals", type=int, default=10_000)
    wl_run.add_argument("--seed", type=int, default=0)
    _add_workers_arg(wl_run)
    _add_store_arg(wl_run)
    _add_trace_arg(wl_run)
    wl_run.add_argument("--json", action="store_true",
                        help="machine-readable result document")
    wl_run.add_argument("--out", help="CSV file for the final front")

    search = sub.add_parser(
        "search", help="parallel portfolio design-space search"
    )
    search.add_argument("--workload", default="sobel",
                        help="workload name (see 'workloads list')")
    search.add_argument("--budget", type=int, default=2_000,
                        help="exact model-evaluation budget")
    search.add_argument(
        "--strategies", default="hill,nsga2,random",
        help="comma-separated islands: hill, nsga2, random, "
             "exhaustive (each may take args, e.g. "
             "'nsga2:population_size=24')",
    )
    search.add_argument("--rounds", type=int, default=2,
                        help="merge/migrate rounds")
    search.add_argument("--scale", type=float, default=None,
                        help="library scale (default: REPRO_SCALE)")
    search.add_argument("--images", type=int, default=2)
    search.add_argument("--train", type=int, default=60,
                        help="real-evaluated training configurations")
    search.add_argument("--test", type=int, default=30,
                        help="held-out configurations for fidelity")
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--engines", default="K-Neighbors",
                        help="comma-separated learning engines")
    search.add_argument(
        "--distributed", type=int, default=None, metavar="N",
        help="run islands on a store-backed work queue serviced by N "
             "spawned search-worker processes (0 = rely on externally "
             "started workers); requires a store",
    )
    _add_workers_arg(search)
    _add_store_arg(search)
    _add_trace_arg(search)
    search.add_argument("--json", action="store_true",
                        help="machine-readable result document")

    worker = sub.add_parser(
        "search-worker",
        help="execute distributed-search work items from a store",
    )
    worker.add_argument(
        "--store", default=None, metavar="URI",
        help="experiment store to drain (path or URI; default: "
             "REPRO_STORE_DIR)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5,
        help="seconds between empty queue scans (default: 0.5)",
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this many idle seconds (default: run until "
             "killed)",
    )
    worker.add_argument(
        "--max-items", type=int, default=None,
        help="exit after executing this many items",
    )

    runs = sub.add_parser(
        "runs", help="experiment-store run ledger operations"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    specs = {
        "list": "list recorded pipeline runs",
        "show": "print one run's manifest",
        "resume": "re-execute a recorded run against the warm store",
        "gc": "drop store artifacts no run manifest references",
    }
    for name, help_text in specs.items():
        cmd = runs_sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "--store-dir", default=None, metavar="URI",
            help="store root or URI (sqlite:PATH, "
                 "sharded:PATH?shards=N, http://host:port; default: "
                 "REPRO_STORE_DIR / REPRO_CACHE_DIR / .repro-store)",
        )
        cmd.add_argument("--json", action="store_true",
                         help="machine-readable output")
        if name == "list":
            cmd.add_argument(
                "--kind", default=None,
                help="only manifests of this kind "
                     "(e.g. workload, search, serve-job)",
            )
        if name in ("show", "resume"):
            cmd.add_argument("run_id", help="ledger run id")
        if name == "resume":
            _add_workers_arg(cmd)
        if name == "gc":
            cmd.add_argument(
                "--all", action="store_true",
                help="also drop unreferenced shared pools "
                     "(synthesis reports, libraries)",
            )
            cmd.add_argument(
                "--dry-run", action="store_true",
                help="report what would be removed (per-kind counts "
                     "and byte totals) without deleting anything",
            )

    serve = sub.add_parser(
        "serve", help="HTTP approximation service (submit/poll jobs)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: REPRO_SERVE_PORT env or 8035; "
             "0 picks a free port)",
    )
    serve.add_argument(
        "--keys", default=None,
        help="comma-separated API keys '[name=]secret[:budget]' "
             "(default: REPRO_SERVE_KEYS env; none => open server)",
    )
    serve.add_argument(
        "--parallel-jobs", type=int, default=1,
        help="concurrent pipeline passes (default: 1; parallelism "
             "lives inside a pass via --workers)",
    )
    _add_workers_arg(serve)
    _add_store_arg(serve)
    _add_trace_arg(serve)

    export = sub.add_parser("export-verilog",
                            help="structural Verilog of an accelerator")
    _add_accelerator_arg(export)
    export.add_argument("--out", help="output .v file (else stdout)")
    export.add_argument("--optimize", action="store_true",
                        help="run synthesis optimisation first")

    return parser


_COMMANDS = {
    "inventory": _cmd_inventory,
    "generate-library": _cmd_generate_library,
    "profile": _cmd_profile,
    "run": _cmd_run,
    "workloads": _cmd_workloads,
    "search": _cmd_search,
    "search-worker": _cmd_search_worker,
    "runs": _cmd_runs,
    "serve": _cmd_serve,
    "export-verilog": _cmd_export_verilog,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging()
    with _tracing(args.command, getattr(args, "trace", None)):
        return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
