"""Command-line interface: ``python -m repro <command>``.

Commands

* ``inventory`` — print the operation inventory of the case-study
  accelerators (Table 1).
* ``generate-library`` — build and characterise a component library and
  save it as JSON.
* ``profile`` — profile an accelerator on the synthetic benchmark set and
  print per-operation operand statistics (Fig. 3 numbers).
* ``run`` — execute the full autoAx pipeline and print (optionally save)
  the final Pareto front.
* ``workloads`` — ``list`` the registered workloads or ``run <name>``:
  the full pipeline on any registry entry, with a library generated (and
  cached) to cover exactly that workload's operation signatures.
* ``export-verilog`` — lower an accelerator with exact components and
  write structural Verilog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import GenericGaussianFilter
from repro.accelerators.sobel import SobelEdgeDetector
from repro.utils.tabulate import format_table

ACCELERATORS = {
    "sobel": SobelEdgeDetector,
    "fixed_gf": FixedGaussianFilter,
    "generic_gf": GenericGaussianFilter,
}


def _workers_arg(text: str) -> int:
    """argparse type for ``--workers``: clear error on bad values.

    The validated value is passed through verbatim — an explicit
    ``--workers 1`` must reach the engine as 1 (forcing in-process
    evaluation) rather than collapsing to the ``REPRO_WORKERS``
    fallback.
    """
    from repro.core.engine import validate_workers

    try:
        validate_workers(text, source="--workers")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(text)


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_workers_arg, default=None,
        help="worker processes for real evaluation "
             "(default: REPRO_WORKERS env or in-process)",
    )


def _add_accelerator_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accelerator",
        choices=sorted(ACCELERATORS),
        default="sobel",
        help="target accelerator (default: sobel)",
    )


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.experiments.table1_operations import (
        TABLE1_COLUMNS,
        table1_rows,
    )

    rows = table1_rows()
    headers = ["Problem"] + [
        f"{kind}{width}" for kind, width in TABLE1_COLUMNS
    ] + ["Total"]
    print(
        format_table(
            headers,
            [[r["problem"], *r["counts"], r["total"]] for r in rows],
        )
    )
    return 0


def _cmd_generate_library(args: argparse.Namespace) -> int:
    from repro.library.generation import generate_library, scaled_plan
    from repro.library.io import save_library

    plan = scaled_plan(args.scale, seed=args.seed)
    print(f"generating {plan.total()} components...", file=sys.stderr)
    library = generate_library(plan)
    save_library(library, args.out)
    print(f"wrote {len(library)} components to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.accelerators.profiler import profile_accelerator
    from repro.imaging.datasets import benchmark_images

    accelerator = ACCELERATORS[args.accelerator]()
    images = benchmark_images(args.images)
    profiles = profile_accelerator(accelerator, images, rng=args.seed)
    rows = []
    for name, profile in profiles.items():
        rows.append(
            [
                name,
                f"{profile.signature[0]}{profile.signature[1]}",
                profile.total_count,
                "dense" if profile.pmf is not None else "sampled",
                profile.sample_a.size,
            ]
        )
    print(
        format_table(
            ["op", "signature", "operand pairs", "PMF", "samples"],
            rows,
        )
    )
    return 0


def _print_pipeline_result(result, out: Optional[str]) -> None:
    """Shared result reporting of the ``run`` commands."""
    sizes = result.summary_row()
    print(
        f"space: {sizes['all_possible']:.3g} -> "
        f"{sizes['after_preprocessing']:.3g} -> "
        f"{int(sizes['pseudo_pareto'])} pseudo -> "
        f"{int(sizes['final_pareto'])} final"
    )
    print(
        f"models: QoR={result.qor_model.name} "
        f"({result.qor_model.fidelity_test:.1%}), "
        f"HW={result.hw_model.name} "
        f"({result.hw_model.fidelity_test:.1%})"
    )
    order = result.final_points[:, 1].argsort()
    print(format_table(
        ["SSIM", "area (um^2)"],
        [[f"{s:.4f}", f"{a:.1f}"]
         for s, a in result.final_points[order]],
    ))
    if out:
        with open(out, "w") as handle:
            handle.write("ssim,area\n")
            for s, a in result.final_points[order]:
                handle.write(f"{s},{a}\n")
        print(f"front written to {out}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.pipeline import AutoAx, AutoAxConfig
    from repro.imaging.datasets import benchmark_images
    from repro.library.generation import generate_library, scaled_plan
    from repro.library.io import load_library

    if args.library:
        library = load_library(args.library)
    else:
        library = generate_library(scaled_plan(args.scale,
                                               seed=args.seed))
    accelerator = ACCELERATORS[args.accelerator]()
    images = benchmark_images(args.images)
    config = AutoAxConfig(
        n_train=args.train,
        n_test=max(2, args.train // 2),
        max_evaluations=args.evals,
        seed=args.seed,
        workers=args.workers,
    )
    result = AutoAx(accelerator, library, images, config=config).run()
    _print_pipeline_result(result, args.out)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS

    if args.workloads_command == "list":
        rows = []
        for workload in WORKLOADS:
            accelerator = workload.build_accelerator()
            scenarios = workload.build_scenarios()
            rows.append(
                [
                    workload.name,
                    f"{accelerator.window}x{accelerator.window}",
                    len(accelerator.op_slots()),
                    len(scenarios) if scenarios else 1,
                    ",".join(workload.tags),
                    workload.description,
                ]
            )
        print(
            format_table(
                ["workload", "window", "op slots", "scenarios",
                 "tags", "description"],
                rows,
            )
        )
        return 0

    # workloads run <name>
    from repro.core.pipeline import AutoAx, AutoAxConfig
    from repro.experiments.setup import workload_setup

    setup = workload_setup(
        args.name,
        scale=args.scale,
        n_images=args.images,
        seed=args.seed,
    )
    config = AutoAxConfig(
        n_train=args.train,
        n_test=max(2, args.train // 2),
        max_evaluations=args.evals,
        seed=args.seed,
        workers=args.workers,
    )
    pipeline = AutoAx(
        setup.accelerator,
        setup.library,
        setup.images,
        scenarios=setup.scenarios,
        config=config,
    )
    result = pipeline.run()
    print(
        f"workload {args.name}: {setup.bundle.run_count} runs/config "
        f"({len(setup.images)} images x "
        f"{len(setup.scenarios or [None])} scenarios)"
    )
    _print_pipeline_result(result, args.out)
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    from repro.circuits.base import (
        ExactAdder,
        ExactMultiplier,
        ExactSubtractor,
    )
    from repro.library.component import record_from_circuit
    from repro.netlist.verilog import to_verilog
    from repro.synthesis.synthesizer import optimize

    accelerator = ACCELERATORS[args.accelerator]()
    records = {}
    for slot in accelerator.op_slots():
        kind, width = slot.signature
        klass = {
            "add": ExactAdder,
            "sub": ExactSubtractor,
            "mul": ExactMultiplier,
        }[kind]
        records[slot.name] = record_from_circuit(
            klass(width), sample_size=1 << 8
        )
    netlist = accelerator.to_netlist(records)
    if args.optimize:
        optimize(netlist)
    text = to_verilog(netlist, module_name=args.accelerator)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({netlist.gate_count()} gates)")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="autoAx (DAC 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="Table 1 operation inventory")

    gen = sub.add_parser("generate-library",
                         help="build a characterised library")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)

    prof = sub.add_parser("profile", help="operand profiling stats")
    _add_accelerator_arg(prof)
    prof.add_argument("--images", type=int, default=4)
    prof.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="full autoAx pipeline")
    _add_accelerator_arg(run)
    run.add_argument("--library", help="library JSON (else generated)")
    run.add_argument("--scale", type=float, default=0.01)
    run.add_argument("--images", type=int, default=4)
    run.add_argument("--train", type=int, default=150)
    run.add_argument("--evals", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    _add_workers_arg(run)
    run.add_argument("--out", help="CSV file for the final front")

    workloads = sub.add_parser("workloads",
                               help="workload registry operations")
    wl_sub = workloads.add_subparsers(dest="workloads_command",
                                      required=True)
    wl_sub.add_parser("list", help="print the registered workloads")
    wl_run = wl_sub.add_parser(
        "run", help="full autoAx pipeline on a registered workload"
    )
    wl_run.add_argument("name", help="workload name (see 'list')")
    wl_run.add_argument("--scale", type=float, default=None,
                        help="library scale (default: REPRO_SCALE)")
    wl_run.add_argument("--images", type=int, default=4)
    wl_run.add_argument("--train", type=int, default=150)
    wl_run.add_argument("--evals", type=int, default=10_000)
    wl_run.add_argument("--seed", type=int, default=0)
    _add_workers_arg(wl_run)
    wl_run.add_argument("--out", help="CSV file for the final front")

    export = sub.add_parser("export-verilog",
                            help="structural Verilog of an accelerator")
    _add_accelerator_arg(export)
    export.add_argument("--out", help="output .v file (else stdout)")
    export.add_argument("--optimize", action="store_true",
                        help="run synthesis optimisation first")

    return parser


_COMMANDS = {
    "inventory": _cmd_inventory,
    "generate-library": _cmd_generate_library,
    "profile": _cmd_profile,
    "run": _cmd_run,
    "workloads": _cmd_workloads,
    "export-verilog": _cmd_export_verilog,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
