"""Approximate adder families.

Implemented families (operand width ``n``, result width ``n+1``):

* :class:`TruncatedAdder` — the lowest ``t`` bits are not computed; the
  result's low bits are filled with zeros, a mid-point constant, or a copy
  of operand ``a``.
* :class:`LowerOrAdder` (LOA) — the lowest ``l`` result bits are ``a | b``;
  the upper part is an exact adder whose carry-in is ``a[l-1] & b[l-1]``.
* :class:`AlmostCorrectAdder` (ACA) — every carry is speculated from a
  sliding window of the previous ``w`` bit positions.
* :class:`GeArAdder` — generic accuracy-configurable adder: overlapping
  sub-adders of ``R`` result bits with ``P`` previous bits used for carry
  prediction.
* :class:`QuAdAdder` — quality-area optimal adders: an arbitrary partition
  of the ``n`` bits into independent blocks, each with a configurable
  number of carry-prediction bits.  This family has an exponentially large
  configuration space and supplies most of the library volume (the paper's
  Table 2 lists 6979 8-bit adders).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.circuits.base import ArithmeticCircuit, Operation
from repro.errors import CircuitError
from repro.utils.bitops import bit_mask

_TRUNC_FILLS = ("zero", "half", "copy")


class TruncatedAdder(ArithmeticCircuit):
    """Adder that ignores the ``t`` least significant bits of both operands."""

    op = Operation.ADD

    def __init__(self, width: int, trunc_bits: int, fill: str = "zero"):
        if not 0 <= trunc_bits <= width:
            raise CircuitError(
                f"trunc_bits must be in [0, {width}], got {trunc_bits}"
            )
        if fill not in _TRUNC_FILLS:
            raise CircuitError(f"fill must be one of {_TRUNC_FILLS}, got {fill!r}")
        super().__init__(width, name=f"add{width}_tra_t{trunc_bits}_{fill}")
        self.trunc_bits = int(trunc_bits)
        self.fill = fill

    def is_exact(self) -> bool:
        return self.trunc_bits == 0

    def params(self) -> Dict[str, object]:
        return {"trunc_bits": self.trunc_bits, "fill": self.fill}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        t = self.trunc_bits
        upper = ((a >> t) + (b >> t)) << t
        if t == 0 or self.fill == "zero":
            return upper
        if self.fill == "half":
            return upper + (1 << (t - 1))
        return upper + (a & bit_mask(t))


class LowerOrAdder(ArithmeticCircuit):
    """LOA: lower ``l`` bits approximated by a bitwise OR."""

    op = Operation.ADD

    def __init__(self, width: int, or_bits: int):
        if not 0 <= or_bits <= width:
            raise CircuitError(f"or_bits must be in [0, {width}], got {or_bits}")
        super().__init__(width, name=f"add{width}_loa_l{or_bits}")
        self.or_bits = int(or_bits)

    def is_exact(self) -> bool:
        return self.or_bits == 0

    def params(self) -> Dict[str, object]:
        return {"or_bits": self.or_bits}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        l = self.or_bits
        if l == 0:
            return a + b
        low = (a | b) & bit_mask(l)
        carry = (a >> (l - 1)) & (b >> (l - 1)) & 1
        upper = (a >> l) + (b >> l) + carry
        return (upper << l) | low


class AlmostCorrectAdder(ArithmeticCircuit):
    """ACA: each carry is speculated from the previous ``window`` positions."""

    op = Operation.ADD

    def __init__(self, width: int, window: int):
        if not 1 <= window <= width:
            raise CircuitError(f"window must be in [1, {width}], got {window}")
        super().__init__(width, name=f"add{width}_aca_w{window}")
        self.window = int(window)

    def is_exact(self) -> bool:
        return self.window == self.width

    def params(self) -> Dict[str, object]:
        return {"window": self.window}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n, w = self.width, self.window
        result = np.zeros_like(a)
        for i in range(n + 1):
            start = max(0, i - w)
            seg_mask = bit_mask(i - start)
            seg_sum = ((a >> start) & seg_mask) + ((b >> start) & seg_mask)
            carry_in = (seg_sum >> (i - start)) & 1
            if i == n:
                result = result | (carry_in << n)
            else:
                bit = ((a >> i) ^ (b >> i) ^ carry_in) & 1
                result = result | (bit << i)
        return result


def _check_blocks(width: int, blocks: Sequence[int]) -> Tuple[int, ...]:
    blocks = tuple(int(x) for x in blocks)
    if not blocks or any(x < 1 for x in blocks):
        raise CircuitError(f"blocks must be positive, got {blocks}")
    if sum(blocks) != width:
        raise CircuitError(
            f"blocks {blocks} must sum to the operand width {width}"
        )
    return blocks


class QuAdAdder(ArithmeticCircuit):
    """QuAd-style block adder with per-block carry prediction.

    ``blocks`` lists the block lengths from LSB to MSB and must sum to the
    operand width.  ``predictions[k]`` is the number of bits directly below
    block ``k`` used to speculate its carry-in (0 means carry-in is tied to
    zero).  The first block always has carry-in zero.
    """

    op = Operation.ADD

    def __init__(
        self,
        width: int,
        blocks: Sequence[int],
        predictions: Sequence[int] = (),
    ):
        blocks = _check_blocks(width, blocks)
        if not predictions:
            predictions = tuple(0 for _ in blocks)
        predictions = tuple(int(p) for p in predictions)
        if len(predictions) != len(blocks):
            raise CircuitError("predictions must match blocks in length")
        offsets = []
        total = 0
        for length in blocks:
            offsets.append(total)
            total += length
        for k, pred in enumerate(predictions):
            if pred < 0 or pred > offsets[k]:
                raise CircuitError(
                    f"prediction {pred} of block {k} exceeds available "
                    f"lower bits ({offsets[k]})"
                )
        tag = "-".join(f"{l}p{p}" for l, p in zip(blocks, predictions))
        super().__init__(width, name=f"add{width}_quad_{tag}")
        self.blocks = blocks
        self.predictions = predictions
        self._offsets = tuple(offsets)

    def is_exact(self) -> bool:
        return len(self.blocks) == 1

    def params(self) -> Dict[str, object]:
        return {"blocks": list(self.blocks), "predictions": list(self.predictions)}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = np.zeros_like(a)
        for k, (length, pred) in enumerate(zip(self.blocks, self.predictions)):
            offset = self._offsets[k]
            start = offset - pred
            seg_bits = pred + length
            seg_mask = bit_mask(seg_bits)
            seg_sum = ((a >> start) & seg_mask) + ((b >> start) & seg_mask)
            block_val = (seg_sum >> pred) & bit_mask(length)
            result = result | (block_val << offset)
            if k == len(self.blocks) - 1:
                carry_out = (seg_sum >> seg_bits) & 1
                result = result | (carry_out << self.width)
        return result


class GeArAdder(QuAdAdder):
    """GeAr(n, R, P): uniform sub-adders of ``R`` bits with ``P`` prediction
    bits — a regular special case of the QuAd block structure."""

    def __init__(self, width: int, resultant: int, previous: int):
        if resultant < 1:
            raise CircuitError("resultant block size R must be >= 1")
        if previous < 0:
            raise CircuitError("prediction length P must be >= 0")
        blocks = []
        remaining = width
        while remaining > 0:
            blocks.append(min(resultant, remaining))
            remaining -= blocks[-1]
        predictions = [0]
        offset = blocks[0]
        for length in blocks[1:]:
            predictions.append(min(previous, offset))
            offset += length
        super().__init__(width, blocks, predictions)
        self.resultant = int(resultant)
        self.previous = int(previous)
        self.name = f"add{width}_gear_r{resultant}p{previous}"

    def params(self) -> Dict[str, object]:
        return {"resultant": self.resultant, "previous": self.previous}
