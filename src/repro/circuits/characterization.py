"""Error characterisation of approximate circuits.

Every library component is "fully characterised" (paper §1) by standard
error metrics computed against the exact operation:

* ``med`` — mean error distance, E[|approx - exact|]
* ``wce`` — worst-case error, max |approx - exact|
* ``mre`` — mean relative error distance, E[|approx - exact| / max(1, |exact|)]
* ``error_prob`` — probability of producing any wrong output
* ``error_var`` — variance of the signed error
* ``mse`` — mean squared error

For operand widths up to :data:`~repro.circuits.luts.MAX_LUT_WIDTH` the
metrics are exhaustive over all input pairs (uniform input distribution);
wider circuits are characterised on a seeded uniform random sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.base import ArithmeticCircuit
from repro.circuits.luts import MAX_LUT_WIDTH, build_exact_lut, build_lut
from repro.utils.bitops import bit_mask
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ErrorStats:
    """Summary error metrics of one approximate circuit."""

    med: float
    wce: int
    mre: float
    error_prob: float
    error_var: float
    mse: float

    def is_exact(self) -> bool:
        """True when no evaluated input produced an error."""
        return self.wce == 0


def _stats_from_outputs(
    approx: np.ndarray, exact: np.ndarray
) -> ErrorStats:
    signed_err = (approx - exact).astype(np.float64)
    abs_err = np.abs(signed_err)
    denom = np.maximum(np.abs(exact).astype(np.float64), 1.0)
    return ErrorStats(
        med=float(abs_err.mean()),
        wce=int(abs_err.max()),
        mre=float((abs_err / denom).mean()),
        error_prob=float((abs_err > 0).mean()),
        error_var=float(signed_err.var()),
        mse=float((signed_err**2).mean()),
    )


def sample_operands(
    width: int, count: int, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random operand pairs for a ``width``-bit circuit."""
    gen = ensure_rng(rng)
    high = bit_mask(width) + 1
    a = gen.integers(0, high, size=count, dtype=np.int64)
    b = gen.integers(0, high, size=count, dtype=np.int64)
    return a, b


def characterize(
    circuit: ArithmeticCircuit,
    sample_size: int = 1 << 15,
    rng: RngLike = 0,
    exhaustive: Optional[bool] = None,
) -> ErrorStats:
    """Compute :class:`ErrorStats` for ``circuit``.

    ``exhaustive=None`` (default) chooses exhaustive evaluation whenever the
    operand width permits a LUT, falling back to ``sample_size`` seeded
    uniform samples otherwise.
    """
    if exhaustive is None:
        exhaustive = circuit.width <= MAX_LUT_WIDTH
    if exhaustive:
        approx = build_lut(circuit)
        exact = build_exact_lut(circuit)
    else:
        a, b = sample_operands(circuit.width, sample_size, rng)
        approx = np.asarray(circuit.evaluate(a, b), dtype=np.int64)
        exact = np.asarray(circuit.exact(a, b), dtype=np.int64)
    return _stats_from_outputs(approx, exact)
