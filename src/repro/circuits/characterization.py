"""Error characterisation of approximate circuits.

Every library component is "fully characterised" (paper §1) by standard
error metrics computed against the exact operation:

* ``med`` — mean error distance, E[|approx - exact|]
* ``wce`` — worst-case error, max |approx - exact|
* ``mre`` — mean relative error distance, E[|approx - exact| / max(1, |exact|)]
* ``error_prob`` — probability of producing any wrong output
* ``error_var`` — variance of the signed error
* ``mse`` — mean squared error

For operand widths up to :data:`~repro.circuits.luts.MAX_LUT_WIDTH` the
metrics are exhaustive over all input pairs (uniform input distribution);
wider circuits are characterised on a seeded uniform random sample.  The
mode that actually ran is recorded on :attr:`ErrorStats.exhaustive` —
sampled metrics are estimates (``wce`` in particular is only a lower
bound on the true worst case), so consumers must be able to tell the two
apart.

:func:`characterize_many` is the batched front end for library
construction: it computes the same statistics for a whole chunk of
circuits while sharing the exact reference LUT per (operation, width)
and the operand sample per width, which amortises the dominant
allocation cost across the chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.base import ArithmeticCircuit
from repro.circuits.luts import MAX_LUT_WIDTH, build_exact_lut, build_lut
from repro.utils.bitops import bit_mask
from repro.utils.rng import RngLike, ensure_rng

#: Process-local count of circuits characterised since import.  The
#: warm-rebuild benchmarks assert this stays flat across a fully cached
#: library build (mirroring ``repro.core.modeling.fit_count``).
_RUNS = 0


def characterization_count() -> int:
    """Circuits characterised by this process since import."""
    return _RUNS


@dataclass(frozen=True)
class ErrorStats:
    """Summary error metrics of one approximate circuit.

    ``exhaustive`` records whether the metrics cover *all* input pairs
    (True) or a uniform random sample (False).  Sampled statistics are
    estimates; sampled ``wce`` is a lower bound on the true worst-case
    error.
    """

    med: float
    wce: int
    mre: float
    error_prob: float
    error_var: float
    mse: float
    exhaustive: bool = True

    def is_exact(self) -> bool:
        """True when no evaluated input produced an error."""
        return self.wce == 0


def _stats_from_outputs(
    approx: np.ndarray,
    exact: np.ndarray,
    exhaustive: bool,
    denom: Optional[np.ndarray] = None,
) -> ErrorStats:
    global _RUNS
    _RUNS += 1
    signed_err = (approx - exact).astype(np.float64)
    abs_err = np.abs(signed_err)
    if denom is None:
        denom = np.maximum(np.abs(exact).astype(np.float64), 1.0)
    return ErrorStats(
        med=float(abs_err.mean()),
        wce=int(abs_err.max()),
        mre=float((abs_err / denom).mean()),
        error_prob=float((abs_err > 0).mean()),
        error_var=float(signed_err.var()),
        mse=float((signed_err**2).mean()),
        exhaustive=exhaustive,
    )


def sample_operands(
    width: int, count: int, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random operand pairs for a ``width``-bit circuit."""
    gen = ensure_rng(rng)
    high = bit_mask(width) + 1
    a = gen.integers(0, high, size=count, dtype=np.int64)
    b = gen.integers(0, high, size=count, dtype=np.int64)
    return a, b


def characterize(
    circuit: ArithmeticCircuit,
    sample_size: int = 1 << 15,
    rng: RngLike = 0,
    exhaustive: Optional[bool] = None,
) -> ErrorStats:
    """Compute :class:`ErrorStats` for ``circuit``.

    ``exhaustive=None`` (default) chooses exhaustive evaluation whenever
    the operand width permits a LUT, falling back to ``sample_size``
    seeded uniform samples otherwise.  ``sample_size`` and ``rng`` only
    take effect in sampled mode; the returned stats carry the mode that
    ran on :attr:`ErrorStats.exhaustive` so callers can tell a true
    worst case from a sampled lower bound.
    """
    if exhaustive is None:
        exhaustive = circuit.width <= MAX_LUT_WIDTH
    if exhaustive:
        approx = build_lut(circuit)
        exact = build_exact_lut(circuit)
    else:
        a, b = sample_operands(circuit.width, sample_size, rng)
        approx = np.asarray(circuit.evaluate(a, b), dtype=np.int64)
        exact = np.asarray(circuit.exact(a, b), dtype=np.int64)
    return _stats_from_outputs(approx, exact, exhaustive)


def characterize_many(
    circuits: Sequence[ArithmeticCircuit],
    sample_size: int = 1 << 15,
    rng: RngLike = 0,
) -> List[ErrorStats]:
    """Characterise a batch of circuits, amortising shared inputs.

    Produces exactly the stats of ``[characterize(c, sample_size, rng)
    for c in circuits]`` when ``rng`` is a seed (each distinct width
    re-seeds its operand sample, matching :func:`characterize`'s
    per-call seeding), while computing the exact reference outputs only
    once per (operation, width) and drawing the operand sample only
    once per width.  Passing a live ``Generator`` instead consumes it
    once per distinct width in first-use order.
    """
    exact_luts: dict = {}
    operands: dict = {}
    exact_outputs: dict = {}
    denoms: dict = {}
    stats: List[ErrorStats] = []
    for circuit in circuits:
        key = (circuit.op.value, circuit.width)
        if circuit.width <= MAX_LUT_WIDTH:
            exact = exact_luts.get(key)
            if exact is None:
                exact = build_exact_lut(circuit)
                exact_luts[key] = exact
            approx = build_lut(circuit)
            exhaustive = True
        else:
            if circuit.width not in operands:
                # A seed re-seeds per width (matching characterize's
                # per-call default); a live Generator passes through
                # ensure_rng and is consumed once per distinct width.
                operands[circuit.width] = sample_operands(
                    circuit.width, sample_size, rng
                )
            a, b = operands[circuit.width]
            exact = exact_outputs.get(key)
            if exact is None:
                exact = np.asarray(circuit.exact(a, b), dtype=np.int64)
                exact_outputs[key] = exact
            approx = np.asarray(circuit.evaluate(a, b), dtype=np.int64)
            exhaustive = False
        # The MRE denominator depends only on the shared exact
        # reference, so it too is computed once per (operation, width) —
        # same float64 array, hence bit-identical statistics.
        denom = denoms.get(key)
        if denom is None:
            denom = np.maximum(np.abs(exact).astype(np.float64), 1.0)
            denoms[key] = denom
        stats.append(
            _stats_from_outputs(approx, exact, exhaustive, denom=denom)
        )
    return stats
