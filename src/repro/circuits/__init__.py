"""Behavioural models of exact and approximate arithmetic circuits.

Every circuit is a bit-accurate, vectorised functional model of a hardware
implementation: it accepts numpy integer arrays (or Python ints) and returns
the value the gate-level circuit would produce.  Families implemented here
mirror the techniques behind the libraries the paper draws from
(EvoApprox8b, QuAd adders, GeAr adders, broken-array multipliers) plus the
classic approximate multiplier constructions (partial-product masking,
perforation, Kulkarni 2x2 recursion, Mitchell logarithm, DRUM).
"""

from repro.circuits.base import (
    ArithmeticCircuit,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
    Operation,
)
from repro.circuits.adders import (
    AlmostCorrectAdder,
    GeArAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.subtractors import (
    BlockSubtractor,
    TruncatedSubtractor,
)
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    MaskedMultiplier,
    MitchellMultiplier,
    PerforatedMultiplier,
    RecursiveApproxMultiplier,
    TruncatedMultiplier,
)
from repro.circuits.characterization import ErrorStats, characterize
from repro.circuits.luts import build_lut, lut_index
from repro.circuits.netlist_backed import NetlistCircuit, wrap_netlist

__all__ = [
    "ArithmeticCircuit",
    "Operation",
    "ExactAdder",
    "ExactSubtractor",
    "ExactMultiplier",
    "TruncatedAdder",
    "LowerOrAdder",
    "AlmostCorrectAdder",
    "GeArAdder",
    "QuAdAdder",
    "TruncatedSubtractor",
    "BlockSubtractor",
    "MaskedMultiplier",
    "TruncatedMultiplier",
    "BrokenArrayMultiplier",
    "PerforatedMultiplier",
    "RecursiveApproxMultiplier",
    "MitchellMultiplier",
    "DrumMultiplier",
    "ErrorStats",
    "NetlistCircuit",
    "characterize",
    "build_lut",
    "lut_index",
    "wrap_netlist",
]
