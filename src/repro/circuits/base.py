"""Core circuit abstractions and the exact reference implementations.

Conventions
-----------
* An ``n``-bit **adder** adds two ``n``-bit unsigned operands and produces an
  ``n+1``-bit unsigned result (carry-out included).
* An ``n``-bit **subtractor** subtracts two ``n``-bit unsigned operands and
  produces a signed result in ``(-2**n, 2**n)`` (an ``n+1``-bit
  two's-complement word in hardware).
* An ``n``-bit **multiplier** multiplies two ``n``-bit unsigned operands and
  produces a ``2n``-bit unsigned result.

``evaluate`` is vectorised: it accepts scalars or integer numpy arrays and
performs all arithmetic in int64 (safe up to 16x16-bit products).  Inputs
are masked to the operand width, so callers may pass wider garbage in the
high bits.
"""

from __future__ import annotations

import enum
from typing import Dict, Union

import numpy as np

from repro.errors import CircuitError
from repro.utils.bitops import bit_mask

IntArray = Union[int, np.ndarray]


class Operation(enum.Enum):
    """Kind of arithmetic operation a circuit implements."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ArithmeticCircuit:
    """Base class of all behavioural circuit models.

    Subclasses set :attr:`op` as a class attribute, validate their family
    parameters in ``__init__`` and implement :meth:`_compute` on masked
    int64 operands.
    """

    op: Operation

    def __init__(self, width: int, name: str):
        if width < 1:
            raise CircuitError(f"operand width must be >= 1, got {width}")
        self.width = int(width)
        self.name = str(name)

    # -- public API -------------------------------------------------------

    @property
    def result_width(self) -> int:
        """Number of bits of the result word."""
        if self.op is Operation.MUL:
            return 2 * self.width
        return self.width + 1

    def evaluate(self, a: IntArray, b: IntArray) -> IntArray:
        """Return the circuit's output for operands ``a`` and ``b``."""
        scalar = np.isscalar(a) and np.isscalar(b)
        mask = bit_mask(self.width)
        a64 = np.asarray(a, dtype=np.int64) & mask
        b64 = np.asarray(b, dtype=np.int64) & mask
        result = self._compute(a64, b64)
        if scalar:
            return int(result)
        return result

    def exact(self, a: IntArray, b: IntArray) -> IntArray:
        """Exact result of this circuit's operation (golden reference)."""
        mask = bit_mask(self.width)
        a64 = np.asarray(a, dtype=np.int64) & mask
        b64 = np.asarray(b, dtype=np.int64) & mask
        if self.op is Operation.ADD:
            out = a64 + b64
        elif self.op is Operation.SUB:
            out = a64 - b64
        else:
            out = a64 * b64
        if np.isscalar(a) and np.isscalar(b):
            return int(out)
        return out

    def is_exact(self) -> bool:
        """True when the circuit never deviates from the exact operation."""
        return False

    def params(self) -> Dict[str, object]:
        """Family parameters, sufficient to reconstruct the instance."""
        return {}

    # -- subclass hook ------------------------------------------------------

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} width={self.width}>"


class ExactAdder(ArithmeticCircuit):
    """Exact ripple-carry adder reference."""

    op = Operation.ADD

    def __init__(self, width: int):
        super().__init__(width, name=f"add{width}_exact")

    def is_exact(self) -> bool:
        return True

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class ExactSubtractor(ArithmeticCircuit):
    """Exact subtractor reference (signed result)."""

    op = Operation.SUB

    def __init__(self, width: int):
        super().__init__(width, name=f"sub{width}_exact")

    def is_exact(self) -> bool:
        return True

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a - b


class ExactMultiplier(ArithmeticCircuit):
    """Exact array multiplier reference."""

    op = Operation.MUL

    def __init__(self, width: int):
        super().__init__(width, name=f"mul{width}_exact")

    def is_exact(self) -> bool:
        return True

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b
