"""Approximate subtractor families.

A subtractor computes ``a - b`` for unsigned ``n``-bit operands and returns
a signed value in ``(-2**n, 2**n)`` (an ``n+1``-bit two's-complement word in
hardware).  The approximations mirror the adder families: truncation of low
bits, and a QuAd-like partition into blocks with speculative borrow-in.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.circuits.adders import _check_blocks
from repro.circuits.base import ArithmeticCircuit, Operation
from repro.errors import CircuitError
from repro.utils.bitops import bit_mask

_TRUNC_FILLS = ("zero", "copy")


class TruncatedSubtractor(ArithmeticCircuit):
    """Subtractor that ignores the ``t`` least significant operand bits."""

    op = Operation.SUB

    def __init__(self, width: int, trunc_bits: int, fill: str = "zero"):
        if not 0 <= trunc_bits <= width:
            raise CircuitError(
                f"trunc_bits must be in [0, {width}], got {trunc_bits}"
            )
        if fill not in _TRUNC_FILLS:
            raise CircuitError(f"fill must be one of {_TRUNC_FILLS}, got {fill!r}")
        super().__init__(width, name=f"sub{width}_tra_t{trunc_bits}_{fill}")
        self.trunc_bits = int(trunc_bits)
        self.fill = fill

    def is_exact(self) -> bool:
        return self.trunc_bits == 0

    def params(self) -> Dict[str, object]:
        return {"trunc_bits": self.trunc_bits, "fill": self.fill}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        t = self.trunc_bits
        upper = ((a >> t) - (b >> t)) << t
        if t == 0 or self.fill == "zero":
            return upper
        return upper + (a & bit_mask(t))


class BlockSubtractor(ArithmeticCircuit):
    """Block subtractor with speculative borrow-in per block.

    The bit positions are partitioned into blocks (LSB first).  Each block
    subtracts its operand slices independently; its borrow-in is speculated
    by comparing the ``predictions[k]`` bits directly below the block
    (borrow-in 1 when the ``a`` slice is smaller).  The sign of the overall
    result comes from the most significant block's borrow-out.
    """

    op = Operation.SUB

    def __init__(
        self,
        width: int,
        blocks: Sequence[int],
        predictions: Sequence[int] = (),
    ):
        blocks = _check_blocks(width, blocks)
        if not predictions:
            predictions = tuple(0 for _ in blocks)
        predictions = tuple(int(p) for p in predictions)
        if len(predictions) != len(blocks):
            raise CircuitError("predictions must match blocks in length")
        offsets = []
        total = 0
        for length in blocks:
            offsets.append(total)
            total += length
        for k, pred in enumerate(predictions):
            if pred < 0 or pred > offsets[k]:
                raise CircuitError(
                    f"prediction {pred} of block {k} exceeds available "
                    f"lower bits ({offsets[k]})"
                )
        tag = "-".join(f"{l}p{p}" for l, p in zip(blocks, predictions))
        super().__init__(width, name=f"sub{width}_blk_{tag}")
        self.blocks = blocks
        self.predictions = predictions
        self._offsets = tuple(offsets)

    def is_exact(self) -> bool:
        return len(self.blocks) == 1

    def params(self) -> Dict[str, object]:
        return {"blocks": list(self.blocks), "predictions": list(self.predictions)}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = np.zeros_like(a)
        sign = np.zeros_like(a)
        for k, (length, pred) in enumerate(zip(self.blocks, self.predictions)):
            offset = self._offsets[k]
            start = offset - pred
            seg_bits = pred + length
            seg_mask = bit_mask(seg_bits)
            seg_diff = ((a >> start) & seg_mask) - ((b >> start) & seg_mask)
            block_val = (seg_diff >> pred) & bit_mask(length)
            result = result | (block_val << offset)
            if k == len(self.blocks) - 1:
                sign = (seg_diff < 0).astype(np.int64)
        return result - (sign << self.width)
