"""Behavioural circuit view of a structural netlist.

:class:`NetlistCircuit` adapts a gate-level netlist (ports ``a``/``b``
in, ``y`` out — the convention of every structural builder) to the
:class:`~repro.circuits.base.ArithmeticCircuit` interface, so externally
supplied or synthesis-optimised netlists can enter the characterisation
pipeline like any behavioural family.

The LUT builders recognise the wrapper: exhaustive characterisation of a
netlist-backed circuit runs :func:`~repro.netlist.simulate.simulate_packed`
over the cached operand grid — 64 operand pairs per machine word per
gate — instead of ``4**width`` word-mode evaluations, and the exact
reference LUT rides the same packed path over the exact netlist of the
wrapped operation.  Both are bit-identical to the word-mode simulation
(asserted in the test-suite); the netlist output word is folded back to
the behavioural result convention, which for subtraction means
sign-extending the ``width + 1``-bit two's-complement word into the
signed range ``(-2**width, 2**width)``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuits.base import (
    ArithmeticCircuit,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
    Operation,
)
from repro.errors import CircuitError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import simulate, simulate_packed

__all__ = ["NetlistCircuit", "wrap_netlist"]


class NetlistCircuit(ArithmeticCircuit):
    """An :class:`ArithmeticCircuit` whose truth is a netlist.

    ``netlist`` must expose two ``width``-bit inputs ``a`` and ``b``
    and one output ``y`` of the operation's result width.  ``evaluate``
    simulates the netlist (word mode — fine for scattered operand
    batches); the packed hooks below are picked up by
    :func:`~repro.circuits.luts.build_lut` /
    :func:`~repro.circuits.luts.build_exact_lut` for exhaustive grids.
    """

    def __init__(
        self,
        netlist: Netlist,
        op: Operation,
        width: int,
        name: Optional[str] = None,
    ):
        super().__init__(width, name or f"{op.value}{width}_netlist")
        self.op = op
        for port, bits in (("a", width), ("b", width)):
            nets = netlist.inputs.get(port)
            if nets is None or len(nets) != bits:
                raise CircuitError(
                    f"netlist input {port!r} must be {bits} bits wide"
                )
        out = netlist.outputs.get("y")
        if out is None or len(out) != self.result_width:
            raise CircuitError(
                f"netlist output 'y' must be {self.result_width} bits "
                f"wide for {op.value}{width}"
            )
        macros = sorted(
            {g.cell.name for g in netlist.gates if g.cell.is_macro}
        )
        if macros:
            raise CircuitError(
                f"netlist contains opaque macro cells {macros}; only "
                "gate-level netlists are simulatable"
            )
        self.netlist = netlist
        self._exact_netlist: Optional[Netlist] = None

    def params(self) -> Dict[str, object]:
        return {"op": self.op.value, "width": self.width}

    def _decode(self, y: np.ndarray) -> np.ndarray:
        """Fold the unsigned output word back to the behavioural range."""
        if self.op is Operation.SUB:
            wout = self.result_width
            return y - ((y >> (wout - 1)) << wout)
        return y

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._decode(simulate(self.netlist, {"a": a, "b": b})["y"])

    # -- packed LUT hooks (used by repro.circuits.luts) ----------------------

    def packed_lut(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Outputs over an exhaustive operand grid, bit-packed planes."""
        return self._decode(
            simulate_packed(self.netlist, {"a": a, "b": b})["y"]
        )

    def packed_exact_lut(
        self, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Exact-operation outputs over the grid, via the exact netlist."""
        if self._exact_netlist is None:
            from repro.netlist.builders import build_netlist

            exact_model = {
                Operation.ADD: ExactAdder,
                Operation.SUB: ExactSubtractor,
                Operation.MUL: ExactMultiplier,
            }[self.op](self.width)
            self._exact_netlist = build_netlist(exact_model)
        return self._decode(
            simulate_packed(self._exact_netlist, {"a": a, "b": b})["y"]
        )


def wrap_netlist(
    circuit: ArithmeticCircuit, optimized: bool = False
) -> NetlistCircuit:
    """The netlist-backed view of a behavioural circuit.

    Builds the structural netlist of ``circuit`` (optionally running
    the synthesis optimiser over it) and wraps it; the result evaluates
    and characterises identically to ``circuit`` but through gate-level
    simulation.
    """
    from repro.netlist.builders import build_netlist

    netlist = build_netlist(circuit)
    if optimized:
        from repro.synthesis.synthesizer import optimize

        optimize(netlist)
        netlist.validate()
    return NetlistCircuit(
        netlist, circuit.op, circuit.width, name=f"{circuit.name}_netlist"
    )
