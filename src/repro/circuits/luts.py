"""Lookup-table compilation for small-width circuits.

Accelerator simulation evaluates each operation on ~10**5 pixel values per
image.  For operand widths up to :data:`MAX_LUT_WIDTH` bits we pre-compute
the full truth table once per circuit; the hot path then reduces to a numpy
gather.  The flat index of operand pair ``(a, b)`` is ``(a << n) | b``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.base import ArithmeticCircuit
from repro.errors import CircuitError
from repro.utils.bitops import bit_mask

#: Widest operands for which an exhaustive LUT is reasonable (2**20 entries).
MAX_LUT_WIDTH = 10


def lut_index(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Flat LUT index of operand pair ``(a, b)`` at the given width."""
    mask = bit_mask(width)
    return ((np.asarray(a, dtype=np.int64) & mask) << width) | (
        np.asarray(b, dtype=np.int64) & mask
    )


def build_lut(circuit: ArithmeticCircuit) -> np.ndarray:
    """Exhaustive output table of ``circuit`` (int64, length ``4**width``)."""
    n = circuit.width
    if n > MAX_LUT_WIDTH:
        raise CircuitError(
            f"LUT for {n}-bit operands would need {4**n} entries; "
            f"widths above {MAX_LUT_WIDTH} must use evaluate()"
        )
    size = 1 << n
    pairs = np.arange(size * size, dtype=np.int64)
    a = pairs >> n
    b = pairs & bit_mask(n)
    return np.asarray(circuit.evaluate(a, b), dtype=np.int64)


def build_exact_lut(circuit: ArithmeticCircuit) -> np.ndarray:
    """Exhaustive table of the *exact* operation at the circuit's width."""
    n = circuit.width
    if n > MAX_LUT_WIDTH:
        raise CircuitError(f"width {n} exceeds LUT limit {MAX_LUT_WIDTH}")
    size = 1 << n
    pairs = np.arange(size * size, dtype=np.int64)
    a = pairs >> n
    b = pairs & bit_mask(n)
    return np.asarray(circuit.exact(a, b), dtype=np.int64)
