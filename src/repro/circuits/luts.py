"""Lookup-table compilation for small-width circuits.

Accelerator simulation evaluates each operation on ~10**5 pixel values per
image.  For operand widths up to :data:`MAX_LUT_WIDTH` bits we pre-compute
the full truth table once per circuit; the hot path then reduces to a numpy
gather.  The flat index of operand pair ``(a, b)`` is ``(a << n) | b``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.base import ArithmeticCircuit
from repro.errors import CircuitError
from repro.utils.bitops import bit_mask

#: Widest operands for which an exhaustive LUT is reasonable (2**20 entries).
MAX_LUT_WIDTH = 10

#: Per-width exhaustive operand grids, built once per process.  Every
#: characterised circuit of a given width enumerates the same
#: ``4**width`` operand pairs, so the grids are cached as read-only
#: views instead of being re-materialised (three fresh arrays) per LUT
#: build — the dominant allocation of exhaustive characterisation.
_OPERAND_GRIDS: dict = {}


def operand_grid(width: int):
    """The exhaustive ``(a, b)`` operand arrays of ``width``-bit pairs.

    Cached and read-only: all LUT builds of the same width share one
    grid.  ``a`` varies in the high bits (index ``(a << width) | b``).
    """
    if width > MAX_LUT_WIDTH:
        raise CircuitError(
            f"width {width} exceeds LUT limit {MAX_LUT_WIDTH}"
        )
    grid = _OPERAND_GRIDS.get(width)
    if grid is None:
        size = 1 << width
        pairs = np.arange(size * size, dtype=np.int64)
        a = pairs >> width
        b = pairs & bit_mask(width)
        a.flags.writeable = False
        b.flags.writeable = False
        _OPERAND_GRIDS[width] = grid = (a, b)
    return grid


def lut_index(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Flat LUT index of operand pair ``(a, b)`` at the given width."""
    mask = bit_mask(width)
    return ((np.asarray(a, dtype=np.int64) & mask) << width) | (
        np.asarray(b, dtype=np.int64) & mask
    )


def build_lut(circuit: ArithmeticCircuit) -> np.ndarray:
    """Exhaustive output table of ``circuit`` (int64, length ``4**width``).

    Netlist-backed circuits (anything exposing a ``packed_lut`` hook,
    e.g. :class:`~repro.circuits.netlist_backed.NetlistCircuit`) are
    simulated over the grid with bit-packed planes — 64 operand pairs
    per machine word per gate — instead of ``4**width`` word-mode
    gate evaluations; the table is bit-identical either way.
    """
    n = circuit.width
    if n > MAX_LUT_WIDTH:
        raise CircuitError(
            f"LUT for {n}-bit operands would need {4**n} entries; "
            f"widths above {MAX_LUT_WIDTH} must use evaluate()"
        )
    a, b = operand_grid(n)
    packed = getattr(circuit, "packed_lut", None)
    if callable(packed):
        return np.asarray(packed(a, b), dtype=np.int64)
    return np.asarray(circuit.evaluate(a, b), dtype=np.int64)


def build_exact_lut(circuit: ArithmeticCircuit) -> np.ndarray:
    """Exhaustive table of the *exact* operation at the circuit's width.

    Netlist-backed circuits route through their ``packed_exact_lut``
    hook (bit-packed simulation of the exact netlist); the result is
    bit-identical to the arithmetic reference.
    """
    n = circuit.width
    if n > MAX_LUT_WIDTH:
        raise CircuitError(f"width {n} exceeds LUT limit {MAX_LUT_WIDTH}")
    a, b = operand_grid(n)
    packed = getattr(circuit, "packed_exact_lut", None)
    if callable(packed):
        return np.asarray(packed(a, b), dtype=np.int64)
    return np.asarray(circuit.exact(a, b), dtype=np.int64)
