"""Approximate multiplier families.

* :class:`MaskedMultiplier` — general array multiplier whose partial-product
  cells can be individually omitted; the base of the exact, broken-array,
  perforated and truncated variants.
* :class:`BrokenArrayMultiplier` (BAM) — cells below a vertical break line
  are dropped for rows below the horizontal break line.
* :class:`PerforatedMultiplier` — whole partial-product rows omitted.
* :class:`TruncatedMultiplier` — operand truncation (low bits zeroed).
* :class:`RecursiveApproxMultiplier` — Kulkarni-style recursive composition
  of 2x2 blocks, any subset of which uses the approximate 2x2 cell
  (``3*3 -> 7``); the 2**16 leaf subsets of the 8-bit instance supply the
  bulk of the paper-scale multiplier library (Table 2 lists 29911).
* :class:`MitchellMultiplier` — logarithmic multiplication with a truncated
  mantissa.
* :class:`DrumMultiplier` — dynamic-range unbiased multiplier (leading
  ``k``-bit slices, LSB forced to one, exact small multiply, shift back).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

import numpy as np

from repro.circuits.base import ArithmeticCircuit, Operation
from repro.errors import CircuitError
from repro.utils.bitops import bit_mask


class MaskedMultiplier(ArithmeticCircuit):
    """Array multiplier with a per-row column mask of kept partial products.

    ``row_masks[i]`` is an integer bit mask over the bits of operand ``a``:
    partial product ``a_j & b_i`` (weight ``i + j``) is generated only when
    bit ``j`` of ``row_masks[i]`` is set.  The exact multiplier keeps all
    ``n**2`` cells.
    """

    op = Operation.MUL

    def __init__(self, width: int, row_masks: Sequence[int], name: str = ""):
        row_masks = tuple(int(m) & bit_mask(width) for m in row_masks)
        if len(row_masks) != width:
            raise CircuitError(
                f"need {width} row masks, got {len(row_masks)}"
            )
        if not name:
            name = f"mul{width}_mask_" + "-".join(f"{m:x}" for m in row_masks)
        super().__init__(width, name=name)
        self.row_masks = row_masks

    def is_exact(self) -> bool:
        full = bit_mask(self.width)
        return all(m == full for m in self.row_masks)

    def params(self) -> Dict[str, object]:
        return {"row_masks": list(self.row_masks)}

    def kept_cells(self) -> int:
        """Number of generated partial-product cells."""
        return sum(bin(m).count("1") for m in self.row_masks)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = np.zeros_like(a)
        for i, mask in enumerate(self.row_masks):
            if mask == 0:
                continue
            row = (a & mask) * ((b >> i) & 1)
            result = result + (row << i)
        return result


def _bam_row_masks(width: int, vbl: int, hbl: int) -> Tuple[int, ...]:
    """Row masks for a BAM-style break-line multiplier.

    Cell ``(i, j)`` is kept when its weight ``i + j`` reaches the vertical
    break line or its row ``i`` lies at/above the horizontal break line:
    ``(i + j) >= vbl or i >= hbl``.
    """
    masks = []
    for i in range(width):
        mask = 0
        for j in range(width):
            if (i + j) >= vbl or i >= hbl:
                mask |= 1 << j
        masks.append(mask)
    return tuple(masks)


class BrokenArrayMultiplier(MaskedMultiplier):
    """BAM(vbl, hbl): break-line truncation of the carry-save array."""

    def __init__(self, width: int, vbl: int, hbl: int):
        if not 0 <= vbl <= 2 * width - 1:
            raise CircuitError(f"vbl must be in [0, {2 * width - 1}], got {vbl}")
        if not 0 <= hbl <= width:
            raise CircuitError(f"hbl must be in [0, {width}], got {hbl}")
        super().__init__(
            width,
            _bam_row_masks(width, vbl, hbl),
            name=f"mul{width}_bam_v{vbl}h{hbl}",
        )
        self.vbl = int(vbl)
        self.hbl = int(hbl)

    def params(self) -> Dict[str, object]:
        return {"vbl": self.vbl, "hbl": self.hbl}


class PerforatedMultiplier(MaskedMultiplier):
    """Partial-product perforation: the listed rows are omitted entirely."""

    def __init__(self, width: int, omitted_rows: Iterable[int]):
        omitted: FrozenSet[int] = frozenset(int(r) for r in omitted_rows)
        if any(r < 0 or r >= width for r in omitted):
            raise CircuitError(f"omitted rows out of range [0, {width})")
        full = bit_mask(width)
        masks = tuple(0 if i in omitted else full for i in range(width))
        tag = "".join(str(r) for r in sorted(omitted)) or "none"
        super().__init__(width, masks, name=f"mul{width}_perf_{tag}")
        self.omitted_rows = omitted

    def params(self) -> Dict[str, object]:
        return {"omitted_rows": sorted(self.omitted_rows)}


class TruncatedMultiplier(MaskedMultiplier):
    """Operand truncation: low ``ta`` bits of ``a`` and ``tb`` of ``b`` drop."""

    def __init__(self, width: int, trunc_a: int, trunc_b: int):
        if not 0 <= trunc_a <= width or not 0 <= trunc_b <= width:
            raise CircuitError("truncation amounts must be in [0, width]")
        keep_a = bit_mask(width) & ~bit_mask(trunc_a)
        masks = tuple(
            keep_a if i >= trunc_b else 0 for i in range(width)
        )
        super().__init__(
            width, masks, name=f"mul{width}_trunc_a{trunc_a}b{trunc_b}"
        )
        self.trunc_a = int(trunc_a)
        self.trunc_b = int(trunc_b)

    def params(self) -> Dict[str, object]:
        return {"trunc_a": self.trunc_a, "trunc_b": self.trunc_b}


class RecursiveApproxMultiplier(ArithmeticCircuit):
    """Kulkarni-style recursive multiplier built from 2x2 blocks.

    An ``n x n`` multiply (``n`` a power of two, ``n >= 2``) splits into
    four ``n/2 x n/2`` multiplies combined exactly; the recursion bottoms
    out at 2x2 blocks.  ``approx_leaves`` selects which of the
    ``(n/2)**2`` leaf blocks use the approximate 2x2 cell, which computes
    ``3 * 3 = 7`` (and is exact elsewhere).  Leaves are indexed by
    ``(i, j)`` where leaf ``(i, j)`` multiplies bits ``[2j, 2j+2)`` of ``a``
    with bits ``[2i, 2i+2)`` of ``b``, flattened as ``i * (n/2) + j``.
    """

    op = Operation.MUL

    def __init__(self, width: int, approx_leaves: Iterable[int]):
        if width < 2 or width & (width - 1):
            raise CircuitError("width must be a power of two >= 2")
        half = width // 2
        leaves: FrozenSet[int] = frozenset(int(x) for x in approx_leaves)
        if any(x < 0 or x >= half * half for x in leaves):
            raise CircuitError(
                f"leaf indices must be in [0, {half * half})"
            )
        tag = hex(sum(1 << x for x in leaves))[2:] if leaves else "0"
        super().__init__(width, name=f"mul{width}_rec2x2_{tag}")
        self.approx_leaves = leaves

    def is_exact(self) -> bool:
        return not self.approx_leaves

    def params(self) -> Dict[str, object]:
        return {"approx_leaves": sorted(self.approx_leaves)}

    def _leaf(self, a2: np.ndarray, b2: np.ndarray, index: int) -> np.ndarray:
        product = a2 * b2
        if index in self.approx_leaves:
            # The approximate 2x2 cell maps 3*3 to 7 (0b111 vs 0b1001).
            product = np.where((a2 == 3) & (b2 == 3), 7, product)
        return product

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        half_leaves = self.width // 2
        result = np.zeros_like(a)
        for i in range(half_leaves):
            b2 = (b >> (2 * i)) & 3
            for j in range(half_leaves):
                a2 = (a >> (2 * j)) & 3
                index = i * half_leaves + j
                result = result + (
                    self._leaf(a2, b2, index) << (2 * (i + j))
                )
        return result


def _msb_index(x: np.ndarray, width: int) -> np.ndarray:
    """Vectorised position of the most significant set bit (-1 for zero)."""
    msb = np.full_like(x, -1)
    for k in range(width):
        msb = np.where((x >> k) & 1, k, msb)
    return msb


class MitchellMultiplier(ArithmeticCircuit):
    """Mitchell's logarithmic multiplier with ``frac_bits`` mantissa bits.

    Operands are approximated as ``2**k * (1 + m)`` with the mantissa ``m``
    truncated to ``frac_bits`` fractional bits; logs are added and the
    antilogarithm is taken with the standard linear approximation.  The
    result is always <= the exact product (Mitchell underestimates).
    """

    op = Operation.MUL

    def __init__(self, width: int, frac_bits: int):
        if not 1 <= frac_bits <= 2 * width:
            raise CircuitError(
                f"frac_bits must be in [1, {2 * width}], got {frac_bits}"
            )
        super().__init__(width, name=f"mul{width}_mitchell_f{frac_bits}")
        self.frac_bits = int(frac_bits)

    def params(self) -> Dict[str, object]:
        return {"frac_bits": self.frac_bits}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        f = self.frac_bits
        ka = _msb_index(a, self.width)
        kb = _msb_index(b, self.width)
        safe_ka = np.maximum(ka, 0)
        safe_kb = np.maximum(kb, 0)
        # Fixed-point mantissas with f fractional bits, truncated.
        frac_a = ((a - (1 << safe_ka).astype(np.int64)) << f) >> safe_ka
        frac_b = ((b - (1 << safe_kb).astype(np.int64)) << f) >> safe_kb
        log_sum = ((safe_ka + safe_kb) << f) + frac_a + frac_b
        characteristic = log_sum >> f
        mantissa = log_sum & bit_mask(f)
        # Antilog: 2**c * (1 + m); carry in the mantissa sum already folded
        # into the characteristic by the fixed-point addition above.
        product = ((1 << f) + mantissa) << characteristic
        product = product >> f
        return np.where((ka < 0) | (kb < 0), 0, product)


class DrumMultiplier(ArithmeticCircuit):
    """DRUM(k): unbiased dynamic-range multiplier.

    Takes the leading ``k``-bit slice of each operand (LSB of the slice
    forced to 1 to de-bias truncation), multiplies the slices exactly and
    shifts back.  Exact whenever both operands fit in ``k`` bits.
    """

    op = Operation.MUL

    def __init__(self, width: int, k: int):
        if not 2 <= k <= width:
            raise CircuitError(f"k must be in [2, {width}], got {k}")
        super().__init__(width, name=f"mul{width}_drum_k{k}")
        self.k = int(k)

    def is_exact(self) -> bool:
        return self.k == self.width

    def params(self) -> Dict[str, object]:
        return {"k": self.k}

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        k = self.k
        ka = _msb_index(a, self.width)
        kb = _msb_index(b, self.width)
        shift_a = np.maximum(ka - (k - 1), 0)
        shift_b = np.maximum(kb - (k - 1), 0)
        slice_a = a >> shift_a
        slice_b = b >> shift_b
        # Force the slice LSB to one only when bits were actually dropped.
        slice_a = np.where(shift_a > 0, slice_a | 1, slice_a)
        slice_b = np.where(shift_b > 0, slice_b | 1, slice_b)
        return (slice_a * slice_b) << (shift_a + shift_b)
