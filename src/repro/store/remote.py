"""Remote store backend: stdlib HTTP client for the ``/v1/store`` API.

:class:`RemoteBackend` speaks the versioned ``/v1/store/*`` API that
``repro serve`` exposes (see :mod:`repro.serve.store_api`), turning one
server into the shared artifact store of many clients and search
workers.  Get/put are content-addressed — a retried ``PUT`` rewrites
identical bytes under the same key, a retried ``GET`` re-reads them —
so every verb here is safe to retry; transient failures (connection
errors, timeouts, 5xx) are retried with bounded exponential backoff.

Integrity is verified end to end: blob responses carry an
``ETag`` of the content hash which the client checks against the bytes
it received (a mismatch is treated as transport corruption and
retried), and a ``PUT`` cross-checks the digest the server computed
against the local one.

Environment knobs (all optional):

* ``REPRO_STORE_TIMEOUT`` — per-request timeout, seconds (default 10).
* ``REPRO_STORE_RETRIES`` — retries after the first attempt (default 3).
* ``REPRO_STORE_KEY``     — API key sent as a bearer token.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.backends import ArtifactRef, StoreBackend
from repro.telemetry import get_metrics
from repro.utils.validation import check_env_float, check_env_int

#: Environment knobs of the HTTP client.
TIMEOUT_ENV = "REPRO_STORE_TIMEOUT"
RETRIES_ENV = "REPRO_STORE_RETRIES"
KEY_ENV = "REPRO_STORE_KEY"

DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRIES = 3

#: Backoff before retry ``n`` (0-based): 0.1 * 2**n, capped at 2 s.
_BACKOFF_BASE = 0.1
_BACKOFF_CAP = 2.0


class _NotFound(Exception):
    """Internal: the server answered 404 (a plain miss, never retried)."""


class _Corrupt(Exception):
    """Internal: response bytes contradict their ETag; retry transport."""


def _env_timeout() -> float:
    value = os.environ.get(TIMEOUT_ENV)
    if value is None:
        return DEFAULT_TIMEOUT
    return check_env_float(value, source=TIMEOUT_ENV, minimum=0.01)


def _env_retries() -> int:
    value = os.environ.get(RETRIES_ENV)
    if value is None:
        return DEFAULT_RETRIES
    return check_env_int(value, source=RETRIES_ENV, minimum=0,
                         maximum=100)


class RemoteBackend(StoreBackend):
    """Store backend served over HTTP by ``repro serve``.

    Holds no sockets between requests, so instances are trivially
    picklable into worker processes and safe across ``fork``.
    """

    scheme = "http"

    def __init__(
        self,
        base_url: str,
        api_key: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.api_key = (
            api_key if api_key is not None else os.environ.get(KEY_ENV)
        )
        self.timeout = timeout if timeout is not None else _env_timeout()
        self.retries = retries if retries is not None else _env_retries()

    @property
    def uri(self) -> str:
        return self.base_url

    @property
    def root(self) -> Optional[Path]:
        return None

    def exists(self) -> bool:
        try:
            self._request("GET", "/v1/store/stat")
        except (StoreError, _NotFound):
            return False
        return True

    # -- HTTP plumbing -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[bytes, Dict[str, str]]:
        """One logical request with retries; ``(body, headers)``.

        404 raises :class:`_NotFound` immediately (a miss is a valid
        answer, not a fault); other 4xx raise :class:`StoreError`
        without retrying; connection errors, timeouts, 5xx and ETag
        corruption retry with bounded exponential backoff until the
        budget is spent.
        """
        metrics = get_metrics()
        metrics.inc("store.remote.requests")
        url = self.base_url + path
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            if attempt:
                metrics.inc("store.remote.retries")
                time.sleep(
                    min(_BACKOFF_BASE * (2 ** (attempt - 1)),
                        _BACKOFF_CAP)
                )
            request = urllib.request.Request(
                url, data=body, method=method
            )
            request.add_header("Accept", "*/*")
            if self.api_key:
                request.add_header(
                    "Authorization", f"Bearer {self.api_key}"
                )
            for name, value in (headers or {}).items():
                request.add_header(name, value)
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    data = response.read()
                    reply = {
                        k.lower(): v
                        for k, v in response.headers.items()
                    }
                self._check_etag(data, reply)
                return data, reply
            except _Corrupt:
                last_error = "content hash mismatch (corrupt transfer)"
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    raise _NotFound(path) from None
                detail = self._error_detail(exc)
                last_error = f"HTTP {exc.code}: {detail}"
                if exc.code < 500:
                    metrics.inc("store.remote.errors")
                    raise StoreError(
                        f"store request {method} {url} failed "
                        f"({last_error})"
                    ) from None
            except (urllib.error.URLError, TimeoutError, OSError) as exc:
                last_error = str(exc)
        metrics.inc("store.remote.errors")
        raise StoreError(
            f"store request {method} {url} failed after "
            f"{self.retries + 1} attempts ({last_error})"
        )

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            return str(doc.get("error", doc))
        except Exception:
            return exc.reason or "error"

    @staticmethod
    def _check_etag(data: bytes, headers: Dict[str, str]) -> None:
        etag = headers.get("etag", "").strip('"')
        if etag and hashlib.sha256(data).hexdigest() != etag:
            raise _Corrupt()

    def _json(
        self,
        method: str,
        path: str,
        doc: Optional[Dict] = None,
    ) -> Dict:
        body = None
        headers = {}
        if doc is not None:
            body = json.dumps(doc, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        data, _ = self._request(method, path, body=body,
                                headers=headers)
        return json.loads(data.decode("utf-8")) if data else {}

    @staticmethod
    def _blob_path_for(kind: str, key: str) -> str:
        return (
            "/v1/store/blob/"
            f"{urllib.parse.quote(kind, safe='')}/"
            f"{urllib.parse.quote(key, safe='')}"
        )

    # -- blobs ---------------------------------------------------------------

    def put_bytes(
        self,
        kind: str,
        key: str,
        data: bytes,
        ext: str = "json",
        meta: Optional[Dict] = None,
    ) -> ArtifactRef:
        headers = {
            "Content-Type": "application/octet-stream",
            "X-Repro-Ext": ext,
        }
        if meta:
            headers["X-Repro-Meta"] = json.dumps(meta, sort_keys=True)
        reply, _ = self._request(
            "PUT", self._blob_path_for(kind, key), body=data,
            headers=headers,
        )
        doc = json.loads(reply.decode("utf-8"))
        digest = hashlib.sha256(data).hexdigest()
        if doc.get("sha256") != digest:
            raise StoreError(
                f"server stored {kind}/{key} with digest "
                f"{doc.get('sha256')!r}, expected {digest!r}"
            )
        return ArtifactRef(kind, key, None, digest, len(data))

    def get_bytes(
        self, kind: str, key: str, ext: str = "json"
    ) -> Optional[bytes]:
        try:
            data, _ = self._request(
                "GET", self._blob_path_for(kind, key)
            )
        except _NotFound:
            return None
        return data

    def delete(self, kind: str, key: str, ext: str = "json") -> None:
        try:
            self._request("DELETE", self._blob_path_for(kind, key))
        except _NotFound:
            pass

    def iter_refs(self, kind: Optional[str] = None) -> List[ArtifactRef]:
        path = "/v1/store/keys"
        if kind is not None:
            path += "?kind=" + urllib.parse.quote(kind, safe="")
        try:
            doc = self._json("GET", path)
        except _NotFound:
            return []
        refs = [
            ArtifactRef(
                entry["kind"], entry["key"], None,
                entry["sha256"], entry["size"],
            )
            for entry in doc.get("artifacts", [])
        ]
        refs.sort(key=lambda ref: (ref.kind, ref.key))
        return refs

    def gc(
        self,
        referenced: Set[Tuple[str, str]],
        keep_kinds: Set[str],
        dry_run: bool = False,
    ) -> Dict:
        doc = self._json(
            "POST",
            "/v1/store/gc",
            {
                "referenced": sorted(list(pair) for pair in referenced),
                "keep_kinds": sorted(keep_kinds),
                "dry_run": bool(dry_run),
            },
        )
        stats = doc.get("gc")
        if not isinstance(stats, dict):
            raise StoreError(
                f"malformed gc reply from {self.base_url}: {doc!r}"
            )
        return stats

    # -- manifests -----------------------------------------------------------

    def put_manifest(self, run_id: str, manifest: Dict) -> None:
        self._json(
            "PUT",
            "/v1/store/runs/" + urllib.parse.quote(run_id, safe=""),
            manifest,
        )

    def get_manifest(self, run_id: str) -> Optional[Dict]:
        try:
            doc = self._json(
                "GET",
                "/v1/store/runs/"
                + urllib.parse.quote(run_id, safe=""),
            )
        except _NotFound:
            return None
        return doc.get("run")

    def list_manifests(self) -> List[Dict]:
        try:
            return self._json("GET", "/v1/store/runs").get("runs", [])
        except _NotFound:
            return []

    def delete_manifest(self, run_id: str) -> bool:
        try:
            self._json(
                "DELETE",
                "/v1/store/runs/"
                + urllib.parse.quote(run_id, safe=""),
            )
        except _NotFound:
            return False
        return True
