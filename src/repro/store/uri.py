"""Store-URI parsing — one scheme, parsed in one place.

Every surface that accepts a store location (``--store``,
``REPRO_STORE_DIR``, ``repro serve``, the search workers) takes the
same URI grammar:

* ``sqlite:PATH``            — single sqlite index + blob tree (default)
* ``sharded:PATH?shards=N``  — N hash-sharded subtrees under one root
* ``http://host:port``       — remote store served by ``repro serve``
* ``PATH``                   — bare paths mean ``sqlite:PATH``

:func:`parse_store_uri` returns the matching
:class:`~repro.store.backends.StoreBackend`; callers wrap it in an
:class:`~repro.store.artifacts.ArtifactStore` (or use
:func:`~repro.store.artifacts.open_store`, which accepts URIs
directly).
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import parse_qs

from repro.errors import ValidationError
from repro.store.backends import ShardedBackend, SqliteBackend, StoreBackend
from repro.utils.validation import check_env_int

__all__ = ["parse_store_uri"]


def parse_store_uri(target) -> StoreBackend:
    """The :class:`StoreBackend` described by ``target``.

    ``target`` may already be a backend (returned as-is), a
    :class:`~pathlib.Path` (always a local sqlite store; never
    re-parsed, so odd filenames round-trip), or a URI string per the
    module docstring.  Malformed URIs raise
    :class:`~repro.errors.ValidationError`.
    """
    if isinstance(target, StoreBackend):
        return target
    if isinstance(target, Path):
        return SqliteBackend(target)
    text = str(target).strip()
    if not text:
        raise ValidationError(
            f"store URI must be non-empty, got {target!r}"
        )
    if text.startswith("sqlite:"):
        path = text[len("sqlite:"):]
        if not path:
            raise ValidationError(
                f"store URI {text!r} is missing a path"
            )
        return SqliteBackend(Path(path))
    if text.startswith("sharded:"):
        rest = text[len("sharded:"):]
        path, _, query = rest.partition("?")
        if not path:
            raise ValidationError(
                f"store URI {text!r} is missing a path"
            )
        shards = None
        if query:
            params = parse_qs(query, keep_blank_values=True)
            unknown = sorted(set(params) - {"shards"})
            if unknown:
                raise ValidationError(
                    f"store URI {text!r} has unknown parameters: "
                    f"{', '.join(unknown)}"
                )
            shards = check_env_int(
                params["shards"][-1],
                source=f"store URI {text!r} shards",
                minimum=1,
                maximum=4096,
            )
        return ShardedBackend(Path(path), shards=shards)
    if text.startswith(("http://", "https://")):
        from repro.store.remote import RemoteBackend

        return RemoteBackend(text)
    return SqliteBackend(Path(text))
