"""Content-addressed artifact cache: typed codecs over a store backend.

:class:`ArtifactStore` is the facade every consumer uses; the actual
blob/index plumbing lives behind the
:class:`~repro.store.backends.StoreBackend` protocol, so one facade
serves every topology:

* ``sqlite:PATH`` (default) — single sqlite index + blob tree::

      <root>/
        index.sqlite3             -- (kind, key) -> blob metadata
        objects/<kind>/<k0k1>/<key>.<ext>   -- the blobs themselves
        runs/<run_id>.json        -- run-ledger manifests (ledger.py)

* ``sharded:PATH?shards=N`` — N such subtrees, hash-routed.
* ``http://host:port``      — a ``repro serve`` instance's store API.

Writes are crash- and concurrency-safe without locks: blobs land via
write-to-temp + :func:`os.replace` (atomic on POSIX within one
filesystem), and the sqlite index is only ever told about a blob after
the rename.  Readers verify the blob's SHA-256 against the index row and
treat any mismatch, truncation or decode failure as a cache miss — the
offending entry is evicted and the caller recomputes.  A blob without an
index row (a writer died between rename and insert, or two processes
raced) is adopted back into the index on first read.

Typed codecs translate domain objects to blob bytes per *kind*:
libraries share the JSON format of :mod:`repro.library.io`, synthesis
reports and QoR evaluation matrices are canonical JSON, fitted models
and operand profiles are pickles (stdlib, local trusted cache).
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.backends import (  # noqa: F401  (re-exported compat)
    _TMP_PREFIX,
    ArtifactRef,
    SqliteBackend,
    StoreBackend,
    atomic_write_bytes,
)
from repro.store.uri import parse_store_uri
from repro.telemetry import get_metrics
from repro.utils.validation import check_env_dir

#: Environment knobs: the store root (a path or store URI), and the
#: legacy library-cache root (used as a fallback store root so old
#: workflows keep one cache tree).
STORE_ENV = "REPRO_STORE_DIR"
CACHE_ENV = "REPRO_CACHE_DIR"

#: Default store root in the working tree.
DEFAULT_STORE_DIR = ".repro-store"


def default_store_dir() -> Path:
    """Resolve the *local* store root: ``REPRO_STORE_DIR``, legacy
    ``REPRO_CACHE_DIR``, then ``.repro-store``.

    Set-but-blank values are configuration errors (see
    :func:`~repro.utils.validation.check_env_dir`), not silent
    fallbacks.  Callers that also accept store URIs go through
    :func:`open_store` instead, which resolves the same knobs through
    :func:`~repro.store.uri.parse_store_uri`.
    """
    for env in (STORE_ENV, CACHE_ENV):
        value = os.environ.get(env)
        if value is not None:
            return Path(check_env_dir(value, source=env))
    return Path(DEFAULT_STORE_DIR)


# -- codecs -----------------------------------------------------------------


@dataclass(frozen=True)
class Codec:
    """Blob (de)serialisation of one artifact kind."""

    encode: Callable[[object], bytes]
    decode: Callable[[bytes], object]
    ext: str = "json"


def _json_encode(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def _json_decode(data: bytes):
    return json.loads(data.decode("utf-8"))


def _library_encode(library) -> bytes:
    from repro.library.io import library_payload

    return _json_encode(library_payload(library))


def _library_decode(data: bytes):
    from repro.library.io import library_from_payload

    return library_from_payload(_json_decode(data))


def _synthesis_encode(report) -> bytes:
    return _json_encode(
        {
            "area": report.area,
            "delay": report.delay,
            "power": report.power,
            "gate_count": report.gate_count,
            "cells": dict(report.cells),
        }
    )


def _synthesis_decode(data: bytes):
    from repro.synthesis.synthesizer import SynthesisReport

    payload = _json_decode(data)
    return SynthesisReport(
        area=payload["area"],
        delay=payload["delay"],
        power=payload["power"],
        gate_count=payload["gate_count"],
        cells=dict(payload["cells"]),
    )


def _evaluations_encode(results) -> bytes:
    return _json_encode(
        [
            {
                "qor": r.qor,
                "area": r.area,
                "delay": r.delay,
                "power": r.power,
            }
            for r in results
        ]
    )


def _evaluations_decode(data: bytes):
    from repro.core.engine import EvaluationResult

    return [EvaluationResult(**entry) for entry in _json_decode(data)]


def _pickle_encode(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _pickle_decode(data: bytes):
    return pickle.loads(data)


def _zpickle_encode(obj) -> bytes:
    # Configuration spaces are mostly repetitive PMF float arrays that
    # deflate >100x — worth it for blobs that cross the network to
    # every distributed-search worker.
    return zlib.compress(_pickle_encode(obj), 6)


def _zpickle_decode(data: bytes):
    return _pickle_decode(zlib.decompress(data))


#: kind -> codec.  Unlisted kinds fall back to canonical JSON.
CODECS: Dict[str, Codec] = {
    "library": Codec(_library_encode, _library_decode, "json"),
    # Per-component memo entries of the library-construction pipeline:
    # plain ComponentRecord.to_dict documents, canonical JSON.
    "component": Codec(_json_encode, _json_decode, "json"),
    "synthesis": Codec(_synthesis_encode, _synthesis_decode, "json"),
    "evaluations": Codec(_evaluations_encode, _evaluations_decode, "json"),
    "training-set": Codec(_json_encode, _json_decode, "json"),
    "space": Codec(_json_encode, _json_decode, "json"),
    "dse": Codec(_json_encode, _json_decode, "json"),
    "profiles": Codec(_pickle_encode, _pickle_decode, "pkl"),
    "models": Codec(_pickle_encode, _pickle_decode, "pkl"),
    # Pickled (space, models, strategies) bundle shared with detached
    # distributed-search workers through the store itself.
    "search-context": Codec(_zpickle_encode, _zpickle_decode, "pklz"),
}

_DEFAULT_CODEC = Codec(_json_encode, _json_decode, "json")


class ArtifactStore:
    """Typed content-addressed cache over one store backend.

    ``ArtifactStore(root)`` keeps the historic constructor: a bare path
    opens the default :class:`~repro.store.backends.SqliteBackend` with
    the exact pre-protocol on-disk format (zero migration).  Pass
    ``backend=`` (usually from
    :func:`~repro.store.uri.parse_store_uri`) for any other topology.

    Stores are cheap to construct, safe to share across fork() and
    picklable into worker processes — live connections never cross
    either boundary (see :mod:`repro.store.backends`).
    """

    def __init__(
        self, root=None, backend: Optional[StoreBackend] = None
    ) -> None:
        if backend is None:
            if root is None:
                raise StoreError(
                    "ArtifactStore needs a root path or a backend"
                )
            if isinstance(root, StoreBackend):
                backend = root
            else:
                backend = SqliteBackend(Path(root))
        self.backend = backend

    def __getstate__(self):
        return {"backend": self.backend}

    def __setstate__(self, state):
        if "backend" in state:
            self.backend = state["backend"]
        else:  # pre-protocol pickles carried only the root path
            self.backend = SqliteBackend(state["root"])

    @property
    def root(self) -> Optional[Path]:
        """Local root directory (``None`` for remote backends)."""
        return self.backend.root

    @property
    def uri(self) -> str:
        """Round-trippable store URI of the underlying backend."""
        return self.backend.uri

    # -- plumbing -----------------------------------------------------------

    def _connect(self):
        # Compat shim for callers (and tests) that poke the sqlite
        # index directly; only meaningful on local sqlite backends.
        return self.backend._connect()

    @staticmethod
    def _codec(kind: str) -> Codec:
        return CODECS.get(kind, _DEFAULT_CODEC)

    def _blob_path(self, kind: str, key: str) -> Path:
        return self.backend._blob_path(kind, key, self._codec(kind).ext)

    def _index(
        self, kind: str, key: str, path: Path, digest: str,
        size: int, meta: Optional[Dict],
    ) -> None:
        self.backend._index(kind, key, path, digest, size, meta)

    def _evict(self, kind: str, key: str) -> None:
        self.backend.delete(kind, key, self._codec(kind).ext)

    # -- primary API --------------------------------------------------------

    def put(
        self, kind: str, key: str, obj, meta: Optional[Dict] = None
    ) -> ArtifactRef:
        """Encode and store ``obj`` under ``(kind, key)`` atomically."""
        data = self._codec(kind).encode(obj)
        ref = self.backend.put_bytes(
            kind, key, data, ext=self._codec(kind).ext, meta=meta
        )
        metrics = get_metrics()
        metrics.inc("store.puts")
        metrics.inc("store.bytes_written", len(data))
        return ref

    def get(self, kind: str, key: str):
        """Decode the artifact at ``(kind, key)``; ``None`` on any miss.

        Corruption (truncated or undecodable blob) and staleness (index
        row without blob) are *transparent* misses: the entry is evicted
        and the caller recomputes.  The blob is the source of truth and
        the index only a cache of it — the backends adopt orphan blobs
        and re-index checksum drift on read (see
        :meth:`repro.store.backends.StoreBackend.get_bytes`), while
        decode failures are evicted here, above the byte layer.
        """
        metrics = get_metrics()
        data = self.backend.get_bytes(
            kind, key, ext=self._codec(kind).ext
        )
        if data is None:
            metrics.inc("store.misses")
            return None
        try:
            obj = self._codec(kind).decode(data)
        except Exception:
            self._evict(kind, key)
            metrics.inc("store.evictions")
            metrics.inc("store.misses")
            return None
        metrics.inc("store.hits")
        metrics.inc("store.bytes_read", len(data))
        return obj

    def has(self, kind: str, key: str) -> bool:
        return self.get(kind, key) is not None

    def delete(self, kind: str, key: str) -> None:
        self._evict(kind, key)

    # -- enumeration / maintenance ------------------------------------------

    def entries(
        self, kind: Optional[str] = None
    ) -> List[ArtifactRef]:
        """Indexed artifacts as :class:`ArtifactRef`, optionally one kind."""
        return self.backend.iter_refs(kind)

    def keys(self, kind: str) -> List[str]:
        return [ref.key for ref in self.entries(kind)]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind artifact counts and byte totals."""
        out: Dict[str, Dict[str, int]] = {}
        for ref in self.entries():
            bucket = out.setdefault(ref.kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += ref.size
        return out

    #: Kinds kept by default during gc even when no manifest references
    #: them: content-shared pools (one blob serves many runs), not
    #: run-owned stage outputs.  Per-component memo entries live here
    #: too — thousands of them serve every future library build, so
    #: manifests deliberately do not enumerate them.
    SHARED_KINDS = ("synthesis", "library", "component")

    def gc(
        self,
        referenced: Iterable[Tuple[str, str]],
        keep_kinds: Optional[Iterable[str]] = None,
        dry_run: bool = False,
    ) -> Dict:
        """Drop artifacts not in ``referenced`` plus orphan blob files.

        ``referenced`` lists the ``(kind, key)`` pairs to keep (typically
        the union of all run-ledger manifests' artifact refs).  Kinds in
        ``keep_kinds`` (default :data:`SHARED_KINDS`) survive without a
        reference — synthesis reports and libraries are shared across
        runs rather than owned by one manifest.  With ``dry_run``
        nothing is deleted; the statistics describe what a real pass
        would remove.  Returns removal statistics including per-kind
        ``by_kind`` count/byte buckets.
        """
        keep: Set[Tuple[str, str]] = set(
            (kind, key) for kind, key in referenced
        )
        shared = set(
            self.SHARED_KINDS if keep_kinds is None else keep_kinds
        )
        stats = self.backend.gc(keep, shared, dry_run=dry_run)
        metrics = get_metrics()
        metrics.inc("store.gc_runs")
        if not dry_run:
            metrics.inc("store.gc_removed", stats["removed"])
            metrics.inc("store.gc_freed_bytes", stats["freed_bytes"])
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArtifactStore {self.uri}>"


def open_store(root=None) -> ArtifactStore:
    """An :class:`ArtifactStore` at ``root`` (default: env-resolved).

    ``root`` may be a path, a store URI (``sqlite:``/``sharded:``/
    ``http://``), a backend, or an existing store (returned as-is);
    ``REPRO_STORE_DIR`` accepts the same URIs.
    """
    if isinstance(root, ArtifactStore):
        return root
    if root is None:
        for env in (STORE_ENV, CACHE_ENV):
            value = os.environ.get(env)
            if value is not None:
                root = check_env_dir(value, source=env)
                break
        else:
            root = DEFAULT_STORE_DIR
    return ArtifactStore(backend=parse_store_uri(root))


def require_store(root=None) -> ArtifactStore:
    """Like :func:`open_store` but the store must already exist."""
    store = open_store(root)
    if not store.backend.exists():
        raise StoreError(
            f"no experiment store at {store.uri} (run with --store or "
            f"set {STORE_ENV} first)"
        )
    return store
