"""Content-addressed artifact cache: sqlite3 index + file blobs.

Layout on disk (everything under one *store root*)::

    <root>/
      index.sqlite3             -- (kind, key) -> blob metadata
      objects/<kind>/<k0k1>/<key>.<ext>   -- the blobs themselves
      runs/<run_id>.json        -- run-ledger manifests (ledger.py)

Writes are crash- and concurrency-safe without locks: blobs land via
write-to-temp + :func:`os.replace` (atomic on POSIX within one
filesystem), and the sqlite index is only ever told about a blob after
the rename.  Readers verify the blob's SHA-256 against the index row and
treat any mismatch, truncation or decode failure as a cache miss — the
offending entry is evicted and the caller recomputes.  A blob without an
index row (a writer died between rename and insert, or two processes
raced) is adopted back into the index on first read.

Typed codecs translate domain objects to blob bytes per *kind*:
libraries share the JSON format of :mod:`repro.library.io`, synthesis
reports and QoR evaluation matrices are canonical JSON, fitted models
and operand profiles are pickles (stdlib, local trusted cache).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.telemetry import get_metrics
from repro.utils.validation import check_env_dir

#: Environment knobs: the store root, and the legacy library-cache root
#: (used as a fallback store root so old workflows keep one cache tree).
STORE_ENV = "REPRO_STORE_DIR"
CACHE_ENV = "REPRO_CACHE_DIR"

#: Default store root in the working tree.
DEFAULT_STORE_DIR = ".repro-store"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    filename TEXT NOT NULL,
    sha256 TEXT NOT NULL,
    size INTEGER NOT NULL,
    created_at REAL NOT NULL,
    meta TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (kind, key)
)
"""

#: Prefix of in-flight temp files (pre-rename); gc must never touch them.
_TMP_PREFIX = ".tmp-"


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + :func:`os.replace`.

    The rename is atomic within one filesystem, so concurrent readers
    see either the previous content or the full new content, never a
    torn write.  Shared by blob writes and ledger manifests.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=_TMP_PREFIX, suffix=path.suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def default_store_dir() -> Path:
    """Resolve the store root: ``REPRO_STORE_DIR``, legacy
    ``REPRO_CACHE_DIR``, then ``.repro-store``.

    Set-but-blank values are configuration errors (see
    :func:`~repro.utils.validation.check_env_dir`), not silent fallbacks.
    """
    for env in (STORE_ENV, CACHE_ENV):
        value = os.environ.get(env)
        if value is not None:
            return Path(check_env_dir(value, source=env))
    return Path(DEFAULT_STORE_DIR)


# -- codecs -----------------------------------------------------------------


@dataclass(frozen=True)
class Codec:
    """Blob (de)serialisation of one artifact kind."""

    encode: Callable[[object], bytes]
    decode: Callable[[bytes], object]
    ext: str = "json"


def _json_encode(obj) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def _json_decode(data: bytes):
    return json.loads(data.decode("utf-8"))


def _library_encode(library) -> bytes:
    from repro.library.io import library_payload

    return _json_encode(library_payload(library))


def _library_decode(data: bytes):
    from repro.library.io import library_from_payload

    return library_from_payload(_json_decode(data))


def _synthesis_encode(report) -> bytes:
    return _json_encode(
        {
            "area": report.area,
            "delay": report.delay,
            "power": report.power,
            "gate_count": report.gate_count,
            "cells": dict(report.cells),
        }
    )


def _synthesis_decode(data: bytes):
    from repro.synthesis.synthesizer import SynthesisReport

    payload = _json_decode(data)
    return SynthesisReport(
        area=payload["area"],
        delay=payload["delay"],
        power=payload["power"],
        gate_count=payload["gate_count"],
        cells=dict(payload["cells"]),
    )


def _evaluations_encode(results) -> bytes:
    return _json_encode(
        [
            {
                "qor": r.qor,
                "area": r.area,
                "delay": r.delay,
                "power": r.power,
            }
            for r in results
        ]
    )


def _evaluations_decode(data: bytes):
    from repro.core.engine import EvaluationResult

    return [EvaluationResult(**entry) for entry in _json_decode(data)]


def _pickle_encode(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _pickle_decode(data: bytes):
    return pickle.loads(data)


#: kind -> codec.  Unlisted kinds fall back to canonical JSON.
CODECS: Dict[str, Codec] = {
    "library": Codec(_library_encode, _library_decode, "json"),
    # Per-component memo entries of the library-construction pipeline:
    # plain ComponentRecord.to_dict documents, canonical JSON.
    "component": Codec(_json_encode, _json_decode, "json"),
    "synthesis": Codec(_synthesis_encode, _synthesis_decode, "json"),
    "evaluations": Codec(_evaluations_encode, _evaluations_decode, "json"),
    "training-set": Codec(_json_encode, _json_decode, "json"),
    "space": Codec(_json_encode, _json_decode, "json"),
    "dse": Codec(_json_encode, _json_decode, "json"),
    "profiles": Codec(_pickle_encode, _pickle_decode, "pkl"),
    "models": Codec(_pickle_encode, _pickle_decode, "pkl"),
}

_DEFAULT_CODEC = Codec(_json_encode, _json_decode, "json")


@dataclass(frozen=True)
class ArtifactRef:
    """A stored artifact's address plus blob metadata."""

    kind: str
    key: str
    path: Path
    sha256: str
    size: int


class ArtifactStore:
    """Content-addressed blob cache under one root directory.

    Persistent state is only the root path, so a store is cheap to
    construct, safe to share across fork() and picklable into worker
    processes.  The sqlite connection is cached per process (keyed by
    pid: a forked child opens its own rather than reusing the parent's,
    which sqlite forbids) and never crosses pickling.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def __getstate__(self):
        return {"root": self.root}

    def __setstate__(self, state):
        self.root = state["root"]
        self._conn = None
        self._conn_pid = None

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.root / "index.sqlite3", timeout=30.0
            )
            conn.execute(_SCHEMA)
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    @staticmethod
    def _codec(kind: str) -> Codec:
        return CODECS.get(kind, _DEFAULT_CODEC)

    def _blob_path(self, kind: str, key: str) -> Path:
        ext = self._codec(kind).ext
        return self.root / "objects" / kind / key[:2] / f"{key}.{ext}"

    def _index(
        self, kind: str, key: str, path: Path, digest: str,
        size: int, meta: Optional[Dict],
    ) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts "
                "(kind, key, filename, sha256, size, created_at, meta) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    key,
                    str(path.relative_to(self.root)),
                    digest,
                    size,
                    time.time(),
                    json.dumps(meta or {}, sort_keys=True),
                ),
            )

    def _evict(self, kind: str, key: str) -> None:
        with self._connect() as conn:
            conn.execute(
                "DELETE FROM artifacts WHERE kind = ? AND key = ?",
                (kind, key),
            )
        try:
            self._blob_path(kind, key).unlink()
        except OSError:
            pass

    # -- primary API --------------------------------------------------------

    def put(
        self, kind: str, key: str, obj, meta: Optional[Dict] = None
    ) -> ArtifactRef:
        """Encode and store ``obj`` under ``(kind, key)`` atomically."""
        data = self._codec(kind).encode(obj)
        digest = hashlib.sha256(data).hexdigest()
        path = self._blob_path(kind, key)
        atomic_write_bytes(path, data)
        self._index(kind, key, path, digest, len(data), meta)
        metrics = get_metrics()
        metrics.inc("store.puts")
        metrics.inc("store.bytes_written", len(data))
        return ArtifactRef(kind, key, path, digest, len(data))

    def get(self, kind: str, key: str):
        """Decode the artifact at ``(kind, key)``; ``None`` on any miss.

        Corruption (truncated or undecodable blob) and staleness (index
        row without blob) are *transparent* misses: the entry is evicted
        and the caller recomputes.  The blob is the source of truth and
        the index only a cache of it: a blob without an index row (a
        writer died between rename and insert) is adopted on read, and a
        checksum mismatch with a still-decodable blob (two writers raced
        on one key; the last rename won) re-indexes the surviving bytes
        instead of discarding them.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT filename, sha256 FROM artifacts "
                "WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()
        path = self._blob_path(kind, key)
        if row is not None:
            path = self.root / row[0]
        metrics = get_metrics()
        try:
            data = path.read_bytes()
        except OSError:
            if row is not None:  # stale index entry: blob is gone
                self._evict(kind, key)
                metrics.inc("store.evictions")
            metrics.inc("store.misses")
            return None
        try:
            obj = self._codec(kind).decode(data)
        except Exception:
            self._evict(kind, key)
            metrics.inc("store.evictions")
            metrics.inc("store.misses")
            return None
        digest = hashlib.sha256(data).hexdigest()
        if row is None or digest != row[1]:
            self._index(kind, key, path, digest, len(data), None)
        metrics.inc("store.hits")
        metrics.inc("store.bytes_read", len(data))
        return obj

    def has(self, kind: str, key: str) -> bool:
        return self.get(kind, key) is not None

    def delete(self, kind: str, key: str) -> None:
        self._evict(kind, key)

    # -- enumeration / maintenance ------------------------------------------

    def entries(
        self, kind: Optional[str] = None
    ) -> List[ArtifactRef]:
        """Index rows as :class:`ArtifactRef`, optionally one kind."""
        if not (self.root / "index.sqlite3").exists():
            return []
        query = "SELECT kind, key, filename, sha256, size FROM artifacts"
        params: Tuple = ()
        if kind is not None:
            query += " WHERE kind = ?"
            params = (kind,)
        with self._connect() as conn:
            rows = conn.execute(query + " ORDER BY kind, key",
                                params).fetchall()
        return [
            ArtifactRef(k, key, self.root / fn, sha, size)
            for k, key, fn, sha, size in rows
        ]

    def keys(self, kind: str) -> List[str]:
        return [ref.key for ref in self.entries(kind)]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind artifact counts and byte totals."""
        out: Dict[str, Dict[str, int]] = {}
        for ref in self.entries():
            bucket = out.setdefault(ref.kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += ref.size
        return out

    #: Kinds kept by default during gc even when no manifest references
    #: them: content-shared pools (one blob serves many runs), not
    #: run-owned stage outputs.  Per-component memo entries live here
    #: too — thousands of them serve every future library build, so
    #: manifests deliberately do not enumerate them.
    SHARED_KINDS = ("synthesis", "library", "component")

    def gc(
        self,
        referenced: Iterable[Tuple[str, str]],
        keep_kinds: Optional[Iterable[str]] = None,
    ) -> Dict[str, int]:
        """Drop artifacts not in ``referenced`` plus orphan blob files.

        ``referenced`` lists the ``(kind, key)`` pairs to keep (typically
        the union of all run-ledger manifests' artifact refs).  Kinds in
        ``keep_kinds`` (default :data:`SHARED_KINDS`) survive without a
        reference — synthesis reports and libraries are shared across
        runs rather than owned by one manifest.  Returns removal
        statistics.
        """
        keep: Set[Tuple[str, str]] = set(referenced)
        shared = set(
            self.SHARED_KINDS if keep_kinds is None else keep_kinds
        )
        removed = 0
        freed = 0
        kept = 0
        keep_paths: Set[Path] = set()
        for ref in self.entries():
            if (ref.kind, ref.key) in keep or ref.kind in shared:
                kept += 1
                keep_paths.add(ref.path)
                continue
            removed += 1
            freed += ref.size
            self._evict(ref.kind, ref.key)
        objects = self.root / "objects"
        if objects.is_dir():
            for path in sorted(objects.rglob("*")):
                if path.name.startswith(_TMP_PREFIX):
                    continue  # in-flight write of a concurrent process
                if path.is_file() and path not in keep_paths:
                    try:
                        size = path.stat().st_size
                        path.unlink()
                    except OSError:
                        continue
                    removed += 1
                    freed += size
        metrics = get_metrics()
        metrics.inc("store.gc_runs")
        metrics.inc("store.gc_removed", removed)
        metrics.inc("store.gc_freed_bytes", freed)
        return {"removed": removed, "freed_bytes": freed, "kept": kept}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArtifactStore root={self.root}>"


def open_store(root=None) -> ArtifactStore:
    """An :class:`ArtifactStore` at ``root`` (default: env-resolved)."""
    if root is None:
        root = default_store_dir()
    return ArtifactStore(root)


def require_store(root=None) -> ArtifactStore:
    """Like :func:`open_store` but the root must already exist."""
    store = open_store(root)
    if not store.root.is_dir():
        raise StoreError(
            f"no experiment store at {store.root} (run with --store or "
            f"set {STORE_ENV} first)"
        )
    return store
