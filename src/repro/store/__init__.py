"""Persistent experiment store: artifact cache, run ledger, resume.

The autoAx methodology front-loads expensive work — library
characterisation, thousands of synthesis runs, model fitting — that is
identical across many invocations.  This package makes that work
persistent and shareable:

* :class:`~repro.store.artifacts.ArtifactStore` — a content-addressed
  blob cache (sqlite3 index + files, stdlib only).  Artifacts are keyed
  by the SHA-256 of their canonical inputs (library fingerprint + scale,
  accelerator dataflow graph, configuration record tuples, model name +
  training-set hash — see :mod:`~repro.store.hashing`), written via
  atomic rename so concurrent readers and writers never observe a torn
  blob, and read back through typed codecs (libraries, synthesis
  reports, QoR evaluation matrices, fitted models, operand profiles).
  Corrupt or stale entries are evicted and recomputed, never raised.
* :class:`~repro.store.ledger.RunLedger` — one JSON manifest per
  pipeline invocation (params, seed, config hash, per-stage timings and
  cache hits, artifact refs) under ``<root>/runs/``; the basis of the
  ``repro runs list|show|resume|gc`` CLI and of garbage collection
  (``gc`` keeps exactly the artifacts some manifest references).
* resumable pipelines — ``AutoAx.run()`` decomposes into cache-aware
  stages (characterize -> reduce -> train -> DSE -> real-evaluate) that
  skip any stage whose inputs hash to a stored artifact, and the
  evaluation engine's synthesis memo can be backed by
  :class:`~repro.store.synth_cache.StoreSynthCache` so reports are
  shared across processes and runs.

The byte layer underneath is pluggable (see
:mod:`~repro.store.backends`): the same facade runs over the default
single-sqlite tree (``sqlite:PATH``), N hash-sharded subtrees
(``sharded:PATH?shards=N``) or a remote ``repro serve`` instance
(``http://host:port``) — one store URI grammar, parsed by
:func:`~repro.store.uri.parse_store_uri`, accepted everywhere a store
location is (``--store``, ``REPRO_STORE_DIR``).

Default (sqlite) disk layout — everything under ``REPRO_STORE_DIR``,
falling back to the legacy ``REPRO_CACHE_DIR`` and then
``.repro-store``::

    index.sqlite3                       artifact index
    objects/<kind>/<k0k1>/<key>.<ext>   content-addressed blobs
    runs/<run_id>.json                  run-ledger manifests
"""

from repro.store.artifacts import (
    CACHE_ENV,
    DEFAULT_STORE_DIR,
    STORE_ENV,
    ArtifactRef,
    ArtifactStore,
    default_store_dir,
    open_store,
    require_store,
)
from repro.store.backends import (
    ShardedBackend,
    SqliteBackend,
    StoreBackend,
    atomic_write_bytes,
)
from repro.store.uri import parse_store_uri
from repro.store.hashing import (
    accelerator_fingerprint,
    canonical_json,
    content_hash,
    images_fingerprint,
    library_fingerprint,
    space_fingerprint,
)
from repro.store.ledger import MANIFEST_VERSION, RunLedger
from repro.store.synth_cache import (
    MemorySynthCache,
    StoreSynthCache,
    synth_cache_for,
)

__all__ = [
    "ArtifactRef",
    "ArtifactStore",
    "CACHE_ENV",
    "DEFAULT_STORE_DIR",
    "MANIFEST_VERSION",
    "MemorySynthCache",
    "RunLedger",
    "STORE_ENV",
    "ShardedBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreSynthCache",
    "accelerator_fingerprint",
    "atomic_write_bytes",
    "canonical_json",
    "content_hash",
    "default_store_dir",
    "images_fingerprint",
    "library_fingerprint",
    "open_store",
    "parse_store_uri",
    "require_store",
    "space_fingerprint",
    "synth_cache_for",
]
