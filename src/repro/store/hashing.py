"""Canonical hashing — the cache keys of the experiment store.

Every artifact is addressed by the SHA-256 of a *canonical JSON*
rendering of its inputs.  Canonicalisation sorts dictionary keys,
normalises numpy scalars to Python numbers and replaces numpy arrays by
a ``{dtype, shape, sha256-of-bytes}`` digest triple, so semantically
equal inputs hash identically across processes, platforms and runs.

The fingerprint helpers describe the domain objects whose identity
matters for cache keys: accelerators (their full dataflow graph),
component libraries, benchmark-image sets and reduced configuration
spaces.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.library.library import ComponentLibrary

#: Bump when the canonicalisation scheme changes: old keys must not
#: alias new ones.
HASH_SCHEME = 1


def _canonize(obj):
    """Recursively convert ``obj`` into canonical-JSON-ready values."""
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj, key=str):
            out[str(key)] = _canonize(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [_canonize(item) for item in obj]
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": {
                "dtype": str(data.dtype),
                "shape": list(data.shape),
                "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
            }
        }
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__} for hashing"
    )


def canonical_json(obj) -> str:
    """Deterministic JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(
        _canonize(obj), sort_keys=True, separators=(",", ":")
    )


def content_hash(obj) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    payload = canonical_json({"scheme": HASH_SCHEME, "value": obj})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- domain fingerprints ----------------------------------------------------


def accelerator_fingerprint(accelerator: ImageAccelerator) -> Dict:
    """Identity of an accelerator: its complete dataflow graph.

    Two accelerator instances with identical graphs (nodes, wiring,
    widths, attributes, output, default extra inputs) are the same
    hardware; class names are included only as a human-readable anchor.
    """
    nodes = [
        {
            "name": node.name,
            "kind": node.kind.value,
            "operands": list(node.operands),
            "width": node.width,
            "attrs": dict(node.attrs),
        }
        for node in accelerator.graph.nodes()
    ]
    return {
        "class": type(accelerator).__name__,
        "name": accelerator.name,
        "window": accelerator.window,
        "nodes": nodes,
        "output": accelerator.graph.output,
        "extra_inputs": accelerator.extra_inputs(),
    }


def library_fingerprint(library: ComponentLibrary) -> Dict:
    """Identity of a characterised library: all component records."""
    components = sorted(
        (record.to_dict() for record in library),
        key=lambda d: (d["family"], d["width"], canonical_json(d)),
    )
    return {"components": components}


def images_fingerprint(images: Sequence[np.ndarray]) -> List:
    """Identity of a benchmark-image set (order matters)."""
    return [_canonize(np.asarray(img)) for img in images]


def space_fingerprint(payload: Dict) -> Dict:
    """Identity of a reduced configuration space (its store payload)."""
    return {
        "slots": payload["slots"],
        "choices": payload["choices"],
        "wmeds": payload["wmeds"],
    }
