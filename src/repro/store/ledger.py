"""Run ledger — every pipeline invocation as a reproducible manifest.

A *manifest* is one JSON document under ``<store root>/runs/`` recording
what a run was (kind, label, parameters, seed), what identified its
inputs (the config hash), how it went (per-stage wall time and cache
hit/miss) and which store artifacts it produced or reused.  Manifests
make runs enumerable (``repro runs list``), inspectable (``show``),
re-executable against the warm store (``resume``) and the root set for
garbage collection (``gc`` keeps exactly the artifacts some manifest
references).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.artifacts import atomic_write_bytes

#: Manifest format version (bump on incompatible schema changes).
MANIFEST_VERSION = 1


def _iso(ts: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


class RunLedger:
    """Append-only collection of run manifests under one store root."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    # -- creation -----------------------------------------------------------

    @staticmethod
    def new_run_id() -> str:
        """Sortable, collision-resistant run identifier."""
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        return f"{stamp}-{os.urandom(4).hex()}"

    def record(
        self,
        run_id: str,
        kind: str,
        label: str,
        params: Dict,
        config_hash: str,
        stages: List[Dict],
        seed: Optional[int] = None,
        status: str = "complete",
        extra: Optional[Dict] = None,
    ) -> Dict:
        """Write (atomically) and return the manifest of one run."""
        now = time.time()
        manifest = {
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "kind": kind,
            "label": label,
            "params": params,
            "seed": seed,
            "config_hash": config_hash,
            "status": status,
            "created_at": _iso(now),
            "created_ts": now,
            "stages": stages,
            "total_seconds": round(
                sum(s.get("seconds", 0.0) for s in stages), 6
            ),
        }
        if extra:
            manifest["extra"] = extra
        path = self.runs_dir / f"{run_id}.json"
        data = json.dumps(manifest, sort_keys=True, indent=2)
        atomic_write_bytes(path, data.encode("utf-8"))
        return manifest

    # -- enumeration --------------------------------------------------------

    def runs(self, kind: Optional[str] = None) -> List[Dict]:
        """All manifests, oldest first (undecodable files are skipped).

        ``kind`` restricts the listing to one manifest kind (e.g.
        ``"serve-job"`` — the serving layer's audit log).
        """
        if not self.runs_dir.is_dir():
            return []
        manifests = []
        for path in sorted(self.runs_dir.glob("*.json")):
            if path.name.startswith("."):
                continue  # in-flight atomic write of another process
            try:
                manifest = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if kind is not None and manifest.get("kind") != kind:
                continue
            manifests.append(manifest)
        manifests.sort(
            key=lambda m: (m.get("created_ts", 0.0),
                           m.get("run_id", ""))
        )
        return manifests

    def get(self, run_id: str) -> Dict:
        path = self.runs_dir / f"{run_id}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            raise StoreError(
                f"no run {run_id!r} in ledger at {self.runs_dir}"
            ) from None

    def latest(self) -> Optional[Dict]:
        manifests = self.runs()
        return manifests[-1] if manifests else None

    def delete(self, run_id: str) -> None:
        try:
            (self.runs_dir / f"{run_id}.json").unlink()
        except OSError:
            raise StoreError(
                f"no run {run_id!r} in ledger at {self.runs_dir}"
            ) from None

    # -- garbage-collection roots -------------------------------------------

    def referenced_artifacts(self) -> Set[Tuple[str, str]]:
        """The ``(kind, key)`` pairs referenced by any manifest."""
        refs: Set[Tuple[str, str]] = set()
        for manifest in self.runs():
            for stage in manifest.get("stages", ()):
                for artifact in stage.get("artifacts", ()):
                    refs.add((artifact["kind"], artifact["key"]))
        return refs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunLedger root={self.root}>"
