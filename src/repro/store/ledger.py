"""Run ledger — every pipeline invocation as a reproducible manifest.

A *manifest* is one JSON document recording what a run was (kind,
label, parameters, seed), what identified its inputs (the config
hash), how it went (per-stage wall time and cache hit/miss) and which
store artifacts it produced or reused.  Manifests make runs enumerable
(``repro runs list``), inspectable (``show``), re-executable against
the warm store (``resume``) and the root set for garbage collection
(``gc`` keeps exactly the artifacts some manifest references).

The ledger is topology-agnostic: construct it from an
:class:`~repro.store.artifacts.ArtifactStore` (or a raw
:class:`~repro.store.backends.StoreBackend`) and manifests route
through the backend's manifest primitives — local stores keep the
historic ``<root>/runs/<run_id>.json`` files, remote stores round-trip
through the ``/v1/store/runs`` API.  A bare path still works and means
the local filesystem layout.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.backends import StoreBackend, _LocalManifests

#: Manifest format version (bump on incompatible schema changes).
MANIFEST_VERSION = 1


def _iso(ts: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


class RunLedger:
    """Append-only collection of run manifests of one store."""

    def __init__(self, root) -> None:
        backend = getattr(root, "backend", None)  # an ArtifactStore
        if backend is None and isinstance(root, StoreBackend):
            backend = root
        if backend is not None:
            self._backend: Optional[StoreBackend] = backend
            self.root = backend.root
            self._local = (
                _LocalManifests(backend.root)
                if backend.root is not None
                else None
            )
        else:
            self._backend = None
            self.root = Path(root)
            self._local = _LocalManifests(self.root)

    @property
    def runs_dir(self) -> Path:
        if self._local is not None:
            return self._local.runs_dir
        raise StoreError(
            f"ledger at {self._where()} has no local runs directory"
        )

    def _where(self) -> str:
        if self._backend is not None:
            return self._backend.uri
        return str(self.runs_dir)

    # -- creation -----------------------------------------------------------

    @staticmethod
    def new_run_id() -> str:
        """Sortable, collision-resistant run identifier."""
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        return f"{stamp}-{os.urandom(4).hex()}"

    def record(
        self,
        run_id: str,
        kind: str,
        label: str,
        params: Dict,
        config_hash: str,
        stages: List[Dict],
        seed: Optional[int] = None,
        status: str = "complete",
        extra: Optional[Dict] = None,
    ) -> Dict:
        """Write (atomically) and return the manifest of one run."""
        now = time.time()
        manifest = {
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "kind": kind,
            "label": label,
            "params": params,
            "seed": seed,
            "config_hash": config_hash,
            "status": status,
            "created_at": _iso(now),
            "created_ts": now,
            "stages": stages,
            "total_seconds": round(
                sum(s.get("seconds", 0.0) for s in stages), 6
            ),
        }
        if extra:
            manifest["extra"] = extra
        if self._backend is not None:
            self._backend.put_manifest(run_id, manifest)
        else:
            self._local.put(run_id, manifest)
        return manifest

    # -- enumeration --------------------------------------------------------

    def runs(self, kind: Optional[str] = None) -> List[Dict]:
        """All manifests, oldest first (undecodable files are skipped).

        ``kind`` restricts the listing to one manifest kind (e.g.
        ``"serve-job"`` — the serving layer's audit log).
        """
        if self._backend is not None:
            manifests = self._backend.list_manifests()
        else:
            manifests = self._local.list()
        if kind is not None:
            manifests = [
                m for m in manifests if m.get("kind") == kind
            ]
        manifests.sort(
            key=lambda m: (m.get("created_ts", 0.0),
                           m.get("run_id", ""))
        )
        return manifests

    def get(self, run_id: str) -> Dict:
        if self._backend is not None:
            manifest = self._backend.get_manifest(run_id)
        else:
            manifest = self._local.get(run_id)
        if manifest is None:
            raise StoreError(
                f"no run {run_id!r} in ledger at {self._where()}"
            )
        return manifest

    def latest(self) -> Optional[Dict]:
        manifests = self.runs()
        return manifests[-1] if manifests else None

    def delete(self, run_id: str) -> None:
        if self._backend is not None:
            removed = self._backend.delete_manifest(run_id)
        else:
            removed = self._local.delete(run_id)
        if not removed:
            raise StoreError(
                f"no run {run_id!r} in ledger at {self._where()}"
            )

    # -- garbage-collection roots -------------------------------------------

    def referenced_artifacts(self) -> Set[Tuple[str, str]]:
        """The ``(kind, key)`` pairs referenced by any manifest."""
        refs: Set[Tuple[str, str]] = set()
        for manifest in self.runs():
            for stage in manifest.get("stages", ()):
                for artifact in stage.get("artifacts", ()):
                    refs.add((artifact["kind"], artifact["key"]))
        return refs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunLedger {self._where()}>"
