"""Pluggable storage backends — the byte layer under the artifact store.

:class:`StoreBackend` is the protocol every store topology implements:
content-addressed blob operations (``put_bytes`` / ``get_bytes`` /
``delete`` / ``iter_refs`` / ``gc``) plus the run-ledger manifest
primitives.  :class:`~repro.store.artifacts.ArtifactStore` layers the
typed codecs on top and every consumer (stage caches,
:class:`~repro.store.synth_cache.StoreSynthCache`,
:class:`~repro.store.ledger.RunLedger`, the distributed-search work
queue) goes through that facade, so swapping the backend swaps the
topology without touching a single caller.

Implementations in this module:

* :class:`SqliteBackend` — the original single ``index.sqlite3`` + blob
  tree under one root.  The default; the on-disk format is unchanged,
  so every pre-protocol ``.repro-store`` opens as-is.
* :class:`ShardedBackend` — N hash-sharded sqlite+blob subtrees under
  one root (``shards/00 .. shards/NN``), concurrent-writer friendly
  because writers hash to different indexes.  The shard count is
  recorded in a root manifest (``store-manifest.json``) and validated
  on open, so a store can never be silently reopened with the wrong
  topology.

:class:`~repro.store.remote.RemoteBackend` (its own module: it is the
only backend with a network dependency) speaks the versioned
``/v1/store/*`` HTTP API served by ``repro serve``.

All backends are cheap to construct, picklable (live sqlite
connections and locks never cross pickling) and fork-aware: a cached
connection is pid-guarded the same way the runtime pid-guards its
shared-memory segments, so a forked child opens its own handle and
never finalises the parent's.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.telemetry import get_metrics

#: Prefix of in-flight temp files (pre-rename); gc must never touch them.
_TMP_PREFIX = ".tmp-"

#: Root manifest of non-default store layouts (sharded trees).
STORE_MANIFEST = "store-manifest.json"

#: Shard count of a ``sharded:`` store created without ``?shards=N``.
DEFAULT_SHARDS = 8

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    filename TEXT NOT NULL,
    sha256 TEXT NOT NULL,
    size INTEGER NOT NULL,
    created_at REAL NOT NULL,
    meta TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (kind, key)
)
"""

#: sqlite connections inherited across ``fork`` are parked here instead
#: of being closed: sqlite3 forbids touching (even closing) a
#: connection from a process other than the one that created it, so a
#: forked child must never finalise the parent's handle — the same
#: discipline as the runtime's pid-guarded shared-memory segments,
#: which forked children never unlink.
_FORK_PARKED_CONNS: List[sqlite3.Connection] = []


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + :func:`os.replace`.

    The rename is atomic within one filesystem, so concurrent readers
    see either the previous content or the full new content, never a
    torn write.  Shared by blob writes and ledger manifests.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=_TMP_PREFIX, suffix=path.suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class ArtifactRef:
    """A stored artifact's address plus blob metadata.

    ``path`` is the local blob file for filesystem-backed stores and
    ``None`` for remote ones (the blob lives on the server).
    """

    kind: str
    key: str
    path: Optional[Path]
    sha256: str
    size: int


def _empty_gc_stats(dry_run: bool) -> Dict:
    return {
        "removed": 0,
        "freed_bytes": 0,
        "kept": 0,
        "dry_run": dry_run,
        "by_kind": {},
    }


def _gc_count(stats: Dict, kind: str, size: int) -> None:
    stats["removed"] += 1
    stats["freed_bytes"] += size
    bucket = stats["by_kind"].setdefault(kind, {"count": 0, "bytes": 0})
    bucket["count"] += 1
    bucket["bytes"] += size


def _merge_gc_stats(into: Dict, part: Dict) -> None:
    into["removed"] += part["removed"]
    into["freed_bytes"] += part["freed_bytes"]
    into["kept"] += part["kept"]
    for kind, bucket in part["by_kind"].items():
        out = into["by_kind"].setdefault(kind, {"count": 0, "bytes": 0})
        out["count"] += bucket["count"]
        out["bytes"] += bucket["bytes"]


class _LocalManifests:
    """Run-ledger manifest files under ``<root>/runs/``.

    One shared implementation for the path-mode
    :class:`~repro.store.ledger.RunLedger` and the local backends, so
    ``RunLedger(store.root)`` and ``RunLedger(store)`` observe the same
    documents on a local store.
    """

    def __init__(self, root: Path) -> None:
        self.runs_dir = Path(root) / "runs"

    def put(self, run_id: str, manifest: Dict) -> None:
        data = json.dumps(manifest, sort_keys=True, indent=2)
        atomic_write_bytes(
            self.runs_dir / f"{run_id}.json", data.encode("utf-8")
        )

    def get(self, run_id: str) -> Optional[Dict]:
        try:
            return json.loads(
                (self.runs_dir / f"{run_id}.json").read_text()
            )
        except (OSError, json.JSONDecodeError):
            return None

    def list(self) -> List[Dict]:
        if not self.runs_dir.is_dir():
            return []
        manifests = []
        for path in sorted(self.runs_dir.glob("*.json")):
            if path.name.startswith("."):
                continue  # in-flight atomic write of another process
            try:
                manifests.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return manifests

    def delete(self, run_id: str) -> bool:
        try:
            (self.runs_dir / f"{run_id}.json").unlink()
        except OSError:
            return False
        return True


class StoreBackend(ABC):
    """Byte-level store protocol; see the module docstring.

    Keys are content hashes (hex), kinds are short identifiers; the
    codec layer above decides what the bytes mean.  ``ext`` is the blob
    filename suffix of the kind's codec — pure cosmetics for local
    trees, carried so every topology lays blobs out identically.
    """

    #: URI scheme of this backend ("sqlite", "sharded", "http").
    scheme: str = ""

    @property
    @abstractmethod
    def uri(self) -> str:
        """Round-trippable store URI of this backend."""

    @property
    def root(self) -> Optional[Path]:
        """Local root directory, or ``None`` for remote backends."""
        return None

    @abstractmethod
    def exists(self) -> bool:
        """Whether the store is present (dir exists / server answers)."""

    def initialize(self) -> None:
        """Create local state so :meth:`exists` answers True.

        A no-op for backends without local state (remote stores exist
        iff the server does).  Used by drivers that hand the store URI
        to other processes before their own first write.
        """

    # -- blobs ---------------------------------------------------------------

    @abstractmethod
    def put_bytes(
        self,
        kind: str,
        key: str,
        data: bytes,
        ext: str = "json",
        meta: Optional[Dict] = None,
    ) -> ArtifactRef:
        """Store ``data`` under ``(kind, key)``; idempotent."""

    @abstractmethod
    def get_bytes(
        self, kind: str, key: str, ext: str = "json"
    ) -> Optional[bytes]:
        """The blob bytes at ``(kind, key)``, or ``None`` on a miss.

        Local backends self-heal here: stale index rows are evicted,
        orphan blobs adopted, checksum drift re-indexed.
        """

    @abstractmethod
    def delete(self, kind: str, key: str, ext: str = "json") -> None:
        """Drop ``(kind, key)``; missing entries are a no-op."""

    @abstractmethod
    def iter_refs(self, kind: Optional[str] = None) -> List[ArtifactRef]:
        """Indexed artifacts sorted by ``(kind, key)``."""

    @abstractmethod
    def gc(
        self,
        referenced: Set[Tuple[str, str]],
        keep_kinds: Set[str],
        dry_run: bool = False,
    ) -> Dict:
        """Drop artifacts not referenced or of a kept kind.

        With ``dry_run`` nothing is deleted; the returned statistics
        (``removed``/``freed_bytes``/``kept``/``by_kind``) describe
        what a real pass would remove.
        """

    # -- run-ledger manifests ------------------------------------------------

    @abstractmethod
    def put_manifest(self, run_id: str, manifest: Dict) -> None:
        """Write (atomically) one run manifest."""

    @abstractmethod
    def get_manifest(self, run_id: str) -> Optional[Dict]:
        """One run manifest, or ``None``."""

    @abstractmethod
    def list_manifests(self) -> List[Dict]:
        """Every decodable run manifest (unsorted)."""

    @abstractmethod
    def delete_manifest(self, run_id: str) -> bool:
        """Drop one manifest; ``False`` when absent."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.uri}>"


class SqliteBackend(StoreBackend):
    """The original single-host layout: one sqlite index + blob tree.

    Persistent state is only the root path, so the backend is cheap to
    construct, safe to share across ``fork()`` and picklable into
    worker processes.  The sqlite connection is cached per process
    (keyed by pid: a forked child opens its own and *parks* the
    inherited parent handle rather than closing it, which sqlite
    forbids across processes) and opened with
    ``check_same_thread=False`` behind an instance lock so the serve
    layer's executor threads can share one backend.
    """

    scheme = "sqlite"

    def __init__(self, root) -> None:
        self._root = Path(root)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._lock = threading.RLock()
        self._check_layout()

    def _check_layout(self) -> None:
        manifest = self._root / STORE_MANIFEST
        if not manifest.is_file():
            return
        try:
            fmt = json.loads(manifest.read_text()).get("format")
        except (OSError, json.JSONDecodeError):
            return
        if fmt and fmt != self.scheme:
            raise StoreError(
                f"store at {self._root} is a {fmt!r} layout; open it "
                f"with a {fmt}:{self._root} URI"
            )

    def __getstate__(self):
        return {"root": self._root}

    def __setstate__(self, state):
        self._root = state["root"]
        self._conn = None
        self._conn_pid = None
        self._lock = threading.RLock()

    @property
    def uri(self) -> str:
        return f"sqlite:{self._root}"

    @property
    def root(self) -> Path:
        return self._root

    def exists(self) -> bool:
        return self._root.is_dir()

    def initialize(self) -> None:
        self._connect()

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        with self._lock:
            if self._conn is not None and self._conn_pid != pid:
                # Connected before a fork: the child parks the
                # inherited handle (never closes or reuses it) and
                # opens its own, exactly like the runtime's shm
                # segments are pid-guarded against child unlinks.
                _FORK_PARKED_CONNS.append(self._conn)
                self._conn = None
            if self._conn is None:
                self._root.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(
                    self._root / "index.sqlite3",
                    timeout=30.0,
                    check_same_thread=False,
                )
                conn.execute(_SCHEMA)
                self._conn = conn
                self._conn_pid = pid
            return self._conn

    def _blob_path(self, kind: str, key: str, ext: str) -> Path:
        return self._root / "objects" / kind / key[:2] / f"{key}.{ext}"

    def _index(
        self, kind: str, key: str, path: Path, digest: str,
        size: int, meta: Optional[Dict],
    ) -> None:
        with self._lock, self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts "
                "(kind, key, filename, sha256, size, created_at, meta) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    key,
                    str(path.relative_to(self._root)),
                    digest,
                    size,
                    time.time(),
                    json.dumps(meta or {}, sort_keys=True),
                ),
            )

    def _row(self, kind: str, key: str):
        with self._lock, self._connect() as conn:
            return conn.execute(
                "SELECT filename, sha256 FROM artifacts "
                "WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()

    def _evict(self, kind: str, key: str, ext: str = "json") -> None:
        self._drop_row(kind, key)
        try:
            self._blob_path(kind, key, ext).unlink()
        except OSError:
            pass

    def _drop_row(self, kind: str, key: str) -> None:
        with self._lock, self._connect() as conn:
            conn.execute(
                "DELETE FROM artifacts WHERE kind = ? AND key = ?",
                (kind, key),
            )

    # -- blobs ---------------------------------------------------------------

    def put_bytes(
        self,
        kind: str,
        key: str,
        data: bytes,
        ext: str = "json",
        meta: Optional[Dict] = None,
    ) -> ArtifactRef:
        digest = hashlib.sha256(data).hexdigest()
        path = self._blob_path(kind, key, ext)
        atomic_write_bytes(path, data)
        self._index(kind, key, path, digest, len(data), meta)
        return ArtifactRef(kind, key, path, digest, len(data))

    def get_bytes(
        self, kind: str, key: str, ext: str = "json"
    ) -> Optional[bytes]:
        row = self._row(kind, key)
        path = self._blob_path(kind, key, ext)
        if row is not None:
            path = self._root / row[0]
        try:
            data = path.read_bytes()
        except OSError:
            if row is not None:  # stale index entry: blob is gone
                self._evict(kind, key, ext)
                get_metrics().inc("store.evictions")
            return None
        digest = hashlib.sha256(data).hexdigest()
        if row is None or digest != row[1]:
            # A blob without an index row (a writer died between
            # rename and insert) is adopted; a checksum mismatch with
            # surviving bytes (two writers raced; the last rename won)
            # re-indexes them instead of discarding them.
            self._index(kind, key, path, digest, len(data), None)
        return data

    def delete(self, kind: str, key: str, ext: str = "json") -> None:
        self._evict(kind, key, ext)

    def iter_refs(self, kind: Optional[str] = None) -> List[ArtifactRef]:
        if not (self._root / "index.sqlite3").exists():
            return []
        query = "SELECT kind, key, filename, sha256, size FROM artifacts"
        params: Tuple = ()
        if kind is not None:
            query += " WHERE kind = ?"
            params = (kind,)
        with self._lock, self._connect() as conn:
            rows = conn.execute(query + " ORDER BY kind, key",
                                params).fetchall()
        return [
            ArtifactRef(k, key, self._root / fn, sha, size)
            for k, key, fn, sha, size in rows
        ]

    def gc(
        self,
        referenced: Set[Tuple[str, str]],
        keep_kinds: Set[str],
        dry_run: bool = False,
    ) -> Dict:
        stats = _empty_gc_stats(dry_run)
        gone_paths: Set[Path] = set()
        keep_paths: Set[Path] = set()
        for ref in self.iter_refs():
            if (ref.kind, ref.key) in referenced or ref.kind in keep_kinds:
                stats["kept"] += 1
                keep_paths.add(ref.path)
                continue
            _gc_count(stats, ref.kind, ref.size)
            gone_paths.add(ref.path)
            if not dry_run:
                self._drop_row(ref.kind, ref.key)
                try:
                    ref.path.unlink()
                except OSError:
                    pass
        objects = self._root / "objects"
        if objects.is_dir():
            for path in sorted(objects.rglob("*")):
                if path.name.startswith(_TMP_PREFIX):
                    continue  # in-flight write of a concurrent process
                if (
                    path.is_file()
                    and path not in keep_paths
                    and path not in gone_paths
                ):
                    try:
                        size = path.stat().st_size
                        if not dry_run:
                            path.unlink()
                    except OSError:
                        continue
                    kind = path.relative_to(objects).parts[0]
                    _gc_count(stats, kind, size)
        return stats

    # -- manifests -----------------------------------------------------------

    @property
    def _manifests(self) -> _LocalManifests:
        return _LocalManifests(self._root)

    def put_manifest(self, run_id: str, manifest: Dict) -> None:
        self._manifests.put(run_id, manifest)

    def get_manifest(self, run_id: str) -> Optional[Dict]:
        return self._manifests.get(run_id)

    def list_manifests(self) -> List[Dict]:
        return self._manifests.list()

    def delete_manifest(self, run_id: str) -> bool:
        return self._manifests.delete(run_id)


class ShardedBackend(StoreBackend):
    """N hash-sharded :class:`SqliteBackend` subtrees under one root.

    ``(kind, key)`` hashes to one shard, so concurrent writers spread
    across N independent sqlite indexes instead of serialising on one.
    The shard count is written to ``store-manifest.json`` when the
    store is created and validated on every open: reopening with a
    different ``?shards=N`` is a :class:`~repro.errors.StoreError`, not
    a silently split cache.  Run manifests live unsharded at the root
    (they are few, small, and enumerated as a set).
    """

    scheme = "sharded"

    def __init__(self, root, shards: Optional[int] = None) -> None:
        self._root = Path(root)
        recorded = self._read_manifest()
        if recorded is not None:
            if shards is not None and shards != recorded:
                raise StoreError(
                    f"sharded store at {self._root} has {recorded} "
                    f"shards (root manifest); cannot reopen with "
                    f"shards={shards}"
                )
            shards = recorded
        elif shards is None:
            shards = DEFAULT_SHARDS
        if shards < 1:
            raise StoreError("a sharded store needs shards >= 1")
        self.shards = int(shards)
        self._backends = [
            SqliteBackend(self._root / "shards" / f"{i:02d}")
            for i in range(self.shards)
        ]
        self._manifest_written = recorded is not None

    def _read_manifest(self) -> Optional[int]:
        manifest = self._root / STORE_MANIFEST
        if not manifest.is_file():
            if (self._root / "index.sqlite3").is_file():
                raise StoreError(
                    f"store at {self._root} is a plain sqlite layout; "
                    f"open it with sqlite:{self._root}"
                )
            return None
        try:
            doc = json.loads(manifest.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"unreadable store manifest at {manifest}: {exc}"
            ) from None
        if doc.get("format") != self.scheme:
            raise StoreError(
                f"store at {self._root} is a "
                f"{doc.get('format')!r} layout, not sharded"
            )
        count = doc.get("shards")
        if not isinstance(count, int) or count < 1:
            raise StoreError(
                f"store manifest at {manifest} has an invalid shard "
                f"count {count!r}"
            )
        return count

    def _ensure_manifest(self) -> None:
        if self._manifest_written:
            return
        doc = {"format": self.scheme, "version": 1,
               "shards": self.shards}
        atomic_write_bytes(
            self._root / STORE_MANIFEST,
            json.dumps(doc, sort_keys=True, indent=2).encode("utf-8"),
        )
        self._manifest_written = True

    def __getstate__(self):
        return {"root": self._root, "shards": self.shards,
                "written": self._manifest_written}

    def __setstate__(self, state):
        self._root = state["root"]
        self.shards = state["shards"]
        self._backends = [
            SqliteBackend(self._root / "shards" / f"{i:02d}")
            for i in range(self.shards)
        ]
        self._manifest_written = state["written"]

    @property
    def uri(self) -> str:
        return f"sharded:{self._root}?shards={self.shards}"

    @property
    def root(self) -> Path:
        return self._root

    def exists(self) -> bool:
        return self._root.is_dir()

    def initialize(self) -> None:
        self._ensure_manifest()
        for backend in self._backends:
            backend.initialize()

    def _shard(self, kind: str, key: str) -> int:
        digest = hashlib.sha256(f"{kind}:{key}".encode("utf-8"))
        return int.from_bytes(digest.digest()[:8], "big") % self.shards

    def _route(self, kind: str, key: str) -> SqliteBackend:
        shard = self._shard(kind, key)
        get_metrics().inc(f"store.shard.{shard:02d}.ops")
        return self._backends[shard]

    # -- blobs ---------------------------------------------------------------

    def put_bytes(self, kind, key, data, ext="json", meta=None):
        self._ensure_manifest()
        ref = self._route(kind, key).put_bytes(
            kind, key, data, ext=ext, meta=meta
        )
        return ref

    def get_bytes(self, kind, key, ext="json"):
        shard = self._shard(kind, key)
        metrics = get_metrics()
        metrics.inc(f"store.shard.{shard:02d}.ops")
        data = self._backends[shard].get_bytes(kind, key, ext=ext)
        if data is not None:
            metrics.inc(f"store.shard.{shard:02d}.hits")
        return data

    def delete(self, kind, key, ext="json"):
        self._route(kind, key).delete(kind, key, ext=ext)

    def iter_refs(self, kind: Optional[str] = None) -> List[ArtifactRef]:
        refs: List[ArtifactRef] = []
        for backend in self._backends:
            refs.extend(backend.iter_refs(kind))
        refs.sort(key=lambda ref: (ref.kind, ref.key))
        return refs

    def gc(
        self,
        referenced: Set[Tuple[str, str]],
        keep_kinds: Set[str],
        dry_run: bool = False,
    ) -> Dict:
        stats = _empty_gc_stats(dry_run)
        for backend in self._backends:
            _merge_gc_stats(
                stats, backend.gc(referenced, keep_kinds, dry_run)
            )
        return stats

    # -- manifests -----------------------------------------------------------

    @property
    def _manifests(self) -> _LocalManifests:
        return _LocalManifests(self._root)

    def put_manifest(self, run_id: str, manifest: Dict) -> None:
        self._ensure_manifest()
        self._manifests.put(run_id, manifest)

    def get_manifest(self, run_id: str) -> Optional[Dict]:
        return self._manifests.get(run_id)

    def list_manifests(self) -> List[Dict]:
        return self._manifests.list()

    def delete_manifest(self, run_id: str) -> bool:
        return self._manifests.delete(run_id)
