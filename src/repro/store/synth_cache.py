"""Synthesis-report caches pluggable into the evaluation engine.

The engine's in-memory memo dies with the process;
:class:`StoreSynthCache` backs it with an :class:`ArtifactStore` so
synthesis reports survive across processes and runs and are shared by
concurrent workers (atomic blob writes make racing puts harmless — both
sides write identical content-addressed reports).

The engine is duck-typed: any object with ``get(memo_key)`` /
``put(memo_key, report)`` works.  Keys are the engine's memo tuples
(sorted ``(op name, component name)`` pairs); the cache scopes them with
a *namespace* — the accelerator fingerprint hash — because the composed
netlist (and hence the report) depends on the accelerator, not just the
chosen components.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.store.artifacts import ArtifactStore
from repro.store.hashing import content_hash

MemoKey = Tuple[Tuple[str, str], ...]


class MemorySynthCache:
    """Dict-backed cache (tests, or explicit sharing between engines)."""

    def __init__(self) -> None:
        self._reports: Dict[MemoKey, object] = {}

    def get(self, memo_key: MemoKey):
        return self._reports.get(memo_key)

    def put(self, memo_key: MemoKey, report) -> None:
        self._reports[memo_key] = report

    def __len__(self) -> int:
        return len(self._reports)


class StoreSynthCache:
    """Synthesis cache persisted in an :class:`ArtifactStore`.

    Holds only the store (a path) and the namespace string, so it is
    picklable and fork-safe for the engine's multiprocessing workers.
    """

    KIND = "synthesis"

    def __init__(self, store: ArtifactStore, namespace: str) -> None:
        self.store = store
        self.namespace = namespace

    def _key(self, memo_key: MemoKey) -> str:
        return content_hash(
            {
                "namespace": self.namespace,
                "records": [list(pair) for pair in memo_key],
            }
        )

    def get(self, memo_key: MemoKey):
        return self.store.get(self.KIND, self._key(memo_key))

    def put(self, memo_key: MemoKey, report) -> None:
        self.store.put(
            self.KIND,
            self._key(memo_key),
            report,
            meta={"namespace": self.namespace},
        )


def synth_cache_for(
    store: Optional[ArtifactStore], accelerator_hash: str
) -> Optional[StoreSynthCache]:
    """A store-backed cache scoped to one accelerator, or ``None``."""
    if store is None:
        return None
    return StoreSynthCache(store, accelerator_hash)
