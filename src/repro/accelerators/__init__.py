"""Accelerator models: dataflow IR, software simulation and profiling.

Each case-study accelerator exists in two coupled views, as the paper
requires: a *software model* (the dataflow graph evaluated with pluggable
operation implementations, used for QoR analysis) and a *hardware model*
(the same graph lowered to a composed gate netlist, used for synthesis).
"""

from repro.accelerators.graph import DataflowGraph, Node, NodeKind
from repro.accelerators.base import ImageAccelerator, OpSlot
from repro.accelerators.profiler import OperandProfile, profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    gaussian_kernel_weights,
)
from repro.accelerators.window import (
    WindowAccelerator,
    WindowSpec,
    gaussian_window,
    quantize_kernel,
)

__all__ = [
    "DataflowGraph",
    "Node",
    "NodeKind",
    "ImageAccelerator",
    "OpSlot",
    "OperandProfile",
    "profile_accelerator",
    "SobelEdgeDetector",
    "FixedGaussianFilter",
    "GenericGaussianFilter",
    "gaussian_kernel_weights",
    "WindowAccelerator",
    "WindowSpec",
    "gaussian_window",
    "quantize_kernel",
]
