"""Shared machinery of the image-processing accelerators.

An :class:`ImageAccelerator` owns a dataflow graph over an odd N x N pixel
window (inputs ``x0..x{N*N-1}``, row-major; ``window`` defaults to the
paper's 3).  It provides:

* vectorised software simulation over whole images, with pluggable
  approximate implementations per arithmetic op (the paper's C++ model);
* lowering to a composed gate netlist given a component assignment (the
  paper's Verilog model), on which the synthesis substitute measures the
  *real* accelerator hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.graph import (
    APPROXIMABLE,
    DataflowGraph,
    Node,
    NodeKind,
    OpImpl,
)
from repro.errors import AcceleratorError
from repro.library.component import ComponentRecord, OpSignature
from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, CONST1, Netlist


@dataclass(frozen=True)
class OpSlot:
    """One replaceable operation of an accelerator."""

    name: str
    signature: OpSignature


class ImageAccelerator:
    """Base class of the case-study and window-family accelerators."""

    #: subclasses set a human-readable name
    name: str = "accelerator"

    #: pixel-window side length (odd); ``x`` inputs are row-major
    window: int = 3

    def __init__(self):
        if self.window < 1 or self.window % 2 == 0:
            raise AcceleratorError(
                f"window side must be odd and positive, got {self.window}"
            )
        self.graph = self._build_graph()
        self._slots = [
            OpSlot(node.name, (node.kind.value, node.width))
            for node in self.graph.approximable_ops()
        ]

    def _build_graph(self) -> DataflowGraph:
        raise NotImplementedError

    # -- structure ----------------------------------------------------------

    def op_slots(self) -> List[OpSlot]:
        """The replaceable operations, in graph order."""
        return list(self._slots)

    def op_inventory(self) -> Dict[OpSignature, int]:
        """Operation count per signature (the paper's Table 1 row)."""
        inventory: Dict[OpSignature, int] = {}
        for slot in self._slots:
            inventory[slot.signature] = inventory.get(slot.signature, 0) + 1
        return inventory

    # -- software model -------------------------------------------------------

    def window_inputs(self, image: np.ndarray) -> Dict[str, np.ndarray]:
        """Flattened N x N neighbourhoods of ``image`` (edge replication)."""
        image = np.asarray(image)
        if image.ndim != 2:
            raise AcceleratorError("expected a 2-D gray-scale image")
        side = self.window
        padded = np.pad(image.astype(np.int64), side // 2, mode="edge")
        rows, cols = image.shape
        inputs: Dict[str, np.ndarray] = {}
        k = 0
        for dr in range(side):
            for dc in range(side):
                inputs[f"x{k}"] = padded[
                    dr : dr + rows, dc : dc + cols
                ].reshape(-1)
                k += 1
        return inputs

    def extra_inputs(self) -> Dict[str, int]:
        """Non-pixel inputs (e.g. filter coefficients); default none."""
        return {}

    def compute(
        self,
        image: np.ndarray,
        assignment: Optional[Dict[str, OpImpl]] = None,
        extra: Optional[Dict[str, int]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Run the accelerator over ``image``; returns the output image."""
        inputs = self.window_inputs(image)
        merged_extra = self.extra_inputs()
        if extra:
            merged_extra.update(extra)
        size = image.size
        for name, value in merged_extra.items():
            inputs[name] = np.full(size, int(value), dtype=np.int64)
        out = self.graph.evaluate(inputs, assignment, capture)
        return out.reshape(image.shape)

    def golden(
        self, image: np.ndarray, extra: Optional[Dict[str, int]] = None
    ) -> np.ndarray:
        """Exact (accurate accelerator) output for ``image``."""
        return self.compute(image, assignment=None, extra=extra)

    # -- hardware model ---------------------------------------------------------

    def _node_width(self, node: Node, widths: Dict[str, int]) -> int:
        """Bit-width of a node's value in the lowered netlist."""
        if node.kind is NodeKind.INPUT:
            return node.width
        if node.kind is NodeKind.CONST:
            return node.width
        if node.kind is NodeKind.ADD:
            return node.width + 1
        if node.kind is NodeKind.SUB:
            return node.width + 1
        if node.kind is NodeKind.MUL:
            return 2 * node.width
        if node.kind is NodeKind.SHL:
            return widths[node.operands[0]] + node.attrs["amount"]
        if node.kind is NodeKind.SHR:
            return max(1, widths[node.operands[0]] - node.attrs["amount"])
        if node.kind is NodeKind.ABS:
            return widths[node.operands[0]]
        if node.kind is NodeKind.CLIP:
            return max(1, int(node.attrs["high"]).bit_length())
        raise AcceleratorError(f"unhandled node kind {node.kind}")

    @staticmethod
    def _adjust(nl: Netlist, bits: List[int], width: int) -> List[int]:
        """Zero-extend or truncate a bit vector to ``width``."""
        if len(bits) >= width:
            return bits[:width]
        return bits + [CONST0] * (width - len(bits))

    def _lower_abs(self, nl: Netlist, bits: List[int]) -> List[int]:
        """|x| of a two's-complement vector: XOR with sign, add sign."""
        sign = bits[-1]
        out: List[int] = []
        carry = sign
        for bit in bits:
            (x,) = nl.add_gate(CELLS["XOR2"], [bit, sign])
            s, carry = nl.add_gate(CELLS["HA"], [x, carry])
            out.append(s)
        return out

    def _lower_clip(
        self, nl: Netlist, bits: List[int], low: int, high: int, width: int
    ) -> List[int]:
        """Saturating clip of a non-negative value to [0, 2**k - 1]."""
        if low != 0 or (high + 1) & high:
            raise AcceleratorError(
                "netlist lowering supports clip to [0, 2**k - 1] only"
            )
        keep = bits[:width]
        overflow_bits = bits[width:]
        if not overflow_bits:
            return self._adjust(nl, keep, width)
        over = overflow_bits[0]
        for bit in overflow_bits[1:]:
            (over,) = nl.add_gate(CELLS["OR2"], [over, bit])
        return [nl.add_gate(CELLS["OR2"], [b, over])[0] for b in keep]

    def _lower_clip_signed(
        self, nl: Netlist, bits: List[int], low: int, high: int, width: int
    ) -> List[int]:
        """Clip of a two's-complement value to [0, 2**k - 1].

        Negative inputs clamp to 0 (matching ``np.clip`` on the signed
        software value), positive overflow saturates to ``high``: each
        output bit is ``(keep | overflow) & ~sign``.
        """
        if low != 0 or (high + 1) & high:
            raise AcceleratorError(
                "netlist lowering supports clip to [0, 2**k - 1] only"
            )
        sign = bits[-1]
        body = bits[:-1]
        keep = self._adjust(nl, body, width)
        overflow_bits = body[width:]
        if overflow_bits:
            over = overflow_bits[0]
            for bit in overflow_bits[1:]:
                (over,) = nl.add_gate(CELLS["OR2"], [over, bit])
            keep = [
                nl.add_gate(CELLS["OR2"], [b, over])[0] for b in keep
            ]
        (not_sign,) = nl.add_gate(CELLS["INV"], [sign])
        return [
            nl.add_gate(CELLS["AND2"], [b, not_sign])[0] for b in keep
        ]

    def scenario_extras(
        self, scenarios: Sequence[Optional[Dict[str, int]]]
    ) -> List[Dict[str, int]]:
        """Merged non-pixel inputs of every scenario (defaults + extra)."""
        merged_list = []
        for extra in scenarios:
            merged = self.extra_inputs()
            if extra:
                merged.update(extra)
            merged_list.append(merged)
        return merged_list

    def stack_runs(
        self,
        images: Sequence[np.ndarray],
        scenarios: Sequence[Optional[Dict[str, int]]],
    ) -> Dict[str, np.ndarray]:
        """All (image x scenario) runs as one broadcastable 3-D batch.

        Pixel inputs are emitted as ``(images, 1, pixels)`` arrays and
        non-pixel inputs as ``(1, scenarios, 1)`` columns, so elementwise
        graph execution broadcasts them to ``(images, scenarios,
        pixels)`` without ever materialising the scenario-duplicated
        pixel rows.  Run order is the canonical image-major,
        scenario-minor one: reshaping an output to ``(images *
        scenarios, pixels)`` yields run ``i * len(scenarios) + s``.
        """
        pixel_rows: Dict[str, List[np.ndarray]] = {}
        for image in images:
            for name, flat in self.window_inputs(image).items():
                pixel_rows.setdefault(name, []).append(flat)
        stacked = {
            name: np.stack(rows, axis=0)[:, None, :]
            for name, rows in pixel_rows.items()
        }
        extras = self.scenario_extras(scenarios)
        for name in extras[0].keys():
            stacked[name] = np.asarray(
                [int(e[name]) for e in extras], dtype=np.int64
            )[None, :, None]
        return stacked

    def to_netlist(
        self, records: Optional[Dict[str, ComponentRecord]] = None
    ) -> Netlist:
        """Lower the accelerator to one composed gate netlist.

        ``records`` assigns a library component to each arithmetic op node
        (by node name); unassigned ops raise — use
        :meth:`exact_assignment` helpers at the core layer to fill gaps.
        """
        records = records or {}
        nl = Netlist(self.name)
        widths: Dict[str, int] = {}
        bits: Dict[str, List[int]] = {}
        # Which nodes carry two's-complement (possibly negative) values:
        # subtraction introduces a sign, magnitude removes it, wiring
        # operators propagate it.  Clipping a signed value needs the
        # sign-aware lowering to match ``np.clip`` on the software side.
        signed: Dict[str, bool] = {}
        for node in self.graph.nodes():
            width = self._node_width(node, widths)
            widths[node.name] = width
            signed[node.name] = (
                node.kind is NodeKind.SUB
                or (
                    node.kind
                    in (NodeKind.SHL, NodeKind.SHR, NodeKind.CLIP)
                    and signed.get(node.operands[0], False)
                )
            )
            if node.kind is NodeKind.INPUT:
                bits[node.name] = nl.add_input(node.name, node.width)
            elif node.kind is NodeKind.CONST:
                value = node.attrs["value"]
                bits[node.name] = [
                    CONST1 if (value >> i) & 1 else CONST0
                    for i in range(width)
                ]
            elif node.kind in APPROXIMABLE:
                if node.name not in records:
                    raise AcceleratorError(
                        f"no component assigned to op {node.name!r}"
                    )
                record = records[node.name]
                if record.signature != (node.kind.value, node.width):
                    raise AcceleratorError(
                        f"component {record.name!r} signature "
                        f"{record.signature} does not match op "
                        f"{node.name!r} ({node.kind.value}, {node.width})"
                    )
                component = record.build_netlist()
                a = self._adjust(nl, bits[node.operands[0]], node.width)
                b = self._adjust(nl, bits[node.operands[1]], node.width)
                outs = nl.instantiate(component, {"a": a, "b": b})
                bits[node.name] = outs["y"]
            elif node.kind is NodeKind.SHL:
                amount = node.attrs["amount"]
                bits[node.name] = [CONST0] * amount + bits[node.operands[0]]
            elif node.kind is NodeKind.SHR:
                amount = node.attrs["amount"]
                src = bits[node.operands[0]]
                bits[node.name] = src[amount:] or [CONST0]
            elif node.kind is NodeKind.ABS:
                bits[node.name] = self._lower_abs(
                    nl, bits[node.operands[0]]
                )
            elif node.kind is NodeKind.CLIP:
                lower = (
                    self._lower_clip_signed
                    if signed[node.operands[0]]
                    else self._lower_clip
                )
                bits[node.name] = lower(
                    nl,
                    bits[node.operands[0]],
                    node.attrs["low"],
                    node.attrs["high"],
                    width,
                )
                signed[node.name] = False
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        nl.add_output("out", bits[self.graph.output])
        return nl
