"""Parameterized N x N window-convolution accelerator family.

The three case-study accelerators of the paper are hand-built 3x3 graphs.
:class:`WindowAccelerator` generalises them into a declarative family: a
:class:`WindowSpec` names an odd window side, a coefficient *mode* and the
arithmetic parameters, and the graph — multiplier bank, balanced adder
trees, signed-weight subtraction, magnitude/normalisation/clipping tail —
is derived from it.  Three modes exist:

* ``"fixed"``   — compile-time signed integer weights.  Weight magnitudes
  of 1 are free wires, powers of two are free shifts, everything else is
  a CONST x pixel multiplier; positive and negative taps accumulate in
  separate trees joined by one subtractor (the Sobel pattern).
* ``"general"`` — runtime non-negative coefficient inputs ``w0..w{N*N-1}``
  (the generic-Gaussian pattern): one multiplier per tap and a balanced
  adder tree, with per-scenario coefficient sets fed through ``extra``
  inputs.
* ``"separable"`` — runtime row/column coefficient vectors ``h0..h{N-1}``
  and ``v0..v{N-1}``: per-row horizontal dot products followed by a
  vertical combination, the windowed form of a separable convolution
  (2N coefficients instead of N^2).

Operand bit-widths are not declared but *derived*: the builder tracks the
worst-case magnitude of every intermediate value (weights are bounded by
the spec) and sizes each add/sub/mul to the smallest width that keeps its
operands unmasked, so the family is exact-by-construction at any window
size and the operation signatures follow the arithmetic instead of being
hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.graph import DataflowGraph, NodeKind
from repro.errors import AcceleratorError

#: Coefficient modes of the family.
MODES = ("fixed", "general", "separable")


def _bitlen(value: int) -> int:
    """Bits needed to represent the non-negative magnitude ``value``."""
    return max(1, int(value).bit_length())


@dataclass(frozen=True)
class WindowSpec:
    """Declarative description of one window-convolution accelerator.

    ``weights`` (fixed mode) are signed integers, row-major, ``size`` x
    ``size``.  ``weight_sum`` bounds the sum of runtime coefficients in
    general mode (and of each of the row/column vectors in separable
    mode); it sizes the adder tree and is therefore a hard contract —
    scenarios whose coefficients exceed it would overflow the derived
    widths.  ``shift`` is the normalisation right-shift applied before
    clipping, and ``absolute`` inserts a magnitude stage (edge-detector
    tail) between accumulation and normalisation.
    """

    name: str
    size: int
    mode: str = "general"
    weights: Optional[Tuple[int, ...]] = None
    shift: int = 0
    absolute: bool = False
    pixel_bits: int = 8
    coeff_bits: int = 8
    weight_sum: Optional[int] = None
    description: str = ""

    def __post_init__(self):
        if self.size < 1 or self.size % 2 == 0:
            raise AcceleratorError(
                f"{self.name}: window side must be odd, got {self.size}"
            )
        if self.mode not in MODES:
            raise AcceleratorError(
                f"{self.name}: unknown mode {self.mode!r} "
                f"(expected one of {MODES})"
            )
        if self.pixel_bits < 1 or self.coeff_bits < 1:
            raise AcceleratorError(
                f"{self.name}: bit depths must be positive"
            )
        if self.shift < 0:
            raise AcceleratorError(f"{self.name}: shift must be >= 0")
        taps = self.size * self.size
        if self.mode == "fixed":
            if self.weights is None or len(self.weights) != taps:
                raise AcceleratorError(
                    f"{self.name}: fixed mode needs {taps} weights"
                )
            if not any(self.weights):
                raise AcceleratorError(
                    f"{self.name}: all-zero kernels are not supported"
                )
        else:
            if self.weights is not None:
                raise AcceleratorError(
                    f"{self.name}: {self.mode} mode takes runtime "
                    "coefficients, not fixed weights"
                )
            if self.weight_sum is None or self.weight_sum < 1:
                raise AcceleratorError(
                    f"{self.name}: {self.mode} mode needs a positive "
                    "weight_sum bound"
                )

    # -- derived bounds ----------------------------------------------------

    @property
    def pixel_max(self) -> int:
        return (1 << self.pixel_bits) - 1

    @property
    def coeff_max(self) -> int:
        """Largest single runtime coefficient the derived widths admit."""
        bound = (1 << self.coeff_bits) - 1
        if self.weight_sum is not None:
            bound = min(bound, self.weight_sum)
        return bound

    def weights_2d(self) -> Tuple[Tuple[int, ...], ...]:
        """Fixed weights as ``size`` rows (fixed mode only)."""
        if self.weights is None:
            raise AcceleratorError(f"{self.name}: no fixed weights")
        n = self.size
        return tuple(
            tuple(self.weights[r * n : (r + 1) * n]) for r in range(n)
        )


class WindowAccelerator(ImageAccelerator):
    """An :class:`ImageAccelerator` generated from a :class:`WindowSpec`."""

    def __init__(self, spec: WindowSpec):
        self.spec = spec
        self.name = spec.name
        self.window = spec.size
        super().__init__()

    # -- graph construction ------------------------------------------------

    def _build_graph(self) -> DataflowGraph:
        builder = {
            "fixed": self._build_fixed,
            "general": self._build_general,
            "separable": self._build_separable,
        }[self.spec.mode]
        g = DataflowGraph(self.name)
        for k in range(self.spec.size * self.spec.size):
            g.add_input(f"x{k}", self.spec.pixel_bits)
        acc, bound, signed = builder(g)
        self._finish(g, acc, bound, signed)
        return g

    def _op_width(self, *operand_bounds: int) -> int:
        """Smallest op width whose mask keeps every operand intact."""
        return _bitlen(max(operand_bounds))

    def _reduce_sum(
        self,
        g: DataflowGraph,
        prefix: str,
        terms: List[str],
        bounds: List[int],
        cap: Optional[int] = None,
    ) -> Tuple[str, int]:
        """Balanced pairwise adder tree over ``terms``.

        ``cap`` bounds every partial sum from above (general/separable
        mode: coefficient *sums* are bounded even though per-term bounds
        are not additive-tight), keeping tree widths at the true worst
        case instead of the per-term pessimum.
        """
        level = 0
        while len(terms) > 1:
            next_terms: List[str] = []
            next_bounds: List[int] = []
            for i in range(0, len(terms) - 1, 2):
                width = self._op_width(bounds[i], bounds[i + 1])
                name = g.add_op(
                    f"{prefix}_l{level}n{i // 2}",
                    NodeKind.ADD,
                    width,
                    terms[i],
                    terms[i + 1],
                )
                total = bounds[i] + bounds[i + 1]
                if cap is not None:
                    total = min(total, cap)
                next_terms.append(name)
                next_bounds.append(total)
            if len(terms) % 2:
                next_terms.append(terms[-1])
                next_bounds.append(bounds[-1])
            terms, bounds = next_terms, next_bounds
            level += 1
        return terms[0], bounds[0]

    def _fixed_term(
        self, g: DataflowGraph, k: int, magnitude: int
    ) -> Tuple[str, int]:
        """|w| * x_k as a wire, a free shift, or a CONST multiplier."""
        bound = magnitude * self.spec.pixel_max
        if magnitude == 1:
            return f"x{k}", bound
        if magnitude & (magnitude - 1) == 0:
            return (
                g.add_shl(f"t{k}", f"x{k}", magnitude.bit_length() - 1),
                bound,
            )
        width = self._op_width(magnitude, self.spec.pixel_max)
        g.add_const(f"c{k}", magnitude, _bitlen(magnitude))
        return (
            g.add_op(f"t{k}", NodeKind.MUL, width, f"c{k}", f"x{k}"),
            bound,
        )

    def _build_fixed(self, g: DataflowGraph) -> Tuple[str, int, bool]:
        pos: List[Tuple[str, int]] = []
        neg: List[Tuple[str, int]] = []
        for k, weight in enumerate(self.spec.weights):
            if weight == 0:
                continue
            term = self._fixed_term(g, k, abs(int(weight)))
            (pos if weight > 0 else neg).append(term)
        if not pos:
            # All-negative kernels: accumulate and subtract from zero so
            # the magnitude tail still sees the right value.
            g.add_const("zero", 0, 1)
            pos = [("zero", 0)]
        acc_p, bound_p = self._reduce_sum(
            g, "pos", [t for t, _ in pos], [b for _, b in pos]
        )
        if not neg:
            return acc_p, bound_p, False
        acc_n, bound_n = self._reduce_sum(
            g, "neg", [t for t, _ in neg], [b for _, b in neg]
        )
        width = self._op_width(bound_p, bound_n)
        acc = g.add_op("diff", NodeKind.SUB, width, acc_p, acc_n)
        return acc, max(bound_p, bound_n), True

    def _build_general(self, g: DataflowGraph) -> Tuple[str, int, bool]:
        spec = self.spec
        taps = spec.size * spec.size
        mul_width = self._op_width(spec.coeff_max, spec.pixel_max)
        terms: List[str] = []
        bounds: List[int] = []
        for k in range(taps):
            g.add_input(f"w{k}", spec.coeff_bits)
            terms.append(
                g.add_op(f"mul{k}", NodeKind.MUL, mul_width,
                         f"w{k}", f"x{k}")
            )
            bounds.append(spec.coeff_max * spec.pixel_max)
        acc, bound = self._reduce_sum(
            g, "sum", terms, bounds,
            cap=spec.weight_sum * spec.pixel_max,
        )
        return acc, bound, False

    def _build_separable(self, g: DataflowGraph) -> Tuple[str, int, bool]:
        spec = self.spec
        n = spec.size
        for c in range(n):
            g.add_input(f"h{c}", spec.coeff_bits)
        for r in range(n):
            g.add_input(f"v{r}", spec.coeff_bits)
        row_cap = spec.weight_sum * spec.pixel_max
        mul_width = self._op_width(spec.coeff_max, spec.pixel_max)
        row_accs: List[str] = []
        for r in range(n):
            terms = [
                g.add_op(
                    f"hmul{r}_{c}", NodeKind.MUL, mul_width,
                    f"h{c}", f"x{r * n + c}",
                )
                for c in range(n)
            ]
            bounds = [spec.coeff_max * spec.pixel_max] * n
            acc, _ = self._reduce_sum(
                g, f"row{r}", terms, bounds, cap=row_cap
            )
            row_accs.append(acc)
        v_width = self._op_width(spec.coeff_max, row_cap)
        terms = [
            g.add_op(f"vmul{r}", NodeKind.MUL, v_width,
                     f"v{r}", row_accs[r])
            for r in range(n)
        ]
        bounds = [spec.coeff_max * row_cap] * n
        acc, bound = self._reduce_sum(
            g, "col", terms, bounds, cap=spec.weight_sum * row_cap
        )
        return acc, bound, False

    def _finish(
        self, g: DataflowGraph, acc: str, bound: int, signed: bool
    ) -> None:
        """Magnitude / normalisation / clip tail shared by all modes."""
        spec = self.spec
        if spec.absolute:
            if not signed:
                raise AcceleratorError(
                    f"{spec.name}: absolute output needs a signed "
                    "accumulator (a kernel with negative taps)"
                )
            acc = g.add_abs("mag", acc)
        if spec.shift:
            acc = g.add_shr("norm", acc, spec.shift)
        g.add_clip("out", acc, 0, spec.pixel_max)
        g.set_output("out")

    # -- runtime coefficients ----------------------------------------------

    def coefficient_names(self) -> List[str]:
        """Runtime coefficient input names, in declaration order."""
        spec = self.spec
        if spec.mode == "general":
            return [f"w{k}" for k in range(spec.size * spec.size)]
        if spec.mode == "separable":
            return [f"h{c}" for c in range(spec.size)] + [
                f"v{r}" for r in range(spec.size)
            ]
        return []

    def kernel_extra(self, coefficients: Sequence[int]) -> Dict[str, int]:
        """``extra``-input dict for one runtime coefficient set.

        General mode takes ``size**2`` row-major weights; separable mode
        takes the ``2 * size`` concatenated (horizontal, vertical)
        vector.  Values are validated against the spec's bounds — the
        derived widths are only exact within them.
        """
        names = self.coefficient_names()
        if not names:
            raise AcceleratorError(
                f"{self.name}: fixed-mode accelerators take no runtime "
                "coefficients"
            )
        if len(coefficients) != len(names):
            raise AcceleratorError(
                f"{self.name}: expected {len(names)} coefficients, "
                f"got {len(coefficients)}"
            )
        values = [int(c) for c in coefficients]
        for value in values:
            if not 0 <= value <= self.spec.coeff_max:
                raise AcceleratorError(
                    f"{self.name}: coefficient {value} outside "
                    f"[0, {self.spec.coeff_max}]"
                )
        cap = self.spec.weight_sum
        if self.spec.mode == "general":
            groups = [values]
        else:
            groups = [values[: self.spec.size], values[self.spec.size:]]
        for group in groups:
            if sum(group) > cap:
                raise AcceleratorError(
                    f"{self.name}: coefficients sum to {sum(group)}, "
                    f"spec bounds {cap}"
                )
        return dict(zip(names, values))

    def default_coefficients(self) -> List[int]:
        """A box kernel filling the spec's weight budget (runtime modes)."""
        spec = self.spec
        if spec.mode == "general":
            count = spec.size * spec.size
            vectors = [self._flat_box(count, spec.weight_sum)]
        elif spec.mode == "separable":
            vectors = [self._flat_box(spec.size, spec.weight_sum)] * 2
        else:
            return []
        return [v for vector in vectors for v in vector]

    def _flat_box(self, count: int, total: int) -> List[int]:
        """``count`` near-equal non-negative ints summing to ``total``."""
        base = total // count
        if base > self.spec.coeff_max:
            base = self.spec.coeff_max
        values = [base] * count
        remainder = total - base * count
        centre = count // 2
        values[centre] = min(
            self.spec.coeff_max, values[centre] + max(0, remainder)
        )
        return values

    def extra_inputs(self) -> Dict[str, int]:
        if self.spec.mode == "fixed":
            return {}
        return self.kernel_extra(self.default_coefficients())


def quantize_kernel(
    values: Sequence[float], total: int, coeff_max: int = 255
) -> Tuple[int, ...]:
    """Quantise non-negative reals to integers summing exactly to ``total``.

    Proportional rounding with the drift folded into the largest tap (the
    N x N generalisation of ``gaussian_kernel_weights``).  Raises when a
    tap would exceed ``coeff_max``.
    """
    values = [float(v) for v in values]
    if not values or any(v < 0 for v in values):
        raise ValueError("kernel values must be non-negative")
    norm = sum(values)
    if norm <= 0:
        raise ValueError("kernel values must not all be zero")
    weights = [int(round(v / norm * total)) for v in values]
    # Drift lands on the largest tap; ties prefer the middle of the
    # kernel so flat (box) kernels stay centre-symmetric-ish.
    middle = len(values) // 2
    centre = max(
        range(len(values)),
        key=lambda i: (values[i], -abs(i - middle)),
    )
    weights[centre] += total - sum(weights)
    if weights[centre] < 0 or any(w > coeff_max for w in weights):
        raise ValueError(
            f"total {total} is not representable with coeff_max "
            f"{coeff_max} for this kernel"
        )
    return tuple(weights)


def gaussian_window(size: int, sigma: float) -> List[float]:
    """Unnormalised ``size`` x ``size`` Gaussian samples, row-major."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if size < 1 or size % 2 == 0:
        raise ValueError("size must be odd and positive")
    half = size // 2
    return [
        math.exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma))
        for dr in range(-half, half + 1)
        for dc in range(-half, half + 1)
    ]
