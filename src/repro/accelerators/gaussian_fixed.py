"""Gaussian filter with fixed coefficients — paper Fig. 2b.

The 3x3 kernel (w = 3, sigma = 2) is quantised to ``[[12, 15, 12],
[15, 20, 15], [12, 15, 12]] / 128``.  Because the coefficients are
constants, the constant multiplications are realised multiplier-lessly
(MCM) with shifts and adds, as the paper obtains from SPIRAL:

* ``12 * s = (s << 3) + (s << 2)``  — one 16-bit adder
* ``15 * s = (s << 4) - s``         — one 16-bit subtractor
* ``20 * s = (s << 4) + (s << 2)``  — one 16-bit adder

yielding exactly the Table 1 inventory: four 8-bit adders, two 9-bit
adders, four 16-bit adders and one 16-bit subtractor (11 operations).
"""

from __future__ import annotations

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.graph import DataflowGraph, NodeKind

#: The quantised kernel (sums to 128, so the output shift is 7).
KERNEL = ((12, 15, 12), (15, 20, 15), (12, 15, 12))


class FixedGaussianFilter(ImageAccelerator):
    """3x3 Gaussian smoothing filter with constant MCM coefficients."""

    name = "fixed_gf"

    def _build_graph(self) -> DataflowGraph:
        g = DataflowGraph(self.name)
        for k in range(9):
            g.add_input(f"x{k}", 8)
        # Symmetric pixel groups: corners (weight 12) and edges (weight 15).
        g.add_op("add_c1", NodeKind.ADD, 8, "x0", "x2")
        g.add_op("add_c2", NodeKind.ADD, 8, "x6", "x8")
        g.add_op("add_e1", NodeKind.ADD, 8, "x1", "x7")
        g.add_op("add_e2", NodeKind.ADD, 8, "x3", "x5")
        g.add_op("add_c", NodeKind.ADD, 9, "add_c1", "add_c2")
        g.add_op("add_e", NodeKind.ADD, 9, "add_e1", "add_e2")
        # MCM: 12 * corners.
        g.add_shl("c_shl3", "add_c", 3)
        g.add_shl("c_shl2", "add_c", 2)
        g.add_op("mcm12", NodeKind.ADD, 16, "c_shl3", "c_shl2")
        # MCM: 15 * edges.
        g.add_shl("e_shl4", "add_e", 4)
        g.add_op("mcm15", NodeKind.SUB, 16, "e_shl4", "add_e")
        # MCM: 20 * centre.
        g.add_shl("m_shl4", "x4", 4)
        g.add_shl("m_shl2", "x4", 2)
        g.add_op("mcm20", NodeKind.ADD, 16, "m_shl4", "m_shl2")
        # Accumulate and normalise.
        g.add_op("acc1", NodeKind.ADD, 16, "mcm12", "mcm15")
        g.add_op("acc2", NodeKind.ADD, 16, "acc1", "mcm20")
        g.add_shr("norm", "acc2", 7)
        g.add_clip("out", "norm", 0, 255)
        g.set_output("out")
        return g
