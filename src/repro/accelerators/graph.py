"""Dataflow-graph IR for accelerators.

Nodes are primary inputs, constants, *approximable* arithmetic operations
(add/sub/mul at a declared operand width) and free wiring operators
(shifts, absolute value, clipping).  Evaluation is vectorised: node values
are numpy int64 arrays.

The arithmetic op nodes are the replacement points of the methodology: the
evaluator takes an *assignment* mapping op-node names to implementation
callables ``f(a, b) -> array`` (an exact op, or an approximate component's
LUT/evaluate).  Nodes not present in the assignment use the exact
operation.

Two evaluation paths exist:

* :meth:`DataflowGraph.evaluate` — compiles the node dict once (cached)
  into a :class:`GraphProgram` and executes it.  The program is a flat
  instruction list with resolved register indices and precomputed bit
  masks, so repeated evaluation skips all per-node name lookups; the
  instructions are plain tuples, which keeps programs picklable for the
  multiprocessing evaluation engine.  Input arrays may have any shape —
  in particular a stacked batch of all (image x scenario) runs — since
  every operation is elementwise.
* :meth:`DataflowGraph.evaluate_interpreted` — the original dict-walking
  interpreter, kept as the reference for differential tests and the
  throughput benchmarks.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AcceleratorError
from repro.utils.bitops import bit_mask

OpImpl = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Environment escape hatch: set to disable the fused execution path
#: (bit-identical either way; kept for differential benchmarks).
NO_FUSION_ENV = "REPRO_NO_FUSION"


class NodeKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SHL = "shl"
    SHR = "shr"
    ABS = "abs"
    CLIP = "clip"


#: Node kinds that can be replaced by approximate library components.
APPROXIMABLE = (NodeKind.ADD, NodeKind.SUB, NodeKind.MUL)


@dataclass(frozen=True)
class Node:
    """One dataflow node; ``attrs`` hold kind-specific parameters."""

    name: str
    kind: NodeKind
    operands: Tuple[str, ...] = ()
    width: int = 0  # operand width for approximable ops
    attrs: Dict[str, int] = field(default_factory=dict)


#: GraphProgram step opcodes (plain ints: cheap to compare, picklable).
_OP = 0    # approximable arithmetic (add/sub/mul, possibly reassigned)
_SHL = 1
_SHR = 2
_ABS = 3
_CLIP = 4

#: Exact-semantics codes of the approximable kinds inside an ``_OP`` step.
_EXACT_ADD = 0
_EXACT_SUB = 1
_EXACT_MUL = 2

_EXACT_CODES = {
    NodeKind.ADD: _EXACT_ADD,
    NodeKind.SUB: _EXACT_SUB,
    NodeKind.MUL: _EXACT_MUL,
}

#: Ufunc per exact code — indexable in the fused executor so the masked
#: operands feed straight into an ``out=``-capable kernel.
_EXACT_UFUNCS = (np.add, np.subtract, np.multiply)


class GraphProgram:
    """A :class:`DataflowGraph` lowered to a flat register program.

    The program holds only plain tuples and numpy scalars, so it pickles
    cleanly into multiprocessing workers.  ``execute`` is semantically
    identical (bit-identical outputs) to the dict interpreter, but skips
    per-node name resolution, enum dispatch and ``bit_mask`` calls.
    """

    def __init__(self, graph: "DataflowGraph"):
        order = graph.nodes()
        index = {node.name: i for i, node in enumerate(order)}
        self.name = graph.name
        self.n_regs = len(order)
        self.out_reg = index[graph.output]
        inputs: List[Tuple[str, int, int]] = []
        consts: List[Tuple[int, np.int64]] = []
        steps: List[Tuple[int, ...]] = []
        op_names: List[str] = []
        for node in order:
            reg = index[node.name]
            if node.kind is NodeKind.INPUT:
                inputs.append((node.name, reg, bit_mask(node.width)))
            elif node.kind is NodeKind.CONST:
                consts.append(
                    (reg,
                     np.int64(node.attrs["value"] & bit_mask(node.width)))
                )
            elif node.kind in APPROXIMABLE:
                steps.append(
                    (
                        _OP,
                        reg,
                        index[node.operands[0]],
                        index[node.operands[1]],
                        bit_mask(node.width),
                        _EXACT_CODES[node.kind],
                        len(op_names),
                    )
                )
                op_names.append(node.name)
            elif node.kind is NodeKind.SHL:
                steps.append(
                    (_SHL, reg, index[node.operands[0]],
                     node.attrs["amount"])
                )
            elif node.kind is NodeKind.SHR:
                steps.append(
                    (_SHR, reg, index[node.operands[0]],
                     node.attrs["amount"])
                )
            elif node.kind is NodeKind.ABS:
                steps.append((_ABS, reg, index[node.operands[0]]))
            elif node.kind is NodeKind.CLIP:
                steps.append(
                    (
                        _CLIP,
                        reg,
                        index[node.operands[0]],
                        node.attrs["low"],
                        node.attrs["high"],
                    )
                )
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        self.inputs: Tuple[Tuple[str, int, int], ...] = tuple(inputs)
        self.consts: Tuple[Tuple[int, np.int64], ...] = tuple(consts)
        self.steps: Tuple[Tuple[int, ...], ...] = tuple(steps)
        self.op_names: Tuple[str, ...] = tuple(op_names)
        self._no_impls: Tuple[None, ...] = (None,) * len(op_names)
        # Register liveness: after a step, drop registers whose last
        # consumer it was, so batch execution keeps only live values
        # instead of every node's full-width array.
        last_use: Dict[int, int] = {}
        for i, step in enumerate(steps):
            if step[0] == _OP:
                last_use[step[2]] = i
                last_use[step[3]] = i
            else:
                last_use[step[2]] = i
        out = self.out_reg
        self.releases: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                reg
                for reg, last in last_use.items()
                if last == i and reg != out
            )
            for i in range(len(steps))
        )
        self._plan = self._build_fused_plan()

    # -- fused-plan construction ---------------------------------------------

    def _value_ranges(self) -> List[Optional[Tuple[int, int]]]:
        """Conservative per-register value ranges ``(lo, hi)``.

        Inputs are masked (``[0, mask]``), constants are literal, the
        wiring ops (shift/abs/clip) propagate ranges exactly, and the
        output of any approximable op is unknown (``None``) — an
        assigned implementation may return anything.  Sound for every
        assignment, so it can be computed once at lowering time.
        """
        ranges: List[Optional[Tuple[int, int]]] = [None] * self.n_regs
        for _, reg, mask in self.inputs:
            ranges[reg] = (0, int(mask))
        for reg, value in self.consts:
            ranges[reg] = (int(value), int(value))
        for step in self.steps:
            code = step[0]
            if code == _OP:
                ranges[step[1]] = None
            elif code in (_SHL, _SHR):
                src = ranges[step[2]]
                if src is not None:
                    lo, hi = src
                    amount = step[3]
                    if code == _SHL:
                        ranges[step[1]] = (lo << amount, hi << amount)
                    else:
                        ranges[step[1]] = (lo >> amount, hi >> amount)
            elif code == _ABS:
                src = ranges[step[2]]
                if src is not None:
                    lo, hi = src
                    ranges[step[1]] = (
                        0 if lo <= 0 <= hi else min(abs(lo), abs(hi)),
                        max(abs(lo), abs(hi)),
                    )
            else:  # _CLIP — output range known even for unknown input
                low, high = step[3], step[4]
                src = ranges[step[2]]
                if src is None:
                    ranges[step[1]] = (low, high)
                else:
                    lo, hi = src
                    ranges[step[1]] = (
                        min(max(lo, low), high),
                        min(max(hi, low), high),
                    )
        return ranges

    def _build_fused_plan(self) -> Tuple[Tuple[int, ...], ...]:
        """Steps annotated for the fused executor (plain picklable data).

        Per ``_OP`` step: whether each operand's ``& mask`` is provably
        redundant (operand range already within ``[0, mask]``); per
        step: whether an operand dies at this step, so its buffer can be
        written in place.  Fusing the mask into the arithmetic ufunc and
        recycling dead buffers removes most of the per-instruction
        temporaries without changing a single output bit.
        """
        ranges = self._value_ranges()
        plan: List[Tuple[int, ...]] = []
        for step, dead in zip(self.steps, self.releases):
            code = step[0]
            if code == _OP:
                _, dest, a, b, mask, exact, opi = step

                def needs_mask(reg: int) -> bool:
                    r = ranges[reg]
                    return r is None or r[0] < 0 or r[1] > mask
                plan.append(
                    (
                        code, dest, a, b, mask, exact, opi,
                        needs_mask(a), needs_mask(b),
                        a in dead, b in dead,
                    )
                )
            elif code in (_SHL, _SHR):
                plan.append(
                    (code, step[1], step[2], step[3], step[2] in dead)
                )
            elif code == _ABS:
                plan.append((code, step[1], step[2], step[2] in dead))
            else:  # _CLIP
                plan.append(
                    (
                        code, step[1], step[2], step[3], step[4],
                        step[2] in dead,
                    )
                )
        return tuple(plan)

    def execute(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
        assume_masked: bool = False,
    ) -> np.ndarray:
        """Run the program on vector (or stacked batch) inputs.

        Accepts arrays of any shape — including a stacked batch of all
        (image x scenario) runs — because every step is elementwise;
        broadcasting-compatible shapes (e.g. per-run ``(R, 1)`` scenario
        inputs against ``(R, P)`` pixel inputs) combine as usual.

        ``assume_masked=True`` skips the defensive input masking; only
        callers that keep pre-masked int64 input batches around (the
        evaluation engine) may set it.
        """
        regs: List[Optional[np.ndarray]] = [None] * self.n_regs
        for name, reg, mask in self.inputs:
            if name not in input_values:
                raise AcceleratorError(
                    f"missing value for input {name!r}"
                )
            if assume_masked:
                regs[reg] = input_values[name]
            else:
                regs[reg] = (
                    np.asarray(input_values[name], dtype=np.int64) & mask
                )
        for reg, value in self.consts:
            regs[reg] = value
        if assignment:
            impls = tuple(assignment.get(n) for n in self.op_names)
        else:
            impls = self._no_impls
        if capture is None and not os.environ.get(NO_FUSION_ENV):
            return self._execute_fused(regs, impls)
        return self._execute_classic(regs, impls, capture)

    def execute_batch(
        self,
        input_values: Dict[str, np.ndarray],
        tables: Sequence[Optional[Tuple[np.ndarray, np.ndarray, int, int]]],
        assume_masked: bool = False,
    ) -> np.ndarray:
        """Run the program for ``C`` configurations in one pass.

        ``tables`` aligns with :attr:`op_names`; each entry is ``None``
        (the op stays exact for every configuration) or a tuple
        ``(flat_lut, rows, width, mask)`` where ``flat_lut`` is the
        concatenation of the candidate LUTs of that op (``4**width``
        entries per candidate, int64) and ``rows`` holds the ``(C,)``
        per-configuration candidate indices.  Each such op becomes a
        single gather ``flat_lut[((a & mask) << width | (b & mask)) +
        (rows << 2*width)]`` that grows a leading configuration axis;
        exact ops and the wiring steps broadcast across it for free.

        Per configuration ``c`` the result is bit-identical to
        ``execute(input_values, assignment_c)``: the gathered values are
        exactly the per-record LUT entries, and the exact/wiring steps
        run the same ufuncs on the same int64 values (broadcasting only
        adds the leading axis).  The returned array broadcasts against
        ``(C,) + batch_shape``; the leading configuration axis is
        present as soon as any op consumed a table.  Capture mode is not
        supported here — callers that need operand capture use the
        per-configuration :meth:`execute` path.
        """
        if len(tables) != len(self.op_names):
            raise AcceleratorError(
                f"expected {len(self.op_names)} table entries, "
                f"got {len(tables)}"
            )
        regs: List[Optional[np.ndarray]] = [None] * self.n_regs
        base_rank = 0
        for name, reg, mask in self.inputs:
            if name not in input_values:
                raise AcceleratorError(
                    f"missing value for input {name!r}"
                )
            if assume_masked:
                value = input_values[name]
            else:
                value = (
                    np.asarray(input_values[name], dtype=np.int64) & mask
                )
            regs[reg] = value
            if isinstance(value, np.ndarray):
                base_rank = max(base_rank, value.ndim)
        # Pad every input array to one common rank so the configuration
        # axis added by the gathers is unambiguous (always axis 0).
        # Leading length-1 axes broadcast exactly like absent axes, so
        # values are unchanged.
        for name, reg, _ in self.inputs:
            value = regs[reg]
            if (
                isinstance(value, np.ndarray)
                and 0 < value.ndim < base_rank
            ):
                regs[reg] = value.reshape(
                    (1,) * (base_rank - value.ndim) + value.shape
                )
        for reg, value in self.consts:
            regs[reg] = value
        row_shape = (-1,) + (1,) * base_rank
        for step, dead in zip(self.steps, self.releases):
            code = step[0]
            if code == _OP:
                _, dest, a, b, mask, exact, opi = step
                av = regs[a]
                bv = regs[b]
                entry = tables[opi]
                if entry is not None:
                    flat, rows, width, op_mask = entry
                    idx = ((av & op_mask) << width) | (bv & op_mask)
                    offsets = (rows << (2 * width)).reshape(row_shape)
                    regs[dest] = flat[idx + offsets]
                elif exact == _EXACT_ADD:
                    regs[dest] = (av & mask) + (bv & mask)
                elif exact == _EXACT_SUB:
                    regs[dest] = (av & mask) - (bv & mask)
                else:
                    regs[dest] = (av & mask) * (bv & mask)
            elif code == _SHL:
                regs[step[1]] = regs[step[2]] << step[3]
            elif code == _SHR:
                regs[step[1]] = regs[step[2]] >> step[3]
            elif code == _ABS:
                regs[step[1]] = np.abs(regs[step[2]])
            else:  # _CLIP
                regs[step[1]] = np.clip(regs[step[2]], step[3], step[4])
            for reg in dead:
                regs[reg] = None
        return regs[self.out_reg]

    def _execute_classic(self, regs, impls, capture):
        """One allocating numpy call per sub-expression (reference path)."""
        op_names = self.op_names
        for step, dead in zip(self.steps, self.releases):
            code = step[0]
            if code == _OP:
                _, dest, a, b, mask, exact, opi = step
                av = regs[a]
                bv = regs[b]
                if capture is not None:
                    capture[op_names[opi]] = (av & mask, bv & mask)
                impl = impls[opi]
                if impl is not None:
                    regs[dest] = impl(av, bv)
                elif exact == _EXACT_ADD:
                    regs[dest] = (av & mask) + (bv & mask)
                elif exact == _EXACT_SUB:
                    regs[dest] = (av & mask) - (bv & mask)
                else:
                    regs[dest] = (av & mask) * (bv & mask)
            elif code == _SHL:
                regs[step[1]] = regs[step[2]] << step[3]
            elif code == _SHR:
                regs[step[1]] = regs[step[2]] >> step[3]
            elif code == _ABS:
                regs[step[1]] = np.abs(regs[step[2]])
            else:  # _CLIP
                regs[step[1]] = np.clip(regs[step[2]], step[3], step[4])
            for reg in dead:
                regs[reg] = None
        return regs[self.out_reg]

    def _execute_fused(self, regs, impls):
        """Fused kernels: mask-elision, ``out=`` ufuncs, buffer reuse.

        Semantically (bit-)identical to :meth:`_execute_classic` — the
        same ufuncs run on the same values — but each exact op fuses its
        operand masking (elided entirely when the lowering-time range
        analysis proves it redundant) into ufunc calls that write into
        recycled buffers.  The pool only ever holds arrays this executor
        allocated itself (``own``), so implementation outputs, inputs
        and the returned output array are never written in place.
        """
        pool: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        own = [False] * self.n_regs
        ndarray = np.ndarray

        def take(shape):
            stack = pool.get(shape)
            if stack:
                return stack.pop()
            return np.empty(shape, dtype=np.int64)

        for plan, dead in zip(self._plan, self.releases):
            code = plan[0]
            if code == _OP:
                (_, dest, a, b, mask, exact, opi,
                 need_a, need_b, a_dies, b_dies) = plan
                av = regs[a]
                bv = regs[b]
                impl = impls[opi]
                if impl is not None:
                    regs[dest] = impl(av, bv)
                    own[dest] = False
                else:
                    a_arr = type(av) is ndarray
                    b_arr = type(bv) is ndarray
                    if not a_arr and not b_arr:
                        am = (av & mask) if need_a else av
                        bm = (bv & mask) if need_b else bv
                        regs[dest] = _EXACT_UFUNCS[exact](am, bm)
                        own[dest] = False
                    else:
                        am, am_own = av, False
                        bm, bm_own = bv, False
                        if need_a:
                            if a_arr:
                                if a_dies and own[a]:
                                    own[a] = False
                                    np.bitwise_and(av, mask, out=av)
                                    am, am_own = av, True
                                else:
                                    am = take(av.shape)
                                    np.bitwise_and(av, mask, out=am)
                                    am_own = True
                            else:
                                am = av & mask
                        if need_b:
                            if b_arr:
                                if b_dies and own[b] and bv is not am:
                                    own[b] = False
                                    np.bitwise_and(bv, mask, out=bv)
                                    bm, bm_own = bv, True
                                elif bv is am:
                                    # a and b share a register that was
                                    # just masked in place.
                                    bm = am
                                else:
                                    bm = take(bv.shape)
                                    np.bitwise_and(bv, mask, out=bm)
                                    bm_own = True
                            else:
                                bm = bv & mask
                        if a_arr and b_arr:
                            rshape = (
                                am.shape if am.shape == bm.shape
                                else np.broadcast_shapes(
                                    am.shape, bm.shape
                                )
                            )
                        else:
                            rshape = am.shape if a_arr else bm.shape
                        if am_own and am.shape == rshape:
                            out_buf, am_own = am, False
                        elif bm_own and bm.shape == rshape:
                            out_buf, bm_own = bm, False
                        else:
                            out_buf = take(rshape)
                        _EXACT_UFUNCS[exact](am, bm, out=out_buf)
                        regs[dest] = out_buf
                        own[dest] = True
                        if am_own:
                            pool.setdefault(am.shape, []).append(am)
                        if bm_own:
                            pool.setdefault(bm.shape, []).append(bm)
            elif code == _SHL or code == _SHR:
                _, dest, src, amount, src_dies = plan
                v = regs[src]
                ufunc = np.left_shift if code == _SHL else np.right_shift
                if type(v) is ndarray:
                    if src_dies and own[src]:
                        own[src] = False
                        ufunc(v, amount, out=v)
                        regs[dest] = v
                    else:
                        buf = take(v.shape)
                        ufunc(v, amount, out=buf)
                        regs[dest] = buf
                    own[dest] = True
                else:
                    regs[dest] = ufunc(v, amount)
                    own[dest] = False
            elif code == _ABS:
                _, dest, src, src_dies = plan
                v = regs[src]
                if type(v) is ndarray:
                    if src_dies and own[src]:
                        own[src] = False
                        np.abs(v, out=v)
                        regs[dest] = v
                    else:
                        buf = take(v.shape)
                        np.abs(v, out=buf)
                        regs[dest] = buf
                    own[dest] = True
                else:
                    regs[dest] = np.abs(v)
                    own[dest] = False
            else:  # _CLIP
                _, dest, src, low, high, src_dies = plan
                v = regs[src]
                if type(v) is ndarray:
                    if src_dies and own[src]:
                        own[src] = False
                        np.clip(v, low, high, out=v)
                        regs[dest] = v
                    else:
                        buf = take(v.shape)
                        np.clip(v, low, high, out=buf)
                        regs[dest] = buf
                    own[dest] = True
                else:
                    regs[dest] = np.clip(v, low, high)
                    own[dest] = False
            for reg in dead:
                if own[reg]:
                    arr = regs[reg]
                    pool.setdefault(arr.shape, []).append(arr)
                    own[reg] = False
                regs[reg] = None
        return regs[self.out_reg]


class DataflowGraph:
    """A DAG of named nodes with a single output."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self._output: Optional[str] = None
        self._program: Optional[GraphProgram] = None

    # -- construction -----------------------------------------------------

    def _add(self, node: Node) -> str:
        if node.name in self._nodes:
            raise AcceleratorError(f"duplicate node name {node.name!r}")
        for dep in node.operands:
            if dep not in self._nodes:
                raise AcceleratorError(
                    f"node {node.name!r} references unknown node {dep!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._program = None
        return node.name

    def add_input(self, name: str, width: int) -> str:
        return self._add(Node(name, NodeKind.INPUT, width=width))

    def add_const(self, name: str, value: int, width: int) -> str:
        return self._add(
            Node(name, NodeKind.CONST, width=width, attrs={"value": value})
        )

    def add_op(self, name: str, kind: NodeKind, width: int, a: str, b: str
               ) -> str:
        if kind not in APPROXIMABLE:
            raise AcceleratorError(f"{kind} is not an arithmetic op kind")
        return self._add(Node(name, kind, (a, b), width=width))

    def add_shl(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHL, (x,), attrs={"amount": amount})
        )

    def add_shr(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHR, (x,), attrs={"amount": amount})
        )

    def add_abs(self, name: str, x: str) -> str:
        return self._add(Node(name, NodeKind.ABS, (x,)))

    def add_clip(self, name: str, x: str, low: int, high: int) -> str:
        return self._add(
            Node(name, NodeKind.CLIP, (x,), attrs={"low": low, "high": high})
        )

    def set_output(self, name: str) -> None:
        if name not in self._nodes:
            raise AcceleratorError(f"unknown output node {name!r}")
        self._output = name
        self._program = None

    # -- queries ------------------------------------------------------------

    @property
    def output(self) -> str:
        if self._output is None:
            raise AcceleratorError("graph output has not been set")
        return self._output

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[n] for n in self._order]

    def inputs(self) -> List[Node]:
        return [n for n in self.nodes() if n.kind is NodeKind.INPUT]

    def approximable_ops(self) -> List[Node]:
        """Arithmetic op nodes in insertion order."""
        return [n for n in self.nodes() if n.kind in APPROXIMABLE]

    # -- evaluation ----------------------------------------------------------

    def compile(self) -> GraphProgram:
        """Lower the graph to a flat :class:`GraphProgram` (cached).

        The cache is invalidated whenever a node is added or the output
        changes, so accelerators can keep calling ``compile()`` freely.
        """
        if self._program is None:
            self._program = GraphProgram(self)
        return self._program

    def evaluate(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Evaluate the graph on vector inputs.

        ``assignment`` overrides the implementation of arithmetic op nodes
        by name; omitted ops are exact.  If ``capture`` is a dict, it is
        filled with the operand pair of every arithmetic op (used by the
        profiler).  Thin wrapper over the compiled program; results are
        bit-identical to :meth:`evaluate_interpreted`.
        """
        return self.compile().execute(input_values, assignment, capture)

    def evaluate_interpreted(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """The original per-node dict interpreter.

        Kept as the differential-testing reference and the baseline of
        ``benchmarks/bench_engine_throughput.py``; prefer
        :meth:`evaluate`, which compiles once and runs much faster.
        """
        assignment = assignment or {}
        values: Dict[str, np.ndarray] = {}
        for node in self.nodes():
            if node.kind is NodeKind.INPUT:
                if node.name not in input_values:
                    raise AcceleratorError(
                        f"missing value for input {node.name!r}"
                    )
                values[node.name] = (
                    np.asarray(input_values[node.name], dtype=np.int64)
                    & bit_mask(node.width)
                )
            elif node.kind is NodeKind.CONST:
                values[node.name] = np.int64(
                    node.attrs["value"] & bit_mask(node.width)
                )
            elif node.kind in APPROXIMABLE:
                a = values[node.operands[0]]
                b = values[node.operands[1]]
                if capture is not None:
                    mask = bit_mask(node.width)
                    capture[node.name] = (a & mask, b & mask)
                impl = assignment.get(node.name)
                if impl is None:
                    if node.kind is NodeKind.ADD:
                        out = (a & bit_mask(node.width)) + (
                            b & bit_mask(node.width)
                        )
                    elif node.kind is NodeKind.SUB:
                        out = (a & bit_mask(node.width)) - (
                            b & bit_mask(node.width)
                        )
                    else:
                        out = (a & bit_mask(node.width)) * (
                            b & bit_mask(node.width)
                        )
                else:
                    out = impl(a, b)
                values[node.name] = out
            elif node.kind is NodeKind.SHL:
                values[node.name] = values[node.operands[0]] << node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.SHR:
                values[node.name] = values[node.operands[0]] >> node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.ABS:
                values[node.name] = np.abs(values[node.operands[0]])
            elif node.kind is NodeKind.CLIP:
                values[node.name] = np.clip(
                    values[node.operands[0]],
                    node.attrs["low"],
                    node.attrs["high"],
                )
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        return values[self.output]
