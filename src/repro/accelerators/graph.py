"""Dataflow-graph IR for accelerators.

Nodes are primary inputs, constants, *approximable* arithmetic operations
(add/sub/mul at a declared operand width) and free wiring operators
(shifts, absolute value, clipping).  Evaluation is vectorised: node values
are numpy int64 arrays.

The arithmetic op nodes are the replacement points of the methodology: the
evaluator takes an *assignment* mapping op-node names to implementation
callables ``f(a, b) -> array`` (an exact op, or an approximate component's
LUT/evaluate).  Nodes not present in the assignment use the exact
operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AcceleratorError
from repro.utils.bitops import bit_mask

OpImpl = Callable[[np.ndarray, np.ndarray], np.ndarray]


class NodeKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SHL = "shl"
    SHR = "shr"
    ABS = "abs"
    CLIP = "clip"


#: Node kinds that can be replaced by approximate library components.
APPROXIMABLE = (NodeKind.ADD, NodeKind.SUB, NodeKind.MUL)


@dataclass(frozen=True)
class Node:
    """One dataflow node; ``attrs`` hold kind-specific parameters."""

    name: str
    kind: NodeKind
    operands: Tuple[str, ...] = ()
    width: int = 0  # operand width for approximable ops
    attrs: Dict[str, int] = field(default_factory=dict)


class DataflowGraph:
    """A DAG of named nodes with a single output."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self._output: Optional[str] = None

    # -- construction -----------------------------------------------------

    def _add(self, node: Node) -> str:
        if node.name in self._nodes:
            raise AcceleratorError(f"duplicate node name {node.name!r}")
        for dep in node.operands:
            if dep not in self._nodes:
                raise AcceleratorError(
                    f"node {node.name!r} references unknown node {dep!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node.name

    def add_input(self, name: str, width: int) -> str:
        return self._add(Node(name, NodeKind.INPUT, width=width))

    def add_const(self, name: str, value: int, width: int) -> str:
        return self._add(
            Node(name, NodeKind.CONST, width=width, attrs={"value": value})
        )

    def add_op(self, name: str, kind: NodeKind, width: int, a: str, b: str
               ) -> str:
        if kind not in APPROXIMABLE:
            raise AcceleratorError(f"{kind} is not an arithmetic op kind")
        return self._add(Node(name, kind, (a, b), width=width))

    def add_shl(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHL, (x,), attrs={"amount": amount})
        )

    def add_shr(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHR, (x,), attrs={"amount": amount})
        )

    def add_abs(self, name: str, x: str) -> str:
        return self._add(Node(name, NodeKind.ABS, (x,)))

    def add_clip(self, name: str, x: str, low: int, high: int) -> str:
        return self._add(
            Node(name, NodeKind.CLIP, (x,), attrs={"low": low, "high": high})
        )

    def set_output(self, name: str) -> None:
        if name not in self._nodes:
            raise AcceleratorError(f"unknown output node {name!r}")
        self._output = name

    # -- queries ------------------------------------------------------------

    @property
    def output(self) -> str:
        if self._output is None:
            raise AcceleratorError("graph output has not been set")
        return self._output

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[n] for n in self._order]

    def inputs(self) -> List[Node]:
        return [n for n in self.nodes() if n.kind is NodeKind.INPUT]

    def approximable_ops(self) -> List[Node]:
        """Arithmetic op nodes in insertion order."""
        return [n for n in self.nodes() if n.kind in APPROXIMABLE]

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Evaluate the graph on vector inputs.

        ``assignment`` overrides the implementation of arithmetic op nodes
        by name; omitted ops are exact.  If ``capture`` is a dict, it is
        filled with the operand pair of every arithmetic op (used by the
        profiler).
        """
        assignment = assignment or {}
        values: Dict[str, np.ndarray] = {}
        for node in self.nodes():
            if node.kind is NodeKind.INPUT:
                if node.name not in input_values:
                    raise AcceleratorError(
                        f"missing value for input {node.name!r}"
                    )
                values[node.name] = (
                    np.asarray(input_values[node.name], dtype=np.int64)
                    & bit_mask(node.width)
                )
            elif node.kind is NodeKind.CONST:
                values[node.name] = np.int64(node.attrs["value"])
            elif node.kind in APPROXIMABLE:
                a = values[node.operands[0]]
                b = values[node.operands[1]]
                if capture is not None:
                    mask = bit_mask(node.width)
                    capture[node.name] = (a & mask, b & mask)
                impl = assignment.get(node.name)
                if impl is None:
                    if node.kind is NodeKind.ADD:
                        out = (a & bit_mask(node.width)) + (
                            b & bit_mask(node.width)
                        )
                    elif node.kind is NodeKind.SUB:
                        out = (a & bit_mask(node.width)) - (
                            b & bit_mask(node.width)
                        )
                    else:
                        out = (a & bit_mask(node.width)) * (
                            b & bit_mask(node.width)
                        )
                else:
                    out = impl(a, b)
                values[node.name] = out
            elif node.kind is NodeKind.SHL:
                values[node.name] = values[node.operands[0]] << node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.SHR:
                values[node.name] = values[node.operands[0]] >> node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.ABS:
                values[node.name] = np.abs(values[node.operands[0]])
            elif node.kind is NodeKind.CLIP:
                values[node.name] = np.clip(
                    values[node.operands[0]],
                    node.attrs["low"],
                    node.attrs["high"],
                )
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        return values[self.output]
