"""Dataflow-graph IR for accelerators.

Nodes are primary inputs, constants, *approximable* arithmetic operations
(add/sub/mul at a declared operand width) and free wiring operators
(shifts, absolute value, clipping).  Evaluation is vectorised: node values
are numpy int64 arrays.

The arithmetic op nodes are the replacement points of the methodology: the
evaluator takes an *assignment* mapping op-node names to implementation
callables ``f(a, b) -> array`` (an exact op, or an approximate component's
LUT/evaluate).  Nodes not present in the assignment use the exact
operation.

Two evaluation paths exist:

* :meth:`DataflowGraph.evaluate` — compiles the node dict once (cached)
  into a :class:`GraphProgram` and executes it.  The program is a flat
  instruction list with resolved register indices and precomputed bit
  masks, so repeated evaluation skips all per-node name lookups; the
  instructions are plain tuples, which keeps programs picklable for the
  multiprocessing evaluation engine.  Input arrays may have any shape —
  in particular a stacked batch of all (image x scenario) runs — since
  every operation is elementwise.
* :meth:`DataflowGraph.evaluate_interpreted` — the original dict-walking
  interpreter, kept as the reference for differential tests and the
  throughput benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AcceleratorError
from repro.utils.bitops import bit_mask

OpImpl = Callable[[np.ndarray, np.ndarray], np.ndarray]


class NodeKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SHL = "shl"
    SHR = "shr"
    ABS = "abs"
    CLIP = "clip"


#: Node kinds that can be replaced by approximate library components.
APPROXIMABLE = (NodeKind.ADD, NodeKind.SUB, NodeKind.MUL)


@dataclass(frozen=True)
class Node:
    """One dataflow node; ``attrs`` hold kind-specific parameters."""

    name: str
    kind: NodeKind
    operands: Tuple[str, ...] = ()
    width: int = 0  # operand width for approximable ops
    attrs: Dict[str, int] = field(default_factory=dict)


#: GraphProgram step opcodes (plain ints: cheap to compare, picklable).
_OP = 0    # approximable arithmetic (add/sub/mul, possibly reassigned)
_SHL = 1
_SHR = 2
_ABS = 3
_CLIP = 4

#: Exact-semantics codes of the approximable kinds inside an ``_OP`` step.
_EXACT_ADD = 0
_EXACT_SUB = 1
_EXACT_MUL = 2

_EXACT_CODES = {
    NodeKind.ADD: _EXACT_ADD,
    NodeKind.SUB: _EXACT_SUB,
    NodeKind.MUL: _EXACT_MUL,
}


class GraphProgram:
    """A :class:`DataflowGraph` lowered to a flat register program.

    The program holds only plain tuples and numpy scalars, so it pickles
    cleanly into multiprocessing workers.  ``execute`` is semantically
    identical (bit-identical outputs) to the dict interpreter, but skips
    per-node name resolution, enum dispatch and ``bit_mask`` calls.
    """

    def __init__(self, graph: "DataflowGraph"):
        order = graph.nodes()
        index = {node.name: i for i, node in enumerate(order)}
        self.name = graph.name
        self.n_regs = len(order)
        self.out_reg = index[graph.output]
        inputs: List[Tuple[str, int, int]] = []
        consts: List[Tuple[int, np.int64]] = []
        steps: List[Tuple[int, ...]] = []
        op_names: List[str] = []
        for node in order:
            reg = index[node.name]
            if node.kind is NodeKind.INPUT:
                inputs.append((node.name, reg, bit_mask(node.width)))
            elif node.kind is NodeKind.CONST:
                consts.append(
                    (reg,
                     np.int64(node.attrs["value"] & bit_mask(node.width)))
                )
            elif node.kind in APPROXIMABLE:
                steps.append(
                    (
                        _OP,
                        reg,
                        index[node.operands[0]],
                        index[node.operands[1]],
                        bit_mask(node.width),
                        _EXACT_CODES[node.kind],
                        len(op_names),
                    )
                )
                op_names.append(node.name)
            elif node.kind is NodeKind.SHL:
                steps.append(
                    (_SHL, reg, index[node.operands[0]],
                     node.attrs["amount"])
                )
            elif node.kind is NodeKind.SHR:
                steps.append(
                    (_SHR, reg, index[node.operands[0]],
                     node.attrs["amount"])
                )
            elif node.kind is NodeKind.ABS:
                steps.append((_ABS, reg, index[node.operands[0]]))
            elif node.kind is NodeKind.CLIP:
                steps.append(
                    (
                        _CLIP,
                        reg,
                        index[node.operands[0]],
                        node.attrs["low"],
                        node.attrs["high"],
                    )
                )
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        self.inputs: Tuple[Tuple[str, int, int], ...] = tuple(inputs)
        self.consts: Tuple[Tuple[int, np.int64], ...] = tuple(consts)
        self.steps: Tuple[Tuple[int, ...], ...] = tuple(steps)
        self.op_names: Tuple[str, ...] = tuple(op_names)
        self._no_impls: Tuple[None, ...] = (None,) * len(op_names)
        # Register liveness: after a step, drop registers whose last
        # consumer it was, so batch execution keeps only live values
        # instead of every node's full-width array.
        last_use: Dict[int, int] = {}
        for i, step in enumerate(steps):
            if step[0] == _OP:
                last_use[step[2]] = i
                last_use[step[3]] = i
            else:
                last_use[step[2]] = i
        out = self.out_reg
        self.releases: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                reg
                for reg, last in last_use.items()
                if last == i and reg != out
            )
            for i in range(len(steps))
        )

    def execute(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
        assume_masked: bool = False,
    ) -> np.ndarray:
        """Run the program on vector (or stacked batch) inputs.

        Accepts arrays of any shape — including a stacked batch of all
        (image x scenario) runs — because every step is elementwise;
        broadcasting-compatible shapes (e.g. per-run ``(R, 1)`` scenario
        inputs against ``(R, P)`` pixel inputs) combine as usual.

        ``assume_masked=True`` skips the defensive input masking; only
        callers that keep pre-masked int64 input batches around (the
        evaluation engine) may set it.
        """
        regs: List[Optional[np.ndarray]] = [None] * self.n_regs
        for name, reg, mask in self.inputs:
            if name not in input_values:
                raise AcceleratorError(
                    f"missing value for input {name!r}"
                )
            if assume_masked:
                regs[reg] = input_values[name]
            else:
                regs[reg] = (
                    np.asarray(input_values[name], dtype=np.int64) & mask
                )
        for reg, value in self.consts:
            regs[reg] = value
        if assignment:
            impls = tuple(assignment.get(n) for n in self.op_names)
        else:
            impls = self._no_impls
        op_names = self.op_names
        for step, dead in zip(self.steps, self.releases):
            code = step[0]
            if code == _OP:
                _, dest, a, b, mask, exact, opi = step
                av = regs[a]
                bv = regs[b]
                if capture is not None:
                    capture[op_names[opi]] = (av & mask, bv & mask)
                impl = impls[opi]
                if impl is not None:
                    regs[dest] = impl(av, bv)
                elif exact == _EXACT_ADD:
                    regs[dest] = (av & mask) + (bv & mask)
                elif exact == _EXACT_SUB:
                    regs[dest] = (av & mask) - (bv & mask)
                else:
                    regs[dest] = (av & mask) * (bv & mask)
            elif code == _SHL:
                regs[step[1]] = regs[step[2]] << step[3]
            elif code == _SHR:
                regs[step[1]] = regs[step[2]] >> step[3]
            elif code == _ABS:
                regs[step[1]] = np.abs(regs[step[2]])
            else:  # _CLIP
                regs[step[1]] = np.clip(regs[step[2]], step[3], step[4])
            for reg in dead:
                regs[reg] = None
        return regs[self.out_reg]


class DataflowGraph:
    """A DAG of named nodes with a single output."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self._output: Optional[str] = None
        self._program: Optional[GraphProgram] = None

    # -- construction -----------------------------------------------------

    def _add(self, node: Node) -> str:
        if node.name in self._nodes:
            raise AcceleratorError(f"duplicate node name {node.name!r}")
        for dep in node.operands:
            if dep not in self._nodes:
                raise AcceleratorError(
                    f"node {node.name!r} references unknown node {dep!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._program = None
        return node.name

    def add_input(self, name: str, width: int) -> str:
        return self._add(Node(name, NodeKind.INPUT, width=width))

    def add_const(self, name: str, value: int, width: int) -> str:
        return self._add(
            Node(name, NodeKind.CONST, width=width, attrs={"value": value})
        )

    def add_op(self, name: str, kind: NodeKind, width: int, a: str, b: str
               ) -> str:
        if kind not in APPROXIMABLE:
            raise AcceleratorError(f"{kind} is not an arithmetic op kind")
        return self._add(Node(name, kind, (a, b), width=width))

    def add_shl(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHL, (x,), attrs={"amount": amount})
        )

    def add_shr(self, name: str, x: str, amount: int) -> str:
        return self._add(
            Node(name, NodeKind.SHR, (x,), attrs={"amount": amount})
        )

    def add_abs(self, name: str, x: str) -> str:
        return self._add(Node(name, NodeKind.ABS, (x,)))

    def add_clip(self, name: str, x: str, low: int, high: int) -> str:
        return self._add(
            Node(name, NodeKind.CLIP, (x,), attrs={"low": low, "high": high})
        )

    def set_output(self, name: str) -> None:
        if name not in self._nodes:
            raise AcceleratorError(f"unknown output node {name!r}")
        self._output = name
        self._program = None

    # -- queries ------------------------------------------------------------

    @property
    def output(self) -> str:
        if self._output is None:
            raise AcceleratorError("graph output has not been set")
        return self._output

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[n] for n in self._order]

    def inputs(self) -> List[Node]:
        return [n for n in self.nodes() if n.kind is NodeKind.INPUT]

    def approximable_ops(self) -> List[Node]:
        """Arithmetic op nodes in insertion order."""
        return [n for n in self.nodes() if n.kind in APPROXIMABLE]

    # -- evaluation ----------------------------------------------------------

    def compile(self) -> GraphProgram:
        """Lower the graph to a flat :class:`GraphProgram` (cached).

        The cache is invalidated whenever a node is added or the output
        changes, so accelerators can keep calling ``compile()`` freely.
        """
        if self._program is None:
            self._program = GraphProgram(self)
        return self._program

    def evaluate(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Evaluate the graph on vector inputs.

        ``assignment`` overrides the implementation of arithmetic op nodes
        by name; omitted ops are exact.  If ``capture`` is a dict, it is
        filled with the operand pair of every arithmetic op (used by the
        profiler).  Thin wrapper over the compiled program; results are
        bit-identical to :meth:`evaluate_interpreted`.
        """
        return self.compile().execute(input_values, assignment, capture)

    def evaluate_interpreted(
        self,
        input_values: Dict[str, np.ndarray],
        assignment: Optional[Dict[str, OpImpl]] = None,
        capture: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """The original per-node dict interpreter.

        Kept as the differential-testing reference and the baseline of
        ``benchmarks/bench_engine_throughput.py``; prefer
        :meth:`evaluate`, which compiles once and runs much faster.
        """
        assignment = assignment or {}
        values: Dict[str, np.ndarray] = {}
        for node in self.nodes():
            if node.kind is NodeKind.INPUT:
                if node.name not in input_values:
                    raise AcceleratorError(
                        f"missing value for input {node.name!r}"
                    )
                values[node.name] = (
                    np.asarray(input_values[node.name], dtype=np.int64)
                    & bit_mask(node.width)
                )
            elif node.kind is NodeKind.CONST:
                values[node.name] = np.int64(
                    node.attrs["value"] & bit_mask(node.width)
                )
            elif node.kind in APPROXIMABLE:
                a = values[node.operands[0]]
                b = values[node.operands[1]]
                if capture is not None:
                    mask = bit_mask(node.width)
                    capture[node.name] = (a & mask, b & mask)
                impl = assignment.get(node.name)
                if impl is None:
                    if node.kind is NodeKind.ADD:
                        out = (a & bit_mask(node.width)) + (
                            b & bit_mask(node.width)
                        )
                    elif node.kind is NodeKind.SUB:
                        out = (a & bit_mask(node.width)) - (
                            b & bit_mask(node.width)
                        )
                    else:
                        out = (a & bit_mask(node.width)) * (
                            b & bit_mask(node.width)
                        )
                else:
                    out = impl(a, b)
                values[node.name] = out
            elif node.kind is NodeKind.SHL:
                values[node.name] = values[node.operands[0]] << node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.SHR:
                values[node.name] = values[node.operands[0]] >> node.attrs[
                    "amount"
                ]
            elif node.kind is NodeKind.ABS:
                values[node.name] = np.abs(values[node.operands[0]])
            elif node.kind is NodeKind.CLIP:
                values[node.name] = np.clip(
                    values[node.operands[0]],
                    node.attrs["low"],
                    node.attrs["high"],
                )
            else:  # pragma: no cover - exhaustive
                raise AcceleratorError(f"unhandled node kind {node.kind}")
        return values[self.output]
