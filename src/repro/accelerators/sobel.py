"""Sobel edge detector (vertical edges) — paper Fig. 2a.

Five replaceable operations (Table 1): two 8-bit adders, two 9-bit adders
and one 10-bit subtractor.  The x2 weights of the centre row are free
shifts; the output is the saturated magnitude of the gradient.

::

    Gx = (x2 + 2*x5 + x8) - (x0 + 2*x3 + x6)
    out = clip(|Gx|, 0, 255)
"""

from __future__ import annotations

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.graph import DataflowGraph, NodeKind


class SobelEdgeDetector(ImageAccelerator):
    """Vertical-edge Sobel operator on a 3x3 window."""

    name = "sobel_ed"

    def _build_graph(self) -> DataflowGraph:
        g = DataflowGraph(self.name)
        for k in range(9):
            g.add_input(f"x{k}", 8)
        # Right column (positive weights).
        g.add_op("add1", NodeKind.ADD, 8, "x2", "x8")
        g.add_shl("shl5", "x5", 1)
        g.add_op("add2", NodeKind.ADD, 9, "add1", "shl5")
        # Left column (negative weights).
        g.add_op("add3", NodeKind.ADD, 8, "x0", "x6")
        g.add_shl("shl3", "x3", 1)
        g.add_op("add4", NodeKind.ADD, 9, "add3", "shl3")
        # Gradient and magnitude.
        g.add_op("sub", NodeKind.SUB, 10, "add2", "add4")
        g.add_abs("mag", "sub")
        g.add_clip("out", "mag", 0, 255)
        g.set_output("out")
        return g
