"""Operand profiling — methodology Step 1's data collection.

Runs the accurate accelerator over benchmark data and records, for every
replaceable operation, the empirical joint distribution of its operand
pair: a dense probability mass function for narrow operands (the paper's
Fig. 3) and a subsampled list of raw operand pairs for wide ones (used to
estimate WMED by empirical expectation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.library.component import OpSignature
from repro.utils.rng import RngLike, ensure_rng

#: Widest operands for which a dense PMF array is kept (2**20 bins).
DENSE_PMF_MAX_WIDTH = 10


@dataclass
class OperandProfile:
    """Empirical operand distribution of one operation."""

    op_name: str
    signature: OpSignature
    total_count: int
    pmf: Optional[np.ndarray]  # flat, length 4**width, sums to 1 (or None)
    sample_a: np.ndarray
    sample_b: np.ndarray

    @property
    def width(self) -> int:
        return self.signature[1]

    def pmf_2d(self) -> np.ndarray:
        """The dense PMF as a (2**w, 2**w) matrix (operand a rows)."""
        if self.pmf is None:
            raise ValueError(
                f"{self.op_name}: no dense PMF at width {self.width}"
            )
        size = 1 << self.width
        return self.pmf.reshape(size, size)


def profile_accelerator(
    accelerator: ImageAccelerator,
    images: Sequence[np.ndarray],
    scenarios: Optional[Sequence[Dict[str, int]]] = None,
    max_samples: int = 1 << 16,
    rng: RngLike = 0,
) -> Dict[str, OperandProfile]:
    """Profile every replaceable op of ``accelerator`` on ``images``.

    ``scenarios`` lists ``extra``-input dicts (e.g. kernel coefficients for
    the generic Gaussian filter); ``None`` runs each image once with the
    accelerator defaults.
    """
    if not images:
        raise ValueError("need at least one benchmark image")
    gen = ensure_rng(rng)
    runs = scenarios if scenarios else [None]

    slots = accelerator.op_slots()
    hists: Dict[str, np.ndarray] = {}
    samples: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {
        s.name: [] for s in slots
    }
    counts: Dict[str, int] = {s.name: 0 for s in slots}
    widths = {s.name: s.signature[1] for s in slots}

    for slot in slots:
        if widths[slot.name] <= DENSE_PMF_MAX_WIDTH:
            hists[slot.name] = np.zeros(
                1 << (2 * widths[slot.name]), dtype=np.float64
            )

    per_run_quota = max(1, max_samples // (len(images) * len(runs)))
    for image in images:
        for extra in runs:
            capture: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            accelerator.compute(image, assignment=None, extra=extra,
                                capture=capture)
            for name, (a, b) in capture.items():
                if name not in counts:
                    continue
                a = a.reshape(-1)
                b = b.reshape(-1)
                counts[name] += a.size
                if name in hists:
                    w = widths[name]
                    flat = (a << w) | b
                    hists[name] += np.bincount(
                        flat, minlength=1 << (2 * w)
                    ).astype(np.float64)
                take = min(per_run_quota, a.size)
                if take < a.size:
                    idx = gen.choice(a.size, size=take, replace=False)
                    samples[name].append((a[idx], b[idx]))
                else:
                    samples[name].append((a, b))

    profiles: Dict[str, OperandProfile] = {}
    for slot in slots:
        name = slot.name
        pmf = None
        if name in hists:
            total = hists[name].sum()
            pmf = hists[name] / total if total > 0 else hists[name]
        sample_a = np.concatenate([a for a, _ in samples[name]])
        sample_b = np.concatenate([b for _, b in samples[name]])
        if sample_a.size > max_samples:
            idx = gen.choice(sample_a.size, size=max_samples, replace=False)
            sample_a = sample_a[idx]
            sample_b = sample_b[idx]
        profiles[name] = OperandProfile(
            op_name=name,
            signature=slot.signature,
            total_count=counts[name],
            pmf=pmf,
            sample_a=sample_a,
            sample_b=sample_b,
        )
    return profiles
