"""Operand profiling — methodology Step 1's data collection.

Runs the accurate accelerator over benchmark data and records, for every
replaceable operation, the empirical joint distribution of its operand
pair: a dense probability mass function for narrow operands (the paper's
Fig. 3) and a subsampled list of raw operand pairs for wide ones (used to
estimate WMED by empirical expectation).

Like the evaluation engine, profiling runs on the compiled graph program:
when all benchmark images share a shape, every (image x scenario) run is
stacked into one batch and captured in a single vectorised pass.  The
captured stack is then consumed run-major in the same order as the old
per-run loop, so subsampling draws the identical RNG stream and profiles
are bit-for-bit reproducible across both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.library.component import OpSignature
from repro.utils.rng import RngLike, ensure_rng

#: Widest operands for which a dense PMF array is kept (2**20 bins).
DENSE_PMF_MAX_WIDTH = 10


@dataclass
class OperandProfile:
    """Empirical operand distribution of one operation."""

    op_name: str
    signature: OpSignature
    total_count: int
    pmf: Optional[np.ndarray]  # flat, length 4**width, sums to 1 (or None)
    sample_a: np.ndarray
    sample_b: np.ndarray

    @property
    def width(self) -> int:
        return self.signature[1]

    def pmf_2d(self) -> np.ndarray:
        """The dense PMF as a (2**w, 2**w) matrix (operand a rows)."""
        if self.pmf is None:
            raise ValueError(
                f"{self.op_name}: no dense PMF at width {self.width}"
            )
        size = 1 << self.width
        return self.pmf.reshape(size, size)


#: Memory bound of batched profiling: elements per captured operand
#: array per chunk (runs-per-chunk = this // pixels, at least 1 run).
PROFILE_CHUNK_ELEMS = 1 << 20


def _operand_row(value: np.ndarray, row: int) -> np.ndarray:
    """Row ``row`` of a captured operand (scalars broadcast to all rows)."""
    return value if np.ndim(value) == 0 else value[row]


def profile_accelerator(
    accelerator: ImageAccelerator,
    images: Sequence[np.ndarray],
    scenarios: Optional[Sequence[Dict[str, int]]] = None,
    max_samples: int = 1 << 16,
    rng: RngLike = 0,
) -> Dict[str, OperandProfile]:
    """Profile every replaceable op of ``accelerator`` on ``images``.

    ``scenarios`` lists ``extra``-input dicts (e.g. kernel coefficients for
    the generic Gaussian filter); ``None`` runs each image once with the
    accelerator defaults.
    """
    if not images:
        raise ValueError("need at least one benchmark image")
    gen = ensure_rng(rng)
    runs = scenarios if scenarios else [None]

    slots = accelerator.op_slots()
    hists: Dict[str, np.ndarray] = {}
    samples: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {
        s.name: [] for s in slots
    }
    counts: Dict[str, int] = {s.name: 0 for s in slots}
    widths = {s.name: s.signature[1] for s in slots}

    for slot in slots:
        if widths[slot.name] <= DENSE_PMF_MAX_WIDTH:
            hists[slot.name] = np.zeros(
                1 << (2 * widths[slot.name]), dtype=np.float64
            )

    per_run_quota = max(1, max_samples // (len(images) * len(runs)))

    def _consume_run(
        capture: Dict[str, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Fold one run's captured operand pairs into the accumulators."""
        for name, (a, b) in capture.items():
            if name not in counts:
                continue
            if np.shape(a) != np.shape(b):
                # e.g. a CONST operand: one scalar against pixels
                a, b = np.broadcast_arrays(a, b)
            a = np.asarray(a).reshape(-1)
            b = np.asarray(b).reshape(-1)
            counts[name] += a.size
            if name in hists:
                w = widths[name]
                flat = (a << w) | b
                hists[name] += np.bincount(
                    flat, minlength=1 << (2 * w)
                ).astype(np.float64)
            take = min(per_run_quota, a.size)
            if take < a.size:
                idx = gen.choice(a.size, size=take, replace=False)
                samples[name].append((a[idx], b[idx]))
            else:
                samples[name].append((a, b))

    if len({np.asarray(img).shape for img in images}) == 1:
        # Uniform geometry: capture runs in compiled batch passes.  The
        # run list is streamed in chunks of at most ``rows_per_chunk``
        # consecutive (image, scenario) runs, so stacked inputs *and*
        # capture arrays stay bounded by PROFILE_CHUNK_ELEMS elements
        # per operand array regardless of the image/scenario counts.
        # Runs are consumed image-major, scenario-minor — the per-run
        # reference order, so the subsampling RNG stream is unchanged.
        program = accelerator.graph.compile()
        pixels = int(np.asarray(images[0]).size)
        rows_per_chunk = max(1, PROFILE_CHUNK_ELEMS // pixels)
        scen_extras = accelerator.scenario_extras(runs)
        extra_names = list(scen_extras[0].keys())
        run_list = [
            (i, s)
            for i in range(len(images))
            for s in range(len(runs))
        ]
        for start in range(0, len(run_list), rows_per_chunk):
            chunk_runs = run_list[start : start + rows_per_chunk]
            # Windows of the distinct images in this chunk; an image
            # straddling a chunk boundary is re-windowed once — cheap
            # next to executing the graph over the chunk.
            windows = {
                i: accelerator.window_inputs(images[i])
                for i in {i for i, _ in chunk_runs}
            }
            first = next(iter(windows.values()))
            chunk_inputs: Dict[str, np.ndarray] = {
                name: np.stack(
                    [windows[i][name] for i, _ in chunk_runs]
                )
                for name in first
            }
            for name in extra_names:
                column = np.asarray(
                    [
                        int(scen_extras[s][name])
                        for _, s in chunk_runs
                    ],
                    dtype=np.int64,
                )[:, None]
                # full batch width: captured operand pairs must line
                # up with the per-run reference path, where extras
                # arrive as np.full(pixels, value) arrays
                chunk_inputs[name] = np.broadcast_to(
                    column, (len(chunk_runs), pixels)
                )
            capture: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            program.execute(chunk_inputs, capture=capture)
            for r in range(len(chunk_runs)):
                _consume_run(
                    {
                        name: (
                            _operand_row(a, r),
                            _operand_row(b, r),
                        )
                        for name, (a, b) in capture.items()
                    }
                )
    else:
        for image in images:
            for extra in runs:
                capture = {}
                accelerator.compute(image, assignment=None, extra=extra,
                                    capture=capture)
                _consume_run(capture)

    profiles: Dict[str, OperandProfile] = {}
    for slot in slots:
        name = slot.name
        pmf = None
        if name in hists:
            total = hists[name].sum()
            pmf = hists[name] / total if total > 0 else hists[name]
        sample_a = np.concatenate([a for a, _ in samples[name]])
        sample_b = np.concatenate([b for _, b in samples[name]])
        if sample_a.size > max_samples:
            idx = gen.choice(sample_a.size, size=max_samples, replace=False)
            sample_a = sample_a[idx]
            sample_b = sample_b[idx]
        profiles[name] = OperandProfile(
            op_name=name,
            signature=slot.signature,
            total_count=counts[name],
            pmf=pmf,
            sample_a=sample_a,
            sample_b=sample_b,
        )
    return profiles
