"""Generic Gaussian filter — a 3x3 convolution with runtime coefficients.

Nine 8-bit multipliers (pixel x coefficient) feed a tree of eight 16-bit
adders (Table 1: 17 operations).  Coefficients are 8-bit weights that sum
to 256, so the accumulated value fits 16 bits and the output shift is 8.

QoR follows the paper's protocol: the filter is simulated for many
Gaussian kernels (w = 3, sigma in [0.3, 0.8]) and the SSIM is averaged
over all (kernel, image) pairs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.graph import DataflowGraph, NodeKind

#: Total integer weight of every quantised kernel (output shift is 8).
KERNEL_SUM = 256


def gaussian_kernel_weights(sigma: float) -> Tuple[int, ...]:
    """3x3 Gaussian kernel quantised to integers summing to 256.

    Returns the nine weights row-major.  Raises for non-positive sigma.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    values = []
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            values.append(math.exp(-(dr * dr + dc * dc) / (2 * sigma**2)))
    total = sum(values)
    weights = [int(round(v / total * KERNEL_SUM)) for v in values]
    # Fix rounding drift on the centre tap so the weights sum exactly.
    weights[4] += KERNEL_SUM - sum(weights)
    if weights[4] < 0 or weights[4] > 255:
        raise ValueError(f"sigma={sigma} yields an unencodable centre tap")
    return tuple(weights)


def kernel_sweep(
    count: int = 50, low: float = 0.3, high: float = 0.8
) -> List[Tuple[int, ...]]:
    """The paper's kernel set: ``count`` sigmas evenly spread in [low, high]."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if count == 1:
        sigmas = [0.5 * (low + high)]
    else:
        step = (high - low) / (count - 1)
        sigmas = [low + i * step for i in range(count)]
    return [gaussian_kernel_weights(s) for s in sigmas]


class GenericGaussianFilter(ImageAccelerator):
    """3x3 convolution accelerator with coefficient inputs ``w0..w8``."""

    name = "generic_gf"

    #: default coefficients used when a simulation passes no ``extra``
    DEFAULT_SIGMA = 0.5

    def _build_graph(self) -> DataflowGraph:
        g = DataflowGraph(self.name)
        for k in range(9):
            g.add_input(f"x{k}", 8)
        for k in range(9):
            g.add_input(f"w{k}", 8)
        for k in range(9):
            g.add_op(f"mul{k}", NodeKind.MUL, 8, f"w{k}", f"x{k}")
        g.add_op("sum1", NodeKind.ADD, 16, "mul0", "mul1")
        g.add_op("sum2", NodeKind.ADD, 16, "mul2", "mul3")
        g.add_op("sum3", NodeKind.ADD, 16, "mul4", "mul5")
        g.add_op("sum4", NodeKind.ADD, 16, "mul6", "mul7")
        g.add_op("sum5", NodeKind.ADD, 16, "sum1", "sum2")
        g.add_op("sum6", NodeKind.ADD, 16, "sum3", "sum4")
        g.add_op("sum7", NodeKind.ADD, 16, "sum5", "sum6")
        g.add_op("sum8", NodeKind.ADD, 16, "sum7", "mul8")
        g.add_shr("norm", "sum8", 8)
        g.add_clip("out", "norm", 0, 255)
        g.set_output("out")
        return g

    def extra_inputs(self) -> Dict[str, int]:
        weights = gaussian_kernel_weights(self.DEFAULT_SIGMA)
        return {f"w{k}": weights[k] for k in range(9)}

    @staticmethod
    def kernel_extra(weights: Tuple[int, ...]) -> Dict[str, int]:
        """Build the ``extra`` input dict for one kernel."""
        if len(weights) != 9:
            raise ValueError("a 3x3 kernel needs nine weights")
        return {f"w{k}": int(weights[k]) for k in range(9)}
