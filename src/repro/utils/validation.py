"""Argument-validation helpers shared across the package."""

from __future__ import annotations

import numbers
from typing import Optional

import numpy as np

from repro.errors import ValidationError


def check_env_dir(value: object, source: str) -> str:
    """Validate a directory path from an environment variable or flag.

    Empty or whitespace-only values would silently create odd relative
    paths (``Path("")`` is the current directory); reject them with a
    :class:`~repro.errors.ValidationError` naming ``source`` instead, the
    same contract as ``validate_workers`` for ``REPRO_WORKERS``.
    """
    text = str(value) if value is not None else ""
    if not text.strip():
        raise ValidationError(
            f"{source} must be a non-empty directory path, got {value!r}"
        )
    return text


def check_env_int(
    value: object,
    source: str,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """Validate an integer environment knob (or flag) value.

    Blank and non-numeric values raise a
    :class:`~repro.errors.ValidationError` naming ``source`` — the same
    contract as :func:`check_env_dir` — instead of surfacing a raw
    ``ValueError`` traceback from ``int()`` deep inside a run.
    """
    text = str(value).strip() if value is not None else ""
    if not text:
        raise ValidationError(
            f"{source} must be an integer, got {value!r}"
        )
    try:
        number = int(text)
    except ValueError:
        raise ValidationError(
            f"{source} must be an integer, got {value!r}"
        ) from None
    if minimum is not None and number < minimum:
        raise ValidationError(
            f"{source} must be >= {minimum}, got {number}"
        )
    if maximum is not None and number > maximum:
        raise ValidationError(
            f"{source} must be <= {maximum}, got {number}"
        )
    return number


def check_env_float(
    value: object,
    source: str,
    minimum: Optional[float] = None,
) -> float:
    """Validate a floating-point environment knob (or flag) value.

    Same contract as :func:`check_env_int`: blank or non-numeric input
    is a configuration error named after its knob, never a raw
    ``ValueError`` traceback (and never a silent fallback).
    """
    text = str(value).strip() if value is not None else ""
    if not text:
        raise ValidationError(
            f"{source} must be a number, got {value!r}"
        )
    try:
        number = float(text)
    except ValueError:
        raise ValidationError(
            f"{source} must be a number, got {value!r}"
        ) from None
    if number != number:  # NaN never compares; reject it explicitly
        raise ValidationError(f"{source} must be a number, got NaN")
    if minimum is not None and number < minimum:
        raise ValidationError(
            f"{source} must be >= {minimum}, got {number}"
        )
    return number


def check_env_choice(
    value: object,
    source: str,
    choices: tuple,
) -> str:
    """Validate an enumerated environment knob (or flag) value.

    Matching is case-insensitive; the canonical (lower-case) choice is
    returned. Blank or unknown values raise a
    :class:`~repro.errors.ValidationError` naming ``source``, the same
    contract as the other ``check_env_*`` helpers.
    """
    text = str(value).strip().lower() if value is not None else ""
    if text not in choices:
        options = "|".join(choices)
        raise ValidationError(
            f"{source} must be one of {options}, got {value!r}"
        )
    return text


def check_positive(value: numbers.Real, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(
    value: numbers.Real,
    name: str,
    low: Optional[numbers.Real] = None,
    high: Optional[numbers.Real] = None,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (bounds optional)."""
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value!r}")


def check_probability_vector(p: np.ndarray, name: str = "p") -> None:
    """Raise ``ValueError`` unless ``p`` is non-negative and sums to ~1."""
    p = np.asarray(p, dtype=float)
    if p.ndim == 0:
        raise ValueError(f"{name} must be array-like")
    if np.any(p < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(p.sum())
    if not np.isclose(total, 1.0, rtol=1e-6, atol=1e-9):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
