"""Shared low-level helpers: RNG handling, bit manipulation, validation."""

from repro.utils.bitops import (
    bit_mask,
    extract_bit,
    min_bits_unsigned,
    to_signed,
    to_unsigned,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tabulate import format_table
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "bit_mask",
    "extract_bit",
    "min_bits_unsigned",
    "to_signed",
    "to_unsigned",
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
]
