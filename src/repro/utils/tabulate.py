"""Minimal plain-text table formatting for experiment drivers.

The experiment modules print paper-style tables; this avoids an external
tabulate dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
