"""Random-number-generator plumbing.

Everything stochastic in the library (library generation, training-set
sampling, hill climbing, random-search baselines) accepts either a seed or a
:class:`numpy.random.Generator`.  These helpers normalise the two forms and
derive independent child generators so that parallel stages do not share
streams.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh unseeded generator, an ``int`` seeds a new
    generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
