"""Bit-level helpers used by the behavioural circuit models.

All helpers are vectorised: they accept scalars or numpy integer arrays and
return the same shape.  Widths are operand widths in bits; arithmetic is
performed in int64 so that 16x16-bit products never overflow.
"""

from __future__ import annotations

from typing import Union

import numpy as np

IntLike = Union[int, np.ndarray]


def bit_mask(width: int) -> int:
    """Return the all-ones mask for ``width`` bits (``width >= 0``)."""
    if width < 0:
        raise ValueError("width must be non-negative")
    return (1 << width) - 1


def extract_bit(value: IntLike, position: int) -> IntLike:
    """Return bit ``position`` of ``value`` (0 = LSB) as 0/1."""
    if position < 0:
        raise ValueError("bit position must be non-negative")
    return (value >> position) & 1


def min_bits_unsigned(value: int) -> int:
    """Number of bits needed to represent a non-negative integer."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return max(1, int(value).bit_length())


def to_signed(value: IntLike, width: int) -> IntLike:
    """Interpret ``width``-bit unsigned words as two's-complement integers."""
    mask = bit_mask(width)
    sign = 1 << (width - 1)
    value = value & mask
    return np.where(value & sign, value - (1 << width), value) if isinstance(
        value, np.ndarray
    ) else (value - (1 << width) if value & sign else value)


def to_unsigned(value: IntLike, width: int) -> IntLike:
    """Wrap (possibly negative) integers into ``width``-bit unsigned words."""
    return value & bit_mask(width)
