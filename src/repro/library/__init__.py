"""Component library: characterised approximate circuits per operation.

Mirrors the role of EvoApprox8b + QuAd + BAM in the paper: for every
operation signature (kind, bit-width) the library holds many approximate
implementations, each fully characterised by error metrics (uniform-input)
and post-synthesis hardware parameters.
"""

from repro.library.component import (
    FAMILY_REGISTRY,
    ComponentRecord,
    HardwareCost,
    OpSignature,
    record_from_circuit,
    records_from_circuits,
)
from repro.library.library import ComponentLibrary
from repro.library.generation import (
    GenerationPlan,
    enumerate_adders,
    enumerate_multipliers,
    enumerate_plan,
    enumerate_subtractors,
    generate_adders,
    generate_library,
    generate_multipliers,
    generate_subtractors,
    paper_scale_plan,
    scaled_plan,
)
from repro.library.io import load_library, save_library
from repro.library.pipeline import (
    COMPONENT_KIND,
    LibraryBuildResult,
    LibraryBuildStats,
    build_library,
    component_key,
)

__all__ = [
    "FAMILY_REGISTRY",
    "ComponentRecord",
    "HardwareCost",
    "OpSignature",
    "record_from_circuit",
    "records_from_circuits",
    "ComponentLibrary",
    "GenerationPlan",
    "enumerate_adders",
    "enumerate_subtractors",
    "enumerate_multipliers",
    "enumerate_plan",
    "generate_adders",
    "generate_subtractors",
    "generate_multipliers",
    "generate_library",
    "paper_scale_plan",
    "scaled_plan",
    "load_library",
    "save_library",
    "COMPONENT_KIND",
    "LibraryBuildResult",
    "LibraryBuildStats",
    "build_library",
    "component_key",
]
