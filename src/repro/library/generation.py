"""Library generation: populate thousands of approximate variants.

The paper's initial library (Table 2) combines EvoApprox8b, QuAd adders and
BAM multipliers — e.g. 6979 8-bit adders and 29911 8-bit multipliers.  This
module regenerates libraries of configurable size from the circuit families
of :mod:`repro.circuits`: the systematically enumerable families
(truncation, LOA, ACA, GeAr, BAM, Mitchell, DRUM) are exhausted first and
the exponentially large ones (QuAd partitions, perforation subsets,
recursive 2x2 leaf subsets) are sampled without replacement until the target
count is reached.

Enumeration (cheap: circuit objects only) is separated from
characterisation (expensive: exhaustive LUT grids plus synthesis):
``enumerate_*``/:func:`enumerate_plan` produce the deterministic circuit
inventory, and the construction pipeline
(:mod:`repro.library.pipeline`) characterises it in parallel chunks
with per-component store memoisation.  :func:`generate_library` is the
front door and drives the pipeline; per-signature child RNGs derive via
the repo-wide :func:`~repro.utils.rng.spawn_rngs` convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Set, Tuple

from repro.circuits.adders import (
    AlmostCorrectAdder,
    GeArAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.base import (
    ArithmeticCircuit,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
)
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    MitchellMultiplier,
    PerforatedMultiplier,
    RecursiveApproxMultiplier,
    TruncatedMultiplier,
)
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.library.component import (
    ComponentRecord,
    OpSignature,
    record_from_circuit,
)
from repro.library.library import ComponentLibrary
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def _random_partition(rng, total: int, max_blocks: int) -> List[int]:
    """Random composition of ``total`` into at most ``max_blocks`` parts."""
    blocks: List[int] = []
    remaining = total
    while remaining > 0:
        if len(blocks) == max_blocks - 1:
            blocks.append(remaining)
            break
        size = int(rng.integers(1, remaining + 1))
        blocks.append(size)
        remaining -= size
    return blocks


def _random_quad(rng, width: int) -> QuAdAdder:
    blocks = _random_partition(rng, width, max_blocks=width)
    predictions = [0]
    offset = blocks[0]
    for length in blocks[1:]:
        predictions.append(int(rng.integers(0, min(offset, 6) + 1)))
        offset += length
    return QuAdAdder(width, blocks, predictions)


def _random_block_sub(rng, width: int) -> BlockSubtractor:
    blocks = _random_partition(rng, width, max_blocks=width)
    predictions = [0]
    offset = blocks[0]
    for length in blocks[1:]:
        predictions.append(int(rng.integers(0, min(offset, 6) + 1)))
        offset += length
    return BlockSubtractor(width, blocks, predictions)


def _collect_circuits(
    circuits: Iterator[ArithmeticCircuit],
    count: int,
    seen: Set[str],
) -> List[ArithmeticCircuit]:
    """Pull up to ``count`` unseen circuits out of an iterator."""
    out: List[ArithmeticCircuit] = []
    for circuit in circuits:
        if len(out) >= count:
            break
        if circuit.name in seen:
            continue
        seen.add(circuit.name)
        out.append(circuit)
    return out


def _enumerate(
    systematic: Iterator[ArithmeticCircuit],
    sampled: Iterator[ArithmeticCircuit],
    count: int,
) -> List[ArithmeticCircuit]:
    seen: Set[str] = set()
    circuits = _collect_circuits(systematic, count, seen)
    if len(circuits) < count:
        circuits += _collect_circuits(
            sampled, count - len(circuits), seen
        )
    return circuits


def enumerate_adders(
    width: int, count: int, rng: RngLike = 0
) -> List[ArithmeticCircuit]:
    """Enumerate up to ``count`` distinct ``width``-bit adder circuits.

    The exact adder is always first.  Systematic families are enumerated
    in an interleaved error-sweep order; random QuAd partitions then fill
    the remaining quota.  No characterisation happens here — circuit
    construction only.
    """
    gen = ensure_rng(rng)

    def systematic() -> Iterator[ArithmeticCircuit]:
        yield ExactAdder(width)
        for t in range(1, width):
            for fill in ("zero", "half", "copy"):
                yield TruncatedAdder(width, t, fill)
        for l in range(1, width + 1):
            yield LowerOrAdder(width, l)
        for w in range(1, width):
            yield AlmostCorrectAdder(width, w)
        for r in range(1, width):
            for p in range(0, r + 1):
                if r + p < width:
                    yield GeArAdder(width, r, p)

    def sampled() -> Iterator[ArithmeticCircuit]:
        while True:
            yield _random_quad(gen, width)

    return _enumerate(systematic(), sampled(), count)


def enumerate_subtractors(
    width: int, count: int, rng: RngLike = 0
) -> List[ArithmeticCircuit]:
    """Enumerate up to ``count`` distinct ``width``-bit subtractors."""
    gen = ensure_rng(rng)

    def systematic() -> Iterator[ArithmeticCircuit]:
        yield ExactSubtractor(width)
        for t in range(1, width):
            for fill in ("zero", "copy"):
                yield TruncatedSubtractor(width, t, fill)

    def sampled() -> Iterator[ArithmeticCircuit]:
        while True:
            yield _random_block_sub(gen, width)

    return _enumerate(systematic(), sampled(), count)


def enumerate_multipliers(
    width: int, count: int, rng: RngLike = 0
) -> List[ArithmeticCircuit]:
    """Enumerate up to ``count`` distinct ``width``-bit multipliers."""
    gen = ensure_rng(rng)

    def systematic() -> Iterator[ArithmeticCircuit]:
        yield ExactMultiplier(width)
        for k in range(2, width):
            yield DrumMultiplier(width, k)
        for f in range(2, 2 * width + 1, 2):
            yield MitchellMultiplier(width, f)
        for vbl in range(1, 2 * width - 1):
            for hbl in range(0, width + 1):
                yield BrokenArrayMultiplier(width, vbl, hbl)
        for ta in range(0, width):
            for tb in range(0, width):
                if ta or tb:
                    yield TruncatedMultiplier(width, ta, tb)

    def sampled() -> Iterator[ArithmeticCircuit]:
        half = width // 2
        n_leaves = half * half
        while True:
            if gen.random() < 0.7 and width >= 4 and width & (width - 1) == 0:
                n_approx = int(gen.integers(1, n_leaves + 1))
                leaves = gen.choice(n_leaves, size=n_approx, replace=False)
                yield RecursiveApproxMultiplier(width, leaves.tolist())
            else:
                n_omit = int(gen.integers(1, width))
                rows = gen.choice(width, size=n_omit, replace=False)
                yield PerforatedMultiplier(width, rows.tolist())

    return _enumerate(systematic(), sampled(), count)


def _characterize_all(
    circuits: Sequence[ArithmeticCircuit], sample_size: int
) -> List[ComponentRecord]:
    return [
        record_from_circuit(circuit, sample_size=sample_size)
        for circuit in circuits
    ]


def generate_adders(
    width: int,
    count: int,
    rng: RngLike = 0,
    sample_size: int = 1 << 15,
) -> List[ComponentRecord]:
    """Generate up to ``count`` characterised ``width``-bit adders."""
    return _characterize_all(
        enumerate_adders(width, count, rng), sample_size
    )


def generate_subtractors(
    width: int,
    count: int,
    rng: RngLike = 0,
    sample_size: int = 1 << 15,
) -> List[ComponentRecord]:
    """Generate up to ``count`` characterised ``width``-bit subtractors."""
    return _characterize_all(
        enumerate_subtractors(width, count, rng), sample_size
    )


def generate_multipliers(
    width: int,
    count: int,
    rng: RngLike = 0,
    sample_size: int = 1 << 15,
) -> List[ComponentRecord]:
    """Generate up to ``count`` characterised ``width``-bit multipliers."""
    return _characterize_all(
        enumerate_multipliers(width, count, rng), sample_size
    )


@dataclass(frozen=True)
class GenerationPlan:
    """How many components to generate per operation signature."""

    counts: Dict[tuple, int] = field(default_factory=dict)
    seed: int = 0
    sample_size: int = 1 << 15

    def total(self) -> int:
        return sum(self.counts.values())


#: Signatures used by the three case-study accelerators (paper Table 1/2).
PAPER_SIGNATURES = (
    ("add", 8),
    ("add", 9),
    ("add", 16),
    ("sub", 10),
    ("sub", 16),
    ("mul", 8),
)

#: Paper-scale library sizes (Table 2).
PAPER_COUNTS = {
    ("add", 8): 6979,
    ("add", 9): 332,
    ("add", 16): 884,
    ("sub", 10): 365,
    ("sub", 16): 460,
    ("mul", 8): 29911,
}


def paper_scale_plan(seed: int = 0) -> GenerationPlan:
    """The full Table 2 library (tens of thousands of components)."""
    return GenerationPlan(dict(PAPER_COUNTS), seed=seed)


def scaled_plan(
    scale: float = 0.02, seed: int = 0, floor: int = 64
) -> GenerationPlan:
    """A proportionally scaled-down Table 2 library.

    ``scale=0.02`` yields roughly a thousand components — large enough
    that exhaustive configuration enumeration stays intractable while
    library generation remains minutes-scale on a laptop.  ``floor``
    keeps the small signatures populated (the paper's *reduced* per-op
    libraries alone hold ~35 circuits, so the initial pool must exceed
    that).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    counts = {
        sig: max(floor, int(round(count * scale)))
        for sig, count in PAPER_COUNTS.items()
    }
    return GenerationPlan(counts, seed=seed)


_ENUMERATORS: Dict[str, Callable] = {
    "add": enumerate_adders,
    "sub": enumerate_subtractors,
    "mul": enumerate_multipliers,
}

def enumerate_plan(
    plan: GenerationPlan,
) -> List[Tuple[OpSignature, ArithmeticCircuit]]:
    """The deterministic circuit inventory of ``plan``, in library order.

    Signatures are visited sorted; each gets its own child generator
    from one :func:`~repro.utils.rng.spawn_rngs` call on the plan seed
    (indexed by position in the sorted signature list).  Construction
    is cheap (no characterisation, no synthesis) — this runs serially
    in the pipeline driver.
    """
    items = sorted(plan.counts.items())
    children = spawn_rngs(plan.seed, len(items))
    inventory: List[Tuple[OpSignature, ArithmeticCircuit]] = []
    for ((kind, width), count), child in zip(items, children):
        for circuit in _ENUMERATORS[kind](width, count, rng=child):
            inventory.append(((kind, width), circuit))
    return inventory


def generate_library(
    plan: GenerationPlan,
    workers=None,
    store=None,
    progress=None,
) -> ComponentLibrary:
    """Generate a characterised library according to ``plan``.

    Delegates to the construction pipeline
    (:func:`repro.library.pipeline.build_library`): ``workers`` worker
    processes (``None`` falls back to ``REPRO_WORKERS``, then serial)
    and optional per-component memoisation in ``store``.  The result is
    bit-identical for every ``workers`` setting and for warm vs. cold
    stores.
    """
    from repro.library.pipeline import build_library

    return build_library(
        plan, workers=workers, store=store, progress=progress
    ).library
