"""Characterised library component records.

A :class:`ComponentRecord` bundles everything the methodology needs to know
about one approximate circuit: its behavioural model (lazily reconstructed
from family + parameters), its uniform-input error statistics and its
post-synthesis hardware cost.  Records are cheap to serialise — circuits
are rebuilt from the family registry, never pickled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.adders import (
    AlmostCorrectAdder,
    GeArAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.base import (
    ArithmeticCircuit,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
    Operation,
)
from repro.circuits.characterization import ErrorStats, characterize_many
from repro.circuits.luts import MAX_LUT_WIDTH, build_lut
from repro.circuits.multipliers import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    MaskedMultiplier,
    MitchellMultiplier,
    PerforatedMultiplier,
    RecursiveApproxMultiplier,
    TruncatedMultiplier,
)
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.errors import LibraryError
from repro.netlist.builders import build_netlist
from repro.netlist.netlist import Netlist
from repro.synthesis.synthesizer import report as synth_report
from repro.synthesis.synthesizer import optimize

#: Operation signature: (kind, operand width), e.g. ("add", 8).
OpSignature = Tuple[str, int]

#: Reconstruction registry: family name -> circuit class.  Exact classes
#: take only the width; approximate classes take width + their params.
FAMILY_REGISTRY = {
    klass.__name__: klass
    for klass in (
        ExactAdder,
        ExactSubtractor,
        ExactMultiplier,
        TruncatedAdder,
        LowerOrAdder,
        AlmostCorrectAdder,
        GeArAdder,
        QuAdAdder,
        TruncatedSubtractor,
        BlockSubtractor,
        MaskedMultiplier,
        BrokenArrayMultiplier,
        PerforatedMultiplier,
        TruncatedMultiplier,
        RecursiveApproxMultiplier,
        MitchellMultiplier,
        DrumMultiplier,
    )
}


@dataclass(frozen=True)
class HardwareCost:
    """Post-synthesis parameters of one isolated component."""

    area: float
    delay: float
    power: float
    gate_count: int

    @property
    def energy(self) -> float:
        """Energy-per-operation proxy (power * delay)."""
        return self.power * self.delay


class ComponentRecord:
    """One fully characterised library circuit."""

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        errors: ErrorStats,
        hardware: HardwareCost,
    ):
        self._circuit = circuit
        self.errors = errors
        self.hardware = hardware
        self._lut: Optional[np.ndarray] = None

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._circuit.name

    @property
    def op(self) -> Operation:
        return self._circuit.op

    @property
    def width(self) -> int:
        return self._circuit.width

    @property
    def family(self) -> str:
        return type(self._circuit).__name__

    @property
    def signature(self) -> OpSignature:
        return (self.op.value, self.width)

    @property
    def circuit(self) -> ArithmeticCircuit:
        return self._circuit

    def is_exact(self) -> bool:
        return self._circuit.is_exact()

    # -- behaviour ------------------------------------------------------------

    def lut(self) -> np.ndarray:
        """Cached exhaustive output table (widths <= MAX_LUT_WIDTH only)."""
        if self._lut is None:
            if self.width > MAX_LUT_WIDTH:
                raise LibraryError(
                    f"{self.name}: {self.width}-bit operands exceed the LUT "
                    f"limit; use circuit.evaluate"
                )
            self._lut = build_lut(self._circuit)
        return self._lut

    def build_netlist(self) -> Netlist:
        """Fresh (unoptimised) netlist instance of this component."""
        return build_netlist(self._circuit)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (circuit rebuilt via registry)."""
        return {
            "family": self.family,
            "width": self.width,
            "params": self._circuit.params(),
            "errors": dict(vars(self.errors)),
            "hardware": {
                "area": self.hardware.area,
                "delay": self.hardware.delay,
                "power": self.hardware.power,
                "gate_count": self.hardware.gate_count,
            },
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ComponentRecord":
        family = data["family"]
        if family not in FAMILY_REGISTRY:
            raise LibraryError(f"unknown circuit family {family!r}")
        klass = FAMILY_REGISTRY[family]
        circuit = klass(data["width"], **data["params"])
        error_fields = dict(data["errors"])
        if "exhaustive" not in error_fields:
            # Libraries serialised before the flag existed always used
            # characterize()'s auto mode, so the width determines it.
            error_fields["exhaustive"] = (
                int(data["width"]) <= MAX_LUT_WIDTH
            )
        errors = ErrorStats(**error_fields)
        hw = HardwareCost(**data["hardware"])
        return ComponentRecord(circuit, errors, hw)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ComponentRecord {self.name} med={self.errors.med:.3g} "
            f"area={self.hardware.area:.1f}>"
        )


def record_from_circuit(
    circuit: ArithmeticCircuit, sample_size: int = 1 << 15
) -> ComponentRecord:
    """Characterise ``circuit`` (errors + synthesised hardware cost)."""
    return records_from_circuits([circuit], sample_size=sample_size)[0]


def records_from_circuits(
    circuits, sample_size: int = 1 << 15
) -> "list[ComponentRecord]":
    """Characterise a batch of circuits into records.

    The batched error characterisation shares exact reference outputs
    and operand samples across the batch (see
    :func:`~repro.circuits.characterization.characterize_many`), so a
    chunked library build pays the reference cost once per chunk rather
    than once per component.  Synthesis still runs per circuit — each
    netlist is independent.
    """
    all_errors = characterize_many(circuits, sample_size=sample_size)
    records = []
    for circuit, errors in zip(circuits, all_errors):
        netlist = build_netlist(circuit)
        optimize(netlist)
        rep = synth_report(netlist)
        hw = HardwareCost(
            area=rep.area,
            delay=rep.delay,
            power=rep.power,
            gate_count=rep.gate_count,
        )
        records.append(ComponentRecord(circuit, errors, hw))
    return records
