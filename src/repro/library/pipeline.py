"""Streaming, chunked, store-backed library construction.

The library build is the single largest cold-start cost of the
methodology: thousands of components, each needing an exhaustive LUT
grid (or a wide-operand sample), a structural netlist, optimisation and
a synthesis report.  This module turns that serial loop into a
three-stage pipeline:

1. **generation** — :func:`~repro.library.generation.enumerate_plan`
   produces the deterministic circuit inventory (cheap, serial, one
   spawned child RNG per signature);
2. **characterisation + synthesis** — the inventory is cut into
   fixed-size chunks that worker processes consume
   (:data:`REPRO_WORKERS`/``workers`` convention).  Each chunk is
   characterised through the batched
   :func:`~repro.circuits.characterization.characterize_many` (shared
   exact LUTs and operand samples) and synthesised per component;
3. **assembly** — chunk results stream back in order and land in one
   :class:`~repro.library.library.ComponentLibrary`.

Chunk boundaries are fixed (independent of the worker count) and no
worker consumes shared RNG state, so the built library is
**bit-identical for every ``workers`` setting**.

With a ``store``, every component is memoised individually in the
experiment store under the ``component`` artifact kind, keyed by a
content hash of (family, width, params[, sample size]).  Interrupted,
re-scaled or re-planned builds therefore only pay for components they
have never seen: growing a plan from 500 to 5000 components
characterises 4500, and a warm rebuild characterises **zero** and runs
**zero** synthesis (asserted by ``benchmarks/bench_library_build.py``).
Each store-backed build also records a ``library-build`` manifest in
the run ledger with its cache statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.circuits.luts import MAX_LUT_WIDTH
from repro.library.component import (
    FAMILY_REGISTRY,
    ComponentRecord,
    records_from_circuits,
)
from repro.library.generation import GenerationPlan, enumerate_plan
from repro.library.library import ComponentLibrary
from repro.telemetry import get_logger, get_metrics, maybe_span

#: Artifact kind of per-component memo entries in the experiment store.
COMPONENT_KIND = "component"

#: Components per worker task.  Fixed — never derived from the worker
#: count — so chunk boundaries (and thus results) are identical for any
#: parallelism.  Large enough to amortise the shared exact-LUT build of
#: characterize_many and the per-task IPC, small enough to stream
#: progress and balance load.
DEFAULT_CHUNK_SIZE = 32


def component_key(circuit, sample_size: int) -> str:
    """Content-address of one characterised component.

    The key covers everything that shapes the stored record: the
    circuit identity (family + width + params) and, for wide operands
    only, the characterisation sample size — exhaustive
    characterisation does not depend on it, so narrow components stay
    warm across sample-size changes.
    """
    from repro.store.hashing import content_hash

    return content_hash(
        {
            "component": {
                "family": type(circuit).__name__,
                "width": circuit.width,
                "params": circuit.params(),
                "sample_size": (
                    None if circuit.width <= MAX_LUT_WIDTH
                    else int(sample_size)
                ),
            }
        }
    )


@dataclass
class LibraryBuildStats:
    """Cache and work accounting of one pipeline run."""

    components: int = 0
    store_hits: int = 0
    characterized: int = 0
    synthesized: int = 0
    chunks: int = 0
    workers: int = 1
    seconds: float = 0.0
    per_signature: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "components": self.components,
            "store_hits": self.store_hits,
            "characterized": self.characterized,
            "synthesized": self.synthesized,
            "chunks": self.chunks,
            "workers": self.workers,
            "seconds": round(self.seconds, 6),
            "per_signature": dict(self.per_signature),
        }


@dataclass
class LibraryBuildResult:
    """A built library plus how it was built."""

    library: ComponentLibrary
    stats: LibraryBuildStats
    run_id: Optional[str] = None


def _run_chunk(context, task):
    """Characterise + synthesise one chunk (a shared-runtime task).

    ``context`` is ``(store, sample_size)``.  Components already present
    in the store are decoded from their memo entry; the rest are
    characterised through the batched ``characterize_many`` and written
    back.  Returns serialisable payload dicts — records cross process
    boundaries (and the store) in their ``to_dict`` form, which
    round-trips exactly.
    """
    store, sample_size = context
    index, specs = task
    payloads: List[Optional[Dict]] = [None] * len(specs)
    miss_slots: List[int] = []
    miss_circuits = []
    miss_keys: List[str] = []
    hits = 0
    for slot, (family, width, params) in enumerate(specs):
        circuit = FAMILY_REGISTRY[family](width, **params)
        key = component_key(circuit, sample_size)
        if store is not None:
            cached = store.get(COMPONENT_KIND, key)
            if cached is not None:
                payloads[slot] = cached
                hits += 1
                continue
        miss_slots.append(slot)
        miss_circuits.append(circuit)
        miss_keys.append(key)
    if miss_circuits:
        records = records_from_circuits(
            miss_circuits, sample_size=sample_size
        )
        for slot, key, record in zip(miss_slots, miss_keys, records):
            payload = record.to_dict()
            if store is not None:
                store.put(
                    COMPONENT_KIND, key, payload,
                    meta={"name": record.name},
                )
            payloads[slot] = payload
    return index, payloads, hits, len(miss_circuits)


def _execute_chunks(tasks, context, workers: Optional[int]):
    """Yield chunk results in order through the shared runtime.

    The runtime streams results back in task order, probes the first
    chunk in-process, and stays serial whenever its cost model says the
    fan-out would not pay for itself — so any ``workers`` setting is at
    least as fast as serial and produces the identical library.
    """
    from repro.core.runtime import get_runtime

    if workers is not None:
        workers = min(workers, len(tasks))
    yield from get_runtime().imap(
        _run_chunk,
        tasks,
        context=context,
        workers=workers,
        label="library-build",
    )


def build_library(
    plan: GenerationPlan,
    workers: Optional[int] = None,
    store=None,
    progress: Optional[Callable[[str], None]] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    record_run: bool = True,
) -> LibraryBuildResult:
    """Build the characterised library of ``plan`` through the pipeline.

    ``workers`` bounds the characterisation/synthesis process count
    (``None`` falls back to ``REPRO_WORKERS``, then serial); the result
    does not depend on it.  ``store`` enables per-component memoisation
    (and a ``library-build`` ledger manifest unless ``record_run`` is
    off).  ``progress`` receives one human-readable line per completed
    chunk; by default those lines go to the structured logger (stderr)
    at DEBUG, keeping programmatic builds quiet and ``--json`` stdout
    pure — the CLI passes the logger's INFO method for visible
    progress.
    """
    from repro.core.runtime import default_workers, validate_workers

    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if workers is None:
        workers = default_workers()
    else:
        workers = validate_workers(workers)
    if progress is None:
        progress = get_logger("library").debug

    start = time.perf_counter()
    inventory = enumerate_plan(plan)
    specs = [
        (type(circuit).__name__, circuit.width, circuit.params())
        for _, circuit in inventory
    ]
    tasks = [
        (i, specs[offset:offset + chunk_size])
        for i, offset in enumerate(range(0, len(specs), chunk_size))
    ]

    stats = LibraryBuildStats(
        components=len(specs),
        chunks=len(tasks),
        workers=workers or 1,
    )
    library = ComponentLibrary()
    cursor = 0
    done = 0
    metrics = get_metrics()
    metrics_mark = metrics.mark()
    with maybe_span(
        "library.build", cat="library",
        args={"components": len(specs), "chunks": len(tasks)},
    ):
        for index, payloads, hits, misses in _execute_chunks(
            tasks, (store, plan.sample_size), workers
        ):
            for payload in payloads:
                record = ComponentRecord.from_dict(payload)
                cursor += 1
                library.add(record)
                kind, width = record.signature
                label = f"{kind}{width}"
                stats.per_signature[label] = (
                    stats.per_signature.get(label, 0) + 1
                )
            stats.store_hits += hits
            stats.characterized += misses
            stats.synthesized += misses
            done += 1
            if progress is not None:
                progress(
                    f"chunk {done}/{len(tasks)}: "
                    f"{cursor}/{len(specs)} "
                    f"components ({stats.store_hits} cached)"
                )
    stats.seconds = time.perf_counter() - start
    metrics.inc("library.components_built", stats.characterized)
    metrics.inc("library.store_hits", stats.store_hits)
    metrics.inc("library.chunks", stats.chunks)

    run_id = None
    if store is not None and record_run:
        run_id = _record_build(
            store, plan, stats, metrics_mark=metrics_mark
        )
    return LibraryBuildResult(
        library=library, stats=stats, run_id=run_id
    )


def _record_build(
    store,
    plan: GenerationPlan,
    stats: LibraryBuildStats,
    metrics_mark: Optional[Dict] = None,
) -> str:
    """Write the ledger manifest of one store-backed build."""
    from repro.store import RunLedger
    from repro.store.hashing import content_hash

    run_id = RunLedger.new_run_id()
    cache = (
        "hit" if stats.characterized == 0
        else "miss" if stats.store_hits == 0
        else "partial"
    )
    counts = [
        [kind, width, count]
        for (kind, width), count in sorted(plan.counts.items())
    ]
    RunLedger(store).record(
        run_id,
        kind="library-build",
        label="library:" + "-".join(
            f"{kind}{width}" for kind, width in sorted(plan.counts)
        ),
        params={
            "counts": counts,
            "sample_size": plan.sample_size,
        },
        config_hash=content_hash(
            {
                "counts": counts,
                "seed": plan.seed,
                "sample_size": plan.sample_size,
            }
        ),
        stages=[
            {
                "name": "characterise",
                "seconds": round(stats.seconds, 6),
                "cache": cache,
            }
        ],
        seed=plan.seed,
        extra={
            "build": stats.as_dict(),
            "metrics": get_metrics().snapshot(since=metrics_mark),
        },
    )
    return run_id
