"""The component library container."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import LibraryError
from repro.library.component import ComponentRecord, OpSignature


class ComponentLibrary:
    """Approximate circuits grouped by operation signature.

    The container preserves insertion order per signature and enforces
    unique component names within a signature.
    """

    def __init__(self, components: Iterable[ComponentRecord] = ()):
        self._groups: Dict[OpSignature, List[ComponentRecord]] = {}
        self._names: Dict[OpSignature, set] = {}
        for record in components:
            self.add(record)

    def add(self, record: ComponentRecord) -> None:
        """Insert ``record``; duplicate names per signature are rejected."""
        sig = record.signature
        names = self._names.setdefault(sig, set())
        if record.name in names:
            raise LibraryError(
                f"duplicate component {record.name!r} for signature {sig}"
            )
        names.add(record.name)
        self._groups.setdefault(sig, []).append(record)

    def extend(self, records: Iterable[ComponentRecord]) -> None:
        for record in records:
            self.add(record)

    def signatures(self) -> List[OpSignature]:
        """All operation signatures present, sorted."""
        return sorted(self._groups)

    def components(self, signature: OpSignature) -> List[ComponentRecord]:
        """Components available for ``signature`` (copy of the list)."""
        if signature not in self._groups:
            raise LibraryError(f"no components for signature {signature}")
        return list(self._groups[signature])

    def get(self, signature: OpSignature, name: str) -> ComponentRecord:
        """Look up one component by signature and name."""
        for record in self._groups.get(signature, ()):
            if record.name == name:
                return record
        raise LibraryError(f"component {name!r} not found for {signature}")

    def exact_component(self, signature: OpSignature) -> ComponentRecord:
        """The first exact implementation registered for ``signature``."""
        for record in self._groups.get(signature, ()):
            if record.is_exact():
                return record
        raise LibraryError(f"no exact component for signature {signature}")

    def size(self, signature: Optional[OpSignature] = None) -> int:
        """Component count, total or per signature."""
        if signature is not None:
            return len(self._groups.get(signature, ()))
        return sum(len(group) for group in self._groups.values())

    def __iter__(self) -> Iterator[ComponentRecord]:
        for group in self._groups.values():
            yield from group

    def __len__(self) -> int:
        return self.size()

    def __contains__(self, signature: OpSignature) -> bool:
        return signature in self._groups

    def summary(self) -> Dict[OpSignature, int]:
        """Component count per signature (the paper's Table 2 content)."""
        return {sig: len(group) for sig, group in sorted(self._groups.items())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{kind}{width}:{count}"
            for (kind, width), count in self.summary().items()
        )
        return f"<ComponentLibrary {parts}>"
