"""Library persistence.

Characterising a large library takes minutes, so generated libraries are
cached as JSON.  Only family names, parameters and characterisation results
are stored; behavioural models are rebuilt from the family registry on
load (no pickling of code).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import LibraryError
from repro.library.component import ComponentRecord
from repro.library.library import ComponentLibrary

FORMAT_VERSION = 1


def save_library(
    library: ComponentLibrary, path: Union[str, Path]
) -> None:
    """Write ``library`` to ``path`` as JSON."""
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "components": [record.to_dict() for record in library],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(payload, handle)


def load_library(path: Union[str, Path]) -> ComponentLibrary:
    """Load a library previously written by :func:`save_library`."""
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise LibraryError(
            f"unsupported library format {version!r} in {path}"
        )
    library = ComponentLibrary()
    for data in payload["components"]:
        library.add(ComponentRecord.from_dict(data))
    return library
