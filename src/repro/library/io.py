"""Library persistence.

Characterising a large library takes minutes, so generated libraries are
cached as JSON.  Only family names, parameters and characterisation results
are stored; behavioural models are rebuilt from the family registry on
load (no pickling of code).

The payload helpers are the single source of the on-disk format: the
file functions here and the experiment store's ``library`` codec
(:mod:`repro.store.artifacts`) both speak it, so a library blob in the
store is byte-compatible with a standalone ``save_library`` file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import LibraryError
from repro.library.component import ComponentRecord
from repro.library.library import ComponentLibrary

FORMAT_VERSION = 1


def library_payload(library: ComponentLibrary) -> Dict[str, object]:
    """The JSON-serialisable payload of ``library``."""
    return {
        "format_version": FORMAT_VERSION,
        "components": [record.to_dict() for record in library],
    }


def library_from_payload(payload: Dict[str, object]) -> ComponentLibrary:
    """Rebuild a library from a :func:`library_payload` document."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise LibraryError(
            f"unsupported library format {version!r}"
        )
    library = ComponentLibrary()
    for data in payload["components"]:
        library.add(ComponentRecord.from_dict(data))
    return library


def save_library(
    library: ComponentLibrary, path: Union[str, Path]
) -> None:
    """Write ``library`` to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(library_payload(library), handle)


def load_library(path: Union[str, Path]) -> ComponentLibrary:
    """Load a library previously written by :func:`save_library`."""
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    try:
        return library_from_payload(payload)
    except LibraryError as exc:
        raise LibraryError(f"{exc} in {path}") from None
