"""repro — a full reproduction of the autoAx methodology (DAC 2019).

autoAx automatically builds approximate accelerators by selecting and
combining approximate arithmetic circuits from characterised component
libraries, using machine-learned QoR / hardware-cost estimators and a
Pareto-archive hill climber.  See README.md for a tour and DESIGN.md for
the system inventory and per-experiment index.

Quick start::

    from repro import (AutoAx, AutoAxConfig, SobelEdgeDetector,
                       benchmark_images, generate_library, scaled_plan)

    library = generate_library(scaled_plan(0.01))
    images = benchmark_images(4)
    result = AutoAx(SobelEdgeDetector(), library, images,
                    config=AutoAxConfig(n_train=100, n_test=50,
                                        max_evaluations=2000)).run()
    print(result.summary_row())
"""

from repro.accelerators import (
    FixedGaussianFilter,
    GenericGaussianFilter,
    ImageAccelerator,
    SobelEdgeDetector,
    WindowAccelerator,
    WindowSpec,
    gaussian_kernel_weights,
    profile_accelerator,
    quantize_kernel,
)
from repro.core import (
    AcceleratorEvaluator,
    AutoAx,
    AutoAxConfig,
    AutoAxResult,
    ConfigurationSpace,
    DSEResult,
    EvaluationEngine,
    ParetoArchive,
    build_training_set,
    exhaustive_search,
    fit_engines,
    front_distances,
    heuristic_pareto_construction,
    hypervolume_2d,
    pareto_front_indices,
    random_sampling,
    reduce_library,
    select_best_model,
    uniform_selection,
    wmed,
)
from repro.imaging import benchmark_images, psnr, ssim, ssim_batch
from repro.search import (
    EvaluationBudget,
    PortfolioResult,
    PortfolioRunner,
    SearchStrategy,
    make_strategy,
)
from repro.library import (
    ComponentLibrary,
    ComponentRecord,
    generate_library,
    load_library,
    paper_scale_plan,
    record_from_circuit,
    save_library,
    scaled_plan,
)
from repro.workloads import WORKLOADS, Workload, build_bundle

__version__ = "1.0.0"

__all__ = [
    "ImageAccelerator",
    "SobelEdgeDetector",
    "FixedGaussianFilter",
    "GenericGaussianFilter",
    "WindowAccelerator",
    "WindowSpec",
    "WORKLOADS",
    "Workload",
    "build_bundle",
    "gaussian_kernel_weights",
    "quantize_kernel",
    "profile_accelerator",
    "AutoAx",
    "AutoAxConfig",
    "AutoAxResult",
    "AcceleratorEvaluator",
    "EvaluationEngine",
    "ConfigurationSpace",
    "DSEResult",
    "ParetoArchive",
    "build_training_set",
    "fit_engines",
    "select_best_model",
    "heuristic_pareto_construction",
    "random_sampling",
    "uniform_selection",
    "exhaustive_search",
    "EvaluationBudget",
    "PortfolioResult",
    "PortfolioRunner",
    "SearchStrategy",
    "make_strategy",
    "reduce_library",
    "wmed",
    "pareto_front_indices",
    "front_distances",
    "hypervolume_2d",
    "benchmark_images",
    "ssim",
    "ssim_batch",
    "psnr",
    "ComponentLibrary",
    "ComponentRecord",
    "record_from_circuit",
    "generate_library",
    "scaled_plan",
    "paper_scale_plan",
    "save_library",
    "load_library",
    "__version__",
]
