"""Image quality metrics: MSE, PSNR and SSIM.

SSIM follows Wang et al. (2004) with the standard 11x11 Gaussian window
(sigma = 1.5) and stabilisation constants K1 = 0.01, K2 = 0.03, matching the
configuration used by common toolboxes and, per the paper, the QoR measure of
all three case studies.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def _as_float_pair(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError("metrics expect 2-D gray-scale images")
    return a, b


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two gray-scale images."""
    a, b = _as_float_pair(reference, test)
    return float(np.mean((a - b) ** 2))


def psnr(
    reference: np.ndarray, test: np.ndarray, data_range: float = 255.0
) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    err = mse(reference, test)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / err))


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 255.0,
    sigma: float = 1.5,
    truncate: float = 3.5,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean structural similarity index between two gray-scale images.

    Local statistics are computed with a Gaussian window of width
    ``2 * truncate * sigma + 1`` (11 px for the defaults).  Returns a value
    in [-1, 1]; 1 means identical images.
    """
    a, b = _as_float_pair(reference, test)
    if data_range <= 0:
        raise ValueError("data_range must be positive")

    def win_mean(img: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(
            img, sigma=sigma, truncate=truncate, mode="reflect"
        )

    mu_a = win_mean(a)
    mu_b = win_mean(b)
    mu_aa = win_mean(a * a)
    mu_bb = win_mean(b * b)
    mu_ab = win_mean(a * b)

    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov_ab = mu_ab - mu_a * mu_b

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2
    numerator = (2 * mu_a * mu_b + c1) * (2 * cov_ab + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(numerator / denominator))
