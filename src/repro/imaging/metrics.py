"""Image quality metrics: MSE, PSNR and SSIM.

SSIM follows Wang et al. (2004) with the standard 11x11 Gaussian window
(sigma = 1.5) and stabilisation constants K1 = 0.01, K2 = 0.03, matching the
configuration used by common toolboxes and, per the paper, the QoR measure of
all three case studies.

For the evaluation engine the metric also comes in a batched flavour:
:class:`BatchedSsim` scores a whole ``(runs, H, W)`` stack of test images
against a fixed reference stack in one vectorised pass.  The reference-side
window statistics are precomputed once (two of the five Gaussian filters an
SSIM evaluation needs), which matters when thousands of configurations are
scored against the same golden outputs.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def _as_float_pair(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError("metrics expect 2-D gray-scale images")
    return a, b


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two gray-scale images."""
    a, b = _as_float_pair(reference, test)
    return float(np.mean((a - b) ** 2))


def psnr(
    reference: np.ndarray, test: np.ndarray, data_range: float = 255.0
) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    err = mse(reference, test)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / err))


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 255.0,
    sigma: float = 1.5,
    truncate: float = 3.5,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean structural similarity index between two gray-scale images.

    Local statistics are computed with a Gaussian window of width
    ``2 * truncate * sigma + 1`` (11 px for the defaults).  Returns a value
    in [-1, 1]; 1 means identical images.
    """
    a, b = _as_float_pair(reference, test)
    if data_range <= 0:
        raise ValueError("data_range must be positive")

    def win_mean(img: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(
            img, sigma=sigma, truncate=truncate, mode="reflect"
        )

    mu_a = win_mean(a)
    mu_b = win_mean(b)
    mu_aa = win_mean(a * a)
    mu_bb = win_mean(b * b)
    mu_ab = win_mean(a * b)

    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov_ab = mu_ab - mu_a * mu_b

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2
    numerator = (2 * mu_a * mu_b + c1) * (2 * cov_ab + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(numerator / denominator))


class BatchedSsim:
    """SSIM of image stacks against a fixed reference stack.

    The reference ``(runs, H, W)`` stack is filtered once at construction;
    every :meth:`__call__` then needs only the three test-side Gaussian
    filters.  Filtering uses ``sigma = 0`` along the run axis, so each
    slice sees exactly the 2-D window of :func:`ssim` and the per-run
    scores match the scalar metric.
    """

    def __init__(
        self,
        reference: np.ndarray,
        data_range: float = 255.0,
        sigma: float = 1.5,
        truncate: float = 3.5,
        k1: float = 0.01,
        k2: float = 0.03,
    ):
        reference = np.asarray(reference, dtype=float)
        if reference.ndim != 3:
            raise ValueError("BatchedSsim expects a (runs, H, W) stack")
        if data_range <= 0:
            raise ValueError("data_range must be positive")
        self._sigma = (0.0, sigma, sigma)
        self._truncate = truncate
        self._c1 = (k1 * data_range) ** 2
        self._c2 = (k2 * data_range) ** 2
        self._ref = reference
        self._mu_a = self._blur(reference)
        self._mu_aa = self._blur(reference * reference)
        # Reference-only terms of the SSIM formula, computed once.
        self._two_mu_a = 2.0 * self._mu_a
        self._mu_a_sq_c1 = self._mu_a * self._mu_a + self._c1
        self._var_a_c2 = (
            self._mu_aa - self._mu_a * self._mu_a + self._c2
        )

    def _blur(self, stack: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(
            stack,
            sigma=self._sigma,
            truncate=self._truncate,
            mode="reflect",
        )

    @property
    def shape(self):
        return self._ref.shape

    def __call__(self, test: np.ndarray) -> np.ndarray:
        """Per-run SSIM scores of ``test`` (same shape as the reference)."""
        b = np.asarray(test, dtype=float)
        if b.shape != self._ref.shape:
            raise ValueError(
                f"shape mismatch: {b.shape} vs {self._ref.shape}"
            )
        mu_b = self._blur(b)
        mu_bb = self._blur(b * b)
        mu_ab = self._blur(self._ref * b)
        # cov_ab = mu_ab - mu_a * mu_b, built in place on mu_ab.
        mu_ab -= self._mu_a * mu_b
        mu_ab *= 2.0
        mu_ab += self._c2
        numerator = (self._two_mu_a * mu_b + self._c1) * mu_ab
        mu_b *= mu_b  # mu_b ** 2, in place
        mu_bb -= mu_b  # var_b, in place
        mu_bb += self._var_a_c2
        mu_b += self._mu_a_sq_c1
        numerator /= mu_b
        numerator /= mu_bb
        return np.mean(numerator, axis=(1, 2))

    def batch(self, test: np.ndarray) -> np.ndarray:
        """Per-run SSIM of a ``(C, runs, H, W)`` configuration stack.

        Vectorises :meth:`__call__` across a leading configuration axis:
        the Gaussian window runs with ``sigma = 0`` on the two leading
        axes (scipy skips zero-sigma axes entirely), the reference-side
        statistics broadcast, and the arithmetic is the same in-place
        ufunc chain — so row ``c`` of the returned ``(C, runs)`` score
        matrix is bit-identical to ``__call__(test[c])``.
        """
        b = np.asarray(test, dtype=float)
        if b.ndim != 4 or b.shape[1:] != self._ref.shape:
            raise ValueError(
                f"expected a (C,) + {self._ref.shape} stack, "
                f"got {b.shape}"
            )
        sigma4 = (0.0,) + self._sigma

        def blur4(stack):
            return ndimage.gaussian_filter(
                stack, sigma=sigma4, truncate=self._truncate,
                mode="reflect",
            )

        mu_b = blur4(b)
        mu_bb = blur4(b * b)
        mu_ab = blur4(self._ref * b)
        mu_ab -= self._mu_a * mu_b
        mu_ab *= 2.0
        mu_ab += self._c2
        numerator = (self._two_mu_a * mu_b + self._c1) * mu_ab
        mu_b *= mu_b
        mu_bb -= mu_b
        mu_bb += self._var_a_c2
        mu_b += self._mu_a_sq_c1
        numerator /= mu_b
        numerator /= mu_bb
        return np.mean(numerator, axis=(2, 3))


def ssim_batch(
    reference: np.ndarray, test: np.ndarray, **kwargs
) -> np.ndarray:
    """Per-run SSIM of two ``(runs, H, W)`` stacks (see :class:`BatchedSsim`)."""
    return BatchedSsim(reference, **kwargs)(test)
