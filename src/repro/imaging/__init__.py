"""Image substrate: synthetic benchmark dataset and quality metrics.

The paper evaluates QoR on 384x256 gray-scale images from the Berkeley
Segmentation Dataset.  That dataset is not redistributable here, so
:mod:`repro.imaging.datasets` synthesises deterministic natural-like scenes
with the same resolution and bit depth (see DESIGN.md, substitutions).
"""

from repro.imaging.datasets import benchmark_images, synthetic_image
from repro.imaging.metrics import BatchedSsim, mse, psnr, ssim, ssim_batch

__all__ = [
    "benchmark_images",
    "synthetic_image",
    "mse",
    "psnr",
    "ssim",
    "ssim_batch",
    "BatchedSsim",
]
