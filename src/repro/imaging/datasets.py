"""Deterministic synthetic benchmark images.

The autoAx experiments profile accelerators and measure SSIM on 8-bit
gray-scale natural images (384x256, Berkeley Segmentation Dataset).  The
important statistical property — visible in the paper's Fig. 3 PMFs — is
that neighbouring pixels are strongly correlated, so operand pairs cluster
near the diagonal.  The generator below composes smooth gradients, Gaussian
blobs, polygonal regions, sinusoidal texture and low-pass-filtered noise to
obtain scenes with that local-correlation structure, seeded per image index
so the dataset is fully reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import ndimage

from repro.utils.rng import ensure_rng

DEFAULT_SHAPE: Tuple[int, int] = (256, 384)  # rows, cols — paper: 384x256 px


def _smooth_noise(
    rng: np.random.Generator, shape: Tuple[int, int], sigma: float
) -> np.ndarray:
    """Zero-mean unit-ish noise field low-pass filtered at scale ``sigma``."""
    field = rng.standard_normal(shape)
    field = ndimage.gaussian_filter(field, sigma=sigma, mode="reflect")
    peak = np.abs(field).max()
    if peak > 0:
        field /= peak
    return field


def _gradient(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Random-direction linear gradient in [0, 1]."""
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    theta = rng.uniform(0.0, 2.0 * np.pi)
    ramp = np.cos(theta) * xx / max(cols - 1, 1) + np.sin(theta) * yy / max(
        rows - 1, 1
    )
    ramp -= ramp.min()
    peak = ramp.max()
    return ramp / peak if peak > 0 else ramp


def _blobs(
    rng: np.random.Generator, shape: Tuple[int, int], count: int
) -> np.ndarray:
    """Sum of random Gaussian blobs, normalised to [0, 1]."""
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    field = np.zeros(shape, dtype=float)
    for _ in range(count):
        cy = rng.uniform(0, rows)
        cx = rng.uniform(0, cols)
        sy = rng.uniform(rows / 20, rows / 4)
        sx = rng.uniform(cols / 20, cols / 4)
        amp = rng.uniform(-1.0, 1.0)
        field += amp * np.exp(
            -(((yy - cy) / sy) ** 2 + ((xx - cx) / sx) ** 2) / 2.0
        )
    field -= field.min()
    peak = field.max()
    return field / peak if peak > 0 else field


def _regions(
    rng: np.random.Generator, shape: Tuple[int, int], count: int
) -> np.ndarray:
    """Flat polygon-ish regions delimited by random half-planes (hard edges)."""
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    field = np.full(shape, 0.5)
    for _ in range(count):
        theta = rng.uniform(0.0, 2.0 * np.pi)
        offset = rng.uniform(0.2, 0.8)
        level = rng.uniform(0.0, 1.0)
        side = (
            np.cos(theta) * xx / max(cols - 1, 1)
            + np.sin(theta) * yy / max(rows - 1, 1)
        ) > offset
        field = np.where(side, 0.6 * field + 0.4 * level, field)
    return field


def _texture(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Quasi-periodic sinusoidal texture in [-1, 1]."""
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    fx = rng.uniform(2.0, 12.0)
    fy = rng.uniform(2.0, 12.0)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    return np.sin(2 * np.pi * (fx * xx / cols + fy * yy / rows) + phase)


def synthetic_image(
    index: int, shape: Tuple[int, int] = DEFAULT_SHAPE
) -> np.ndarray:
    """Return benchmark image ``index`` as a ``uint8`` array of ``shape``.

    The same index always yields the same image.  Scene composition varies
    with the index so the dataset spans smooth, textured and edge-heavy
    content, mimicking the variety of a natural-image benchmark set.
    """
    if index < 0:
        raise ValueError("image index must be non-negative")
    rng = ensure_rng(0xA0A0 + index)
    base = 0.45 * _gradient(rng, shape) + 0.55 * _blobs(rng, shape, count=6)
    base = 0.7 * base + 0.3 * _regions(rng, shape, count=4)
    base += 0.12 * _texture(rng, shape) * _smooth_noise(rng, shape, sigma=24)
    base += 0.10 * _smooth_noise(rng, shape, sigma=6)
    base += 0.03 * _smooth_noise(rng, shape, sigma=1.2)
    base -= base.min()
    peak = base.max()
    if peak > 0:
        base /= peak
    return np.clip(np.round(base * 255.0), 0, 255).astype(np.uint8)


def benchmark_images(
    count: int = 24, shape: Tuple[int, int] = DEFAULT_SHAPE
) -> List[np.ndarray]:
    """Return the first ``count`` benchmark images (paper uses 24)."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [synthetic_image(i, shape) for i in range(count)]
