"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised when an approximate-circuit model is misused or misconfigured."""


class NetlistError(ReproError):
    """Raised for malformed gate-level netlists (cycles, dangling nets...)."""


class SynthesisError(ReproError):
    """Raised when the synthesis substitute cannot process a design."""


class LibraryError(ReproError):
    """Raised for component-library problems (unknown op, empty library...)."""


class AcceleratorError(ReproError):
    """Raised for malformed accelerator dataflow graphs or configurations."""


class ModelError(ReproError):
    """Raised when an ML model is used before fit or fed invalid shapes."""


class DSEError(ReproError):
    """Raised for design-space-exploration misconfiguration."""


class BudgetExceededError(DSEError):
    """Raised when a model-call batch would overdraw an evaluation budget."""


class WorkloadError(ReproError):
    """Raised for unknown or misdeclared workload-registry entries."""


class StoreError(ReproError):
    """Raised for persistent-experiment-store problems (unknown run...)."""


class ValidationError(ReproError, ValueError):
    """Raised for invalid user-supplied settings (env vars, CLI knobs).

    Derives from :class:`ValueError` too, so call sites that historically
    catch ``ValueError`` around knob parsing keep working.
    """
