"""Budget-exact, strategy-unifying, parallel design-space search.

The paper runs one hill climber at a time; this package scales the
search layer into a *portfolio*: every explorer in the repository
(Algorithm 1 hill climbing, NSGA-II, random sampling, capped exhaustive
enumeration) behind one :class:`~repro.search.strategies.SearchStrategy`
interface, metered by a shared
:class:`~repro.core.budget.EvaluationBudget` so reported evaluation
counts are exact by construction, and executed as parallel islands by
:class:`~repro.search.portfolio.PortfolioRunner` with periodic archive
merging, migration, and experiment-store checkpoints (``repro runs
resume`` continues interrupted searches).

:mod:`~repro.search.distributed` lifts the same rounds onto a
store-backed work queue: ``repro search --distributed`` publishes each
round's island tasks as leased ``work-item`` artifacts and detached
``repro search-worker`` processes — local or remote, any mix —
execute them, with bit-identical fronts for any topology.
"""

from repro.core.budget import (
    EvaluationBudget,
    MeteredEstimator,
)
from repro.errors import BudgetExceededError
from repro.search.distributed import (
    DistributedExecutor,
    run_worker,
    service_once,
)
from repro.search.portfolio import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    IslandReport,
    PortfolioResult,
    PortfolioRunner,
    analyze_front,
)
from repro.search.strategies import (
    STRATEGIES,
    ExhaustiveStrategy,
    HillClimbStrategy,
    Nsga2Strategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "BudgetExceededError",
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "DistributedExecutor",
    "EvaluationBudget",
    "ExhaustiveStrategy",
    "HillClimbStrategy",
    "IslandReport",
    "MeteredEstimator",
    "Nsga2Strategy",
    "PortfolioResult",
    "PortfolioRunner",
    "RandomStrategy",
    "STRATEGIES",
    "SearchStrategy",
    "analyze_front",
    "make_strategy",
    "run_worker",
    "service_once",
]
