"""One interface over every search algorithm in the repository.

A :class:`SearchStrategy` runs some explorer — the paper's hill climber
(Algorithm 1), NSGA-II, random sampling or capped exhaustive
enumeration — against a shared
:class:`~repro.core.budget.EvaluationBudget` and returns a
:class:`~repro.core.dse.DSEResult` whose ``evaluations`` equals the
exact number of configurations sent to the estimation models.  The
uniform surface is what lets the portfolio runner treat islands
interchangeably:

* ``budget`` — the island's slice of the global evaluation budget; the
  strategy may not issue more model calls than it allows.
* ``archive`` — a warm-start Pareto archive in *minimised* objective
  space (``(-qor, cost)``); strategies that climb an archive continue
  from it.
* ``seeds`` — configurations worth starting from (the merged portfolio
  front); population strategies inject them into their initial
  population.
* ``state`` — a JSON-serialisable dict the runner persists between
  rounds and checkpoints to the experiment store (e.g. the NSGA-II
  population, the exhaustive scan offset).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.budget import EvaluationBudget
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.dse import (
    DSEResult,
    exhaustive_search,
    heuristic_pareto_construction,
    random_sampling,
)
from repro.core.modeling import EstimationModel
from repro.core.nsga2 import nsga2_search
from repro.core.pareto import ParetoArchive
from repro.errors import DSEError
from repro.utils.rng import RngLike


class SearchStrategy(ABC):
    """Protocol every explorer implements (see module docstring)."""

    #: Registry name ("hill", "nsga2", ...); set by subclasses.
    name: str = ""

    def _finite_remaining(self, budget: EvaluationBudget) -> int:
        """The budget's remaining allowance; rejects unlimited budgets.

        Strategies size their work from the remaining budget, so an
        uncapped budget would mean an unbounded sample draw or an
        endless climb — fail loudly instead.
        """
        if budget.total is None:
            raise DSEError(
                f"the {self.name!r} strategy needs a finite "
                "evaluation budget"
            )
        return budget.grant(budget.total)

    @abstractmethod
    def run(
        self,
        space: ConfigurationSpace,
        qor_model: EstimationModel,
        hw_model: EstimationModel,
        budget: EvaluationBudget,
        rng: RngLike = 0,
        archive: Optional[ParetoArchive] = None,
        seeds: Optional[Sequence[Configuration]] = None,
        state: Optional[Dict] = None,
    ) -> DSEResult:
        """Explore until the budget is exhausted; exact accounting."""

    @property
    def spec(self) -> str:
        """Round-trippable textual form (checkpoint identity)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.spec!r}>"


class HillClimbStrategy(SearchStrategy):
    """The paper's Algorithm 1 — Pareto-archive stochastic hill climbing."""

    name = "hill"

    def __init__(self, stagnation_limit: int = 50, batch_size: int = 64):
        self.stagnation_limit = stagnation_limit
        self.batch_size = batch_size

    @property
    def spec(self) -> str:
        return (
            f"hill:stagnation_limit={self.stagnation_limit},"
            f"batch_size={self.batch_size}"
        )

    def run(self, space, qor_model, hw_model, budget, rng=0,
            archive=None, seeds=None, state=None) -> DSEResult:
        self._finite_remaining(budget)
        return heuristic_pareto_construction(
            space,
            qor_model,
            hw_model,
            stagnation_limit=self.stagnation_limit,
            rng=rng,
            batch_size=self.batch_size,
            budget=budget,
            archive=archive,
        )


class Nsga2Strategy(SearchStrategy):
    """NSGA-II islands; population persists across rounds via ``state``."""

    name = "nsga2"

    def __init__(
        self,
        population_size: int = 40,
        crossover_prob: float = 0.9,
        mutation_prob: float = 0.2,
    ):
        if population_size < 4 or population_size % 2:
            raise DSEError("population_size must be an even number >= 4")
        self.population_size = population_size
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob

    @property
    def spec(self) -> str:
        return (
            f"nsga2:population_size={self.population_size},"
            f"crossover_prob={self.crossover_prob},"
            f"mutation_prob={self.mutation_prob}"
        )

    def run(self, space, qor_model, hw_model, budget, rng=0,
            archive=None, seeds=None, state=None) -> DSEResult:
        remaining = self._finite_remaining(budget)
        # Shrink the population so at least one generation fits the
        # slice; a slice too small for any population falls back to
        # random sampling rather than wasting the budget.
        pop = min(self.population_size, (remaining // 2) & ~1)
        if pop < 4:
            return random_sampling(
                space, qor_model, hw_model,
                max_evaluations=max(1, remaining), rng=rng,
                budget=budget,
            )
        generations = max(1, remaining // pop - 1)
        merged_seeds: List[Configuration] = []
        if state and state.get("population"):
            merged_seeds += [tuple(c) for c in state["population"]]
        if seeds:
            known = set(merged_seeds)
            merged_seeds += [
                tuple(c) for c in seeds if tuple(c) not in known
            ]
        result = nsga2_search(
            space,
            qor_model,
            hw_model,
            population_size=pop,
            generations=generations,
            crossover_prob=self.crossover_prob,
            mutation_prob=self.mutation_prob,
            rng=rng,
            budget=budget,
            seeds=merged_seeds or None,
        )
        if state is not None:
            state["population"] = [list(c) for c in result.configs]
        return result


class RandomStrategy(SearchStrategy):
    """Random-sampling baseline; spends its whole slice in one batch."""

    name = "random"

    def run(self, space, qor_model, hw_model, budget, rng=0,
            archive=None, seeds=None, state=None) -> DSEResult:
        return random_sampling(
            space, qor_model, hw_model,
            max_evaluations=max(1, self._finite_remaining(budget)),
            rng=rng,
            budget=budget,
        )


class ExhaustiveStrategy(SearchStrategy):
    """Budget-capped exhaustive scan; ``state`` carries the scan offset."""

    name = "exhaustive"

    def __init__(self, batch_size: int = 100_000):
        self.batch_size = batch_size

    @property
    def spec(self) -> str:
        return f"exhaustive:batch_size={self.batch_size}"

    def run(self, space, qor_model, hw_model, budget, rng=0,
            archive=None, seeds=None, state=None) -> DSEResult:
        offset = int(state.get("offset", 0)) if state else 0
        total = int(space.size())
        if offset >= total:
            # Space fully scanned in earlier rounds: nothing left to
            # evaluate and nothing new to contribute (echoing the
            # shared archive here would misattribute the other
            # islands' work to this one).
            return DSEResult(
                configs=[], points=np.empty((0, 2)),
                evaluations=0, inserts=0, restarts=0,
            )
        result = exhaustive_search(
            space, qor_model, hw_model,
            batch_size=self.batch_size, budget=budget, offset=offset,
        )
        if state is not None:
            state["offset"] = offset + result.evaluations
        return result


#: Registry of strategy names -> classes.
STRATEGIES = {
    cls.name: cls
    for cls in (
        HillClimbStrategy,
        Nsga2Strategy,
        RandomStrategy,
        ExhaustiveStrategy,
    )
}


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def make_strategy(spec: str) -> SearchStrategy:
    """Build a strategy from ``"name"`` or ``"name:key=val,key=val"``."""
    name, _, args = spec.partition(":")
    name = name.strip().lower()
    if name not in STRATEGIES:
        raise DSEError(
            f"unknown search strategy {name!r}; "
            f"known: {sorted(STRATEGIES)}"
        )
    kwargs = {}
    if args.strip():
        for item in args.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise DSEError(
                    f"malformed strategy argument {item!r} in {spec!r}"
                )
            kwargs[key.strip()] = _parse_value(value.strip())
    try:
        return STRATEGIES[name](**kwargs)
    except TypeError as exc:
        raise DSEError(f"bad arguments for {name!r}: {exc}") from None
