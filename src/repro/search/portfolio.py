"""Parallel portfolio exploration with exact budget accounting.

A *portfolio* runs N strategy islands (hill climber, NSGA-II, random
sampling, capped exhaustive — any mix) over the same configuration
space and estimation models.  The global evaluation budget is split
into per-island slices each round, every island spends its slice under
its own :class:`~repro.core.budget.EvaluationBudget` (so no model call
anywhere goes uncounted), and after each round the island fronts are
merged through one vectorised
:meth:`~repro.core.pareto.ParetoArchive.insert_many` pass.  The merged
front migrates back into the islands for the next round — the hill
climbers restart from it, NSGA-II injects it into its population.

Islands are independent, so a round executes them across worker
processes (``workers``, defaulting to the ``REPRO_WORKERS``
convention); each island owns a spawned RNG whose state is carried
between rounds, which makes the result **bit-identical for any
``workers`` setting** and lets a checkpoint freeze the whole search.

Checkpoints: with a ``store``, every completed round writes a ``search``
artifact (merged front, per-island RNG + strategy state, spend) and a
run-ledger manifest, so ``repro runs resume <run-id>`` continues an
interrupted search exactly where it stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.budget import EvaluationBudget
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.dse import DSEResult
from repro.core.runtime import default_workers, validate_workers
from repro.core.modeling import EstimationModel
from repro.core.pareto import ParetoArchive
from repro.errors import DSEError, StoreError
from repro.search.strategies import SearchStrategy, make_strategy
from repro.telemetry import get_metrics, maybe_span
from repro.utils.rng import spawn_rngs

#: Artifact kind of portfolio checkpoints in the experiment store.
CHECKPOINT_KIND = "search"

#: Checkpoint format version (bump on incompatible schema changes).
CHECKPOINT_VERSION = 1


@dataclass
class IslandReport:
    """Per-(round, island) accounting."""

    round: int
    island: int
    strategy: str
    evaluations: int
    inserts: int
    restarts: int
    front_size: int
    seconds: float


@dataclass
class PortfolioResult:
    """Merged outcome of a portfolio run.

    ``points`` rows are ``(estimated QoR, estimated cost)`` in natural
    orientation (QoR higher-is-better), like
    :class:`~repro.core.dse.DSEResult`.  ``evaluations`` is the exact
    total number of configurations the islands sent to the models.
    """

    configs: List[Configuration]
    points: np.ndarray
    evaluations: int
    max_evaluations: int
    rounds: int
    islands: List[IslandReport] = field(default_factory=list)
    run_id: Optional[str] = None
    resumed_from: Optional[str] = None

    def __len__(self) -> int:
        return len(self.configs)

    def as_dse_result(self) -> DSEResult:
        """View the merged front as a plain :class:`DSEResult`."""
        return DSEResult(
            configs=list(self.configs),
            points=self.points.copy(),
            evaluations=self.evaluations,
            inserts=sum(r.inserts for r in self.islands),
            restarts=sum(r.restarts for r in self.islands),
        )


def analyze_front(
    result: "PortfolioResult",
    space: ConfigurationSpace,
    engine,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Exact analysis of a merged front in one batched engine pass.

    Search fronts carry *model-estimated* objectives; before acting on
    one (writing a report, picking a deployment point) the front should
    be re-measured with the real evaluation path.  This helper funnels
    every front configuration through a single
    :meth:`~repro.core.engine.EvaluationEngine.evaluate_many` call — so
    the whole front rides one configuration-axis batched pass instead
    of a per-config loop — and returns, per configuration, the model
    estimates next to the measured values:

    ``[{"config", "estimated_qor", "estimated_cost", "qor", "area",
    "delay", "power"}, ...]`` in front order.
    """
    if len(result.configs) != result.points.shape[0]:
        raise DSEError("front configs and points are out of sync")
    measured = engine.evaluate_many(
        space, result.configs, workers=workers
    )
    return [
        {
            "config": tuple(int(g) for g in config),
            "estimated_qor": float(result.points[i, 0]),
            "estimated_cost": float(result.points[i, 1]),
            "qor": real.qor,
            "area": real.area,
            "delay": real.delay,
            "power": real.power,
        }
        for i, (config, real) in enumerate(
            zip(result.configs, measured)
        )
    ]


def _split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integers differing by at most 1."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _run_island(context, task):
    """Run one island for one round (a shared-runtime task).

    All RNG state travels inside ``task`` (restored explicitly below),
    so execution is bit-identical in-process, forked, or spawned.
    """
    space, qor_model, hw_model, strategies = context
    idx, rng_state, front_points, front_configs, state, slice_n = task
    strategy = strategies[idx]
    gen = np.random.default_rng(0)
    gen.bit_generator.state = rng_state
    archive = ParetoArchive(n_objectives=2)
    if len(front_configs):
        minimised = np.stack(
            [-front_points[:, 0], front_points[:, 1]], axis=1
        )
        archive.insert_many(minimised, front_configs)
    budget = EvaluationBudget(slice_n)
    start = time.perf_counter()
    result = strategy.run(
        space,
        qor_model,
        hw_model,
        budget=budget,
        rng=gen,
        archive=archive,
        seeds=front_configs,
        state=state,
    )
    seconds = time.perf_counter() - start
    return idx, result, gen.bit_generator.state, state, seconds


class PortfolioRunner:
    """Run a portfolio of search islands; see the module docstring.

    ``strategies`` accepts :class:`SearchStrategy` objects or spec
    strings (``"hill"``, ``"nsga2:population_size=24"``, ...); one
    island per entry.  ``workers`` bounds the process count per round
    (``None`` falls back to ``REPRO_WORKERS``, then serial); results do
    not depend on it.

    ``executor`` swaps the in-process round execution for a
    :class:`~repro.search.distributed.DistributedExecutor`: island
    tasks go through the store-backed work queue and detached workers
    (``repro search-worker``) execute them.  The front is bit-identical
    either way — tasks carry their whole RNG/strategy state and merge
    in island order regardless of which worker answered.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        qor_model: EstimationModel,
        hw_model: EstimationModel,
        strategies: Sequence[Union[str, SearchStrategy]] = (
            "hill", "nsga2", "random",
        ),
        rounds: int = 2,
        seed: int = 0,
        workers: Optional[int] = None,
        store=None,
        label: str = "portfolio",
        run_params: Optional[Dict] = None,
        executor=None,
    ):
        if not strategies:
            raise DSEError("a portfolio needs at least one strategy")
        if rounds < 1:
            raise DSEError("rounds must be >= 1")
        self.space = space
        self.qor_model = qor_model
        self.hw_model = hw_model
        self.strategies: List[SearchStrategy] = [
            s if isinstance(s, SearchStrategy) else make_strategy(s)
            for s in strategies
        ]
        self.rounds = rounds
        self.seed = seed
        if workers is None:
            self.workers = default_workers()
        else:
            self.workers = validate_workers(workers)
        self.store = store
        self.label = label
        self.run_params = dict(run_params or {})
        self.executor = executor

    # -- checkpoint plumbing -------------------------------------------------

    @staticmethod
    def load_checkpoint(store, run_id: str) -> Dict:
        """The latest checkpoint payload of a recorded search run."""
        from repro.store import RunLedger

        manifest = RunLedger(store).get(run_id)
        if manifest.get("kind") != "search":
            raise StoreError(
                f"run {run_id!r} is a {manifest.get('kind')!r} run, "
                "not a search"
            )
        ref = (manifest.get("extra") or {}).get("checkpoint")
        if not ref:
            raise StoreError(f"run {run_id!r} has no search checkpoint")
        payload = store.get(ref["kind"], ref["key"])
        if payload is None:
            raise StoreError(
                f"checkpoint artifact of run {run_id!r} is gone "
                "(garbage-collected?)"
            )
        return payload

    def _checkpoint_payload(
        self,
        round_done: int,
        max_evaluations: int,
        spent: int,
        merged: ParetoArchive,
        rng_states: List[Dict],
        states: List[Dict],
    ) -> Dict:
        points = merged.points
        points[:, 0] = -points[:, 0]  # back to natural orientation
        return {
            "version": CHECKPOINT_VERSION,
            "label": self.label,
            "seed": self.seed,
            "round": round_done,
            "rounds": self.rounds,
            "max_evaluations": max_evaluations,
            "spent": spent,
            "strategies": [s.spec for s in self.strategies],
            "front": {
                "configs": [list(c) for c in merged.payloads],
                "points": points.tolist(),
            },
            "islands": [
                {"rng_state": rng_states[i], "state": states[i]}
                for i in range(len(self.strategies))
            ],
        }

    def _record(
        self,
        run_id: str,
        payload: Dict,
        stages: List[Dict],
        status: str,
        resumed_from: Optional[str],
        metrics_mark: Optional[Dict] = None,
    ) -> None:
        from repro.store import RunLedger, content_hash

        key = content_hash({"run": run_id, "label": self.label})
        ref = self.store.put(CHECKPOINT_KIND, key, payload)
        extra = {
            "checkpoint": {"kind": ref.kind, "key": ref.key},
            "front_size": len(payload["front"]["configs"]),
            "evaluations": payload["spent"],
            "max_evaluations": payload["max_evaluations"],
            "round": payload["round"],
            "rounds": payload["rounds"],
            "metrics": get_metrics().snapshot(since=metrics_mark),
        }
        if resumed_from:
            extra["resumed_from"] = resumed_from
        RunLedger(self.store).record(
            run_id,
            kind="search",
            label=self.label,
            params=self.run_params,
            config_hash=content_hash(
                {
                    "strategies": payload["strategies"],
                    "seed": self.seed,
                    "rounds": self.rounds,
                    "max_evaluations": payload["max_evaluations"],
                }
            ),
            stages=stages,
            seed=self.seed,
            status=status,
            extra=extra,
        )

    # -- execution -----------------------------------------------------------

    def run(
        self,
        max_evaluations: int,
        resume_from: Optional[str] = None,
    ) -> PortfolioResult:
        """Spend ``max_evaluations`` model calls across the islands.

        ``resume_from`` names a checkpointed search run in the store;
        the portfolio restores its merged front, per-island RNG and
        strategy state, and continues with the *remaining* rounds and
        budget recorded there (``max_evaluations`` is then taken from
        the checkpoint, not the argument).
        """
        if max_evaluations < 1:
            raise DSEError("max_evaluations must be >= 1")
        n_islands = len(self.strategies)
        merged = ParetoArchive(n_objectives=2)
        states: List[Dict] = [{} for _ in range(n_islands)]
        # One extra generator drives the final-round top-up sampler.
        *generators, topup_gen = spawn_rngs(self.seed, n_islands + 1)
        spent = 0
        start_round = 0
        reports: List[IslandReport] = []

        if resume_from is not None:
            if self.store is None:
                raise StoreError("resume requires an experiment store")
            payload = self.load_checkpoint(self.store, resume_from)
            specs = [s.spec for s in self.strategies]
            if payload["strategies"] != specs:
                raise StoreError(
                    "checkpoint strategies "
                    f"{payload['strategies']} do not match this "
                    f"portfolio ({specs})"
                )
            max_evaluations = int(payload["max_evaluations"])
            spent = int(payload["spent"])
            start_round = int(payload["round"])
            self.rounds = int(payload["rounds"])
            front = payload["front"]
            configs = [tuple(int(g) for g in c)
                       for c in front["configs"]]
            if configs:
                points = np.asarray(front["points"], dtype=float)
                minimised = np.stack(
                    [-points[:, 0], points[:, 1]], axis=1
                )
                merged.insert_many(minimised, configs)
            for i, island in enumerate(payload["islands"]):
                generators[i].bit_generator.state = island["rng_state"]
                states[i] = island["state"]

        run_id = None
        if self.store is not None:
            from repro.store import RunLedger

            run_id = RunLedger.new_run_id()

        if self.executor is not None:
            if self.store is None or run_id is None:
                raise StoreError(
                    "distributed search requires an experiment store "
                    "(--store or REPRO_STORE_DIR)"
                )
            self.executor.bind(
                self.store,
                run_id,
                (
                    self.space, self.qor_model, self.hw_model,
                    self.strategies,
                ),
            )

        metrics = get_metrics()
        metrics_mark = metrics.mark()
        stages: List[Dict] = []
        spent_box = [spent]
        try:
            self._run_rounds(
                start_round, max_evaluations, spent_box,
                merged, generators, topup_gen, states, reports,
                stages, run_id, resume_from, metrics, metrics_mark,
            )
        except BaseException:
            if self.executor is not None:
                self.executor.finish("failed")
            raise
        if self.executor is not None:
            self.executor.finish("done")
        spent = spent_box[0]

        if run_id is not None and not stages:
            # Nothing ran (checkpoint already complete): the restored
            # run stays the authoritative manifest.
            run_id = resume_from
        points = merged.points
        points[:, 0] = -points[:, 0]
        return PortfolioResult(
            configs=list(merged.payloads),
            points=points,
            evaluations=spent,
            max_evaluations=max_evaluations,
            rounds=self.rounds,
            islands=reports,
            run_id=run_id,
            resumed_from=resume_from,
        )

    def _run_rounds(
        self,
        start_round: int,
        max_evaluations: int,
        spent_box: List[int],
        merged: ParetoArchive,
        generators: List,
        topup_gen,
        states: List[Dict],
        reports: List[IslandReport],
        stages: List[Dict],
        run_id: Optional[str],
        resume_from: Optional[str],
        metrics,
        metrics_mark,
    ) -> None:
        """The round loop of :meth:`run` (separated for executor cleanup)."""
        n_islands = len(self.strategies)
        spent = spent_box[0]
        for round_i in range(start_round, self.rounds):
            remaining = max_evaluations - spent
            if remaining <= 0:
                break
            rounds_left = self.rounds - round_i
            round_total = (
                remaining // rounds_left if rounds_left > 1 else remaining
            ) or remaining
            slices = _split_evenly(round_total, n_islands)
            front_points = merged.points
            front_points[:, 0] = -front_points[:, 0]  # natural
            front_configs = list(merged.payloads)
            tasks = [
                (
                    i,
                    generators[i].bit_generator.state,
                    front_points,
                    front_configs,
                    states[i],
                    slices[i],
                )
                for i in range(n_islands)
                if slices[i] > 0
            ]
            metrics.inc("search.rounds")
            if round_i > start_round and front_configs:
                # The previous round's merged front migrated back into
                # every island that runs this round.
                metrics.inc(
                    "search.migrations",
                    len(front_configs) * len(tasks),
                )
            round_start = time.perf_counter()
            with maybe_span(
                "search.round", cat="search",
                args={"round": round_i, "islands": len(tasks)},
            ):
                outcomes = self._execute(tasks, round_i)
            for idx, result, rng_state, state, seconds in outcomes:
                generators[idx].bit_generator.state = rng_state
                states[idx] = state
                spent += result.evaluations
                if len(result.configs):
                    minimised = np.stack(
                        [-result.points[:, 0], result.points[:, 1]],
                        axis=1,
                    )
                    merged.insert_many(minimised, result.configs)
                reports.append(
                    IslandReport(
                        round=round_i,
                        island=idx,
                        strategy=self.strategies[idx].name,
                        evaluations=result.evaluations,
                        inserts=result.inserts,
                        restarts=result.restarts,
                        front_size=len(result.configs),
                        seconds=seconds,
                    )
                )
            if round_i + 1 >= self.rounds and spent < max_evaluations:
                # Strategies with quantised spends (NSGA-II generations)
                # can leave a remainder; budget-matched comparisons need
                # the portfolio to spend *exactly* the requested budget,
                # so the crumbs go to one random-sampling top-up.
                from repro.search.strategies import RandomStrategy

                start = time.perf_counter()
                result = RandomStrategy().run(
                    self.space, self.qor_model, self.hw_model,
                    budget=EvaluationBudget(max_evaluations - spent),
                    rng=topup_gen,
                )
                spent += result.evaluations
                minimised = np.stack(
                    [-result.points[:, 0], result.points[:, 1]], axis=1
                )
                merged.insert_many(minimised, result.configs)
                reports.append(
                    IslandReport(
                        round=round_i,
                        island=n_islands,
                        strategy="random-topup",
                        evaluations=result.evaluations,
                        inserts=result.inserts,
                        restarts=0,
                        front_size=len(result.configs),
                        seconds=time.perf_counter() - start,
                    )
                )
            round_seconds = time.perf_counter() - round_start
            if self.store is not None:
                payload = self._checkpoint_payload(
                    round_i + 1, max_evaluations, spent, merged.copy(),
                    [g.bit_generator.state for g in generators],
                    states,
                )
                stages.append(
                    {
                        "name": f"round_{round_i}",
                        "seconds": round(round_seconds, 6),
                        "cache": "miss",
                        "evaluations": spent,
                    }
                )
                status = (
                    "complete" if round_i + 1 >= self.rounds
                    else "partial"
                )
                self._record(
                    run_id, payload, stages, status, resume_from,
                    metrics_mark=metrics_mark,
                )
            metrics.set_gauge(
                "search.front_size", len(merged.payloads)
            )
        spent_box[0] = spent

    def _execute(self, tasks, round_i: int = 0) -> List:
        """Run the round's island tasks — runtime pool or work queue."""
        if self.executor is not None:
            return self.executor.run_round(round_i, tasks)
        from repro.core.runtime import get_runtime

        context = (
            self.space, self.qor_model, self.hw_model, self.strategies,
        )
        workers = self.workers
        if workers is not None:
            workers = min(workers, len(tasks))
        return get_runtime().map(
            _run_island,
            tasks,
            context=context,
            workers=workers,
            label="portfolio-islands",
        )
