"""Distributed portfolio search: islands as store-leased work items.

The portfolio runner's rounds are synchronous barriers, so the unit of
distribution is one *(round, island)* task.  The driver publishes each
round's tasks as ``work-item`` artifacts in the experiment store,
detached workers lease and execute them with the very same
:func:`~repro.search.portfolio._run_island` function the in-process
runner uses, and the driver merges the ``work-result`` artifacts in
island order — which keeps the paper's **bit-identical for any
topology** contract: every RNG state travels inside the task, every
float crosses the wire through exact JSON repr round-trips, and the
merge order never depends on who computed what, or when.

Coordination is store-native (no extra channel — any
:class:`~repro.store.backends.StoreBackend`, local or remote, works):

* ``work-queue``     — one document per search run (status open/done).
* ``search-context`` — the pickled ``(space, qor_model, hw_model,
  strategies)`` bundle workers execute against.
* ``work-item``      — one per (round, island): encoded task.
* ``work-lease``     — best-effort mutual exclusion with expiry
  (``REPRO_LEASE_TTL``, default 30 s).  A crashed worker's lease
  lapses and another worker re-executes the item; duplicate execution
  is harmless because tasks are deterministic and results are
  content-keyed, so the driver merges one result exactly once.
* ``work-result``    — the encoded island outcome.

None of these kinds is in :data:`~repro.store.artifacts.ArtifactStore.
SHARED_KINDS` and no manifest references them, so ``repro runs gc``
sweeps any queue a crashed driver left behind.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dse import DSEResult
from repro.errors import StoreError
from repro.store.hashing import content_hash
from repro.telemetry import get_metrics
from repro.utils.validation import check_env_float

#: Artifact kinds of the store-backed work queue.
QUEUE_KIND = "work-queue"
ITEM_KIND = "work-item"
LEASE_KIND = "work-lease"
RESULT_KIND = "work-result"
CONTEXT_KIND = "search-context"

#: Environment knob: seconds until an unrefreshed lease lapses.
LEASE_TTL_ENV = "REPRO_LEASE_TTL"
DEFAULT_LEASE_TTL = 30.0


def lease_ttl() -> float:
    """Resolve the lease TTL: ``REPRO_LEASE_TTL`` (validated), else 30 s."""
    raw = os.environ.get(LEASE_TTL_ENV)
    if raw is None:
        return DEFAULT_LEASE_TTL
    return check_env_float(raw, source=LEASE_TTL_ENV, minimum=0.1)


# -- keys -------------------------------------------------------------------


def queue_key(queue_id: str) -> str:
    return content_hash({"work-queue": queue_id})


def context_key(queue_id: str) -> str:
    return content_hash({"search-context": queue_id})


def item_key(queue_id: str, round_i: int, island: int) -> str:
    return content_hash(
        {"work-item": queue_id, "round": round_i, "island": island}
    )


def result_key(item: str) -> str:
    return content_hash({"work-result": item})


def lease_key(item: str) -> str:
    return content_hash({"work-lease": item})


# -- task/outcome codecs ----------------------------------------------------
#
# JSON keeps floats exact (repr round-trip) and Python ints unbounded,
# so PCG64 state dicts and objective points survive the wire
# bit-for-bit; configurations are re-tupled on decode, matching what
# the checkpoint resume path already does.


def encode_task(task) -> Dict:
    idx, rng_state, front_points, front_configs, state, slice_n = task
    return {
        "island": idx,
        "rng_state": rng_state,
        "front_points": np.asarray(front_points, dtype=float).tolist(),
        "front_configs": [list(c) for c in front_configs],
        "state": state,
        "slice": slice_n,
    }


def decode_task(doc: Dict) -> Tuple:
    points = np.asarray(doc["front_points"], dtype=float)
    if points.size == 0:
        points = points.reshape(0, 2)
    configs = [
        tuple(int(g) for g in c) for c in doc["front_configs"]
    ]
    return (
        doc["island"],
        doc["rng_state"],
        points,
        configs,
        doc["state"],
        doc["slice"],
    )


def encode_outcome(outcome) -> Dict:
    idx, result, rng_state, state, seconds = outcome
    return {
        "island": idx,
        "rng_state": rng_state,
        "state": state,
        "seconds": seconds,
        "result": {
            "configs": [list(c) for c in result.configs],
            "points": np.asarray(
                result.points, dtype=float
            ).tolist(),
            "evaluations": result.evaluations,
            "inserts": result.inserts,
            "restarts": result.restarts,
        },
    }


def decode_outcome(doc: Dict) -> Tuple:
    raw = doc["result"]
    points = np.asarray(raw["points"], dtype=float)
    if points.size == 0:
        points = points.reshape(0, 2)
    result = DSEResult(
        configs=[
            tuple(int(g) for g in c) for c in raw["configs"]
        ],
        points=points,
        evaluations=int(raw["evaluations"]),
        inserts=int(raw["inserts"]),
        restarts=int(raw["restarts"]),
    )
    return (
        doc["island"],
        result,
        doc["rng_state"],
        doc["state"],
        doc["seconds"],
    )


# -- driver side ------------------------------------------------------------


class DistributedExecutor:
    """Round executor that fans island tasks out through the store.

    Plugs into :class:`~repro.search.portfolio.PortfolioRunner` via its
    ``executor`` argument; the runner binds it to the run's store and
    queue id, then calls :meth:`run_round` once per round and
    :meth:`finish` when the search ends (any mix of local and remote
    workers may be draining the queue meanwhile).
    """

    def __init__(
        self,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
        label: str = "search",
    ) -> None:
        if poll_interval <= 0:
            raise StoreError("poll_interval must be positive")
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.label = label
        self.store = None
        self.queue_id: Optional[str] = None

    def bind(self, store, queue_id: str, context) -> None:
        """Attach to ``store`` and publish the queue + worker context."""
        if store is None:
            raise StoreError(
                "distributed search requires an experiment store "
                "(--store or REPRO_STORE_DIR)"
            )
        self.store = store
        self.queue_id = queue_id
        store.put(CONTEXT_KIND, context_key(queue_id), context)
        store.put(
            QUEUE_KIND,
            queue_key(queue_id),
            {
                "version": 1,
                "queue": queue_id,
                "label": self.label,
                "status": "open",
                "context_key": context_key(queue_id),
                "created": time.time(),
            },
        )
        get_metrics().inc("search.distributed.queues")

    def run_round(self, round_i: int, tasks: List) -> List:
        """Publish one round's tasks; block until every result is in."""
        if self.store is None or self.queue_id is None:
            raise StoreError("executor is not bound to a store")
        metrics = get_metrics()
        pending: Dict[str, int] = {}
        for task in tasks:
            island = task[0]
            ikey = item_key(self.queue_id, round_i, island)
            self.store.put(
                ITEM_KIND,
                ikey,
                {
                    "version": 1,
                    "queue": self.queue_id,
                    "round": round_i,
                    "island": island,
                    "task": encode_task(task),
                },
            )
            pending[ikey] = island
            metrics.inc("search.distributed.items")
        outcomes: Dict[int, Tuple] = {}
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )
        while pending:
            for ikey in list(pending):
                doc = self.store.get(RESULT_KIND, result_key(ikey))
                if doc is None:
                    continue
                outcome = decode_outcome(doc["outcome"])
                outcomes[pending.pop(ikey)] = outcome
            if not pending:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise StoreError(
                    f"distributed round {round_i} timed out with "
                    f"{len(pending)} unfinished island(s) — are any "
                    "workers running?"
                )
            time.sleep(self.poll_interval)
        # Task submission order, exactly like the in-process runtime.
        return [outcomes[task[0]] for task in tasks]

    def finish(self, status: str = "done") -> None:
        """Close the queue and sweep its coordination artifacts."""
        if self.store is None or self.queue_id is None:
            return
        store, qid = self.store, self.queue_id
        for kind in (ITEM_KIND, RESULT_KIND, LEASE_KIND):
            for key in store.keys(kind):
                doc = store.get(kind, key)
                if doc and doc.get("queue") == qid:
                    store.delete(kind, key)
        store.delete(CONTEXT_KIND, context_key(qid))
        qdoc = store.get(QUEUE_KIND, queue_key(qid))
        if qdoc is not None:
            qdoc["status"] = status
            store.put(QUEUE_KIND, queue_key(qid), qdoc)
        self.store = None
        self.queue_id = None


# -- worker side ------------------------------------------------------------


def _acquire_lease(
    store, queue_id: str, item: str, worker_id: str, ttl: float
) -> bool:
    """Best-effort lease: write, re-read, check we won.

    Two workers racing on one fresh item can in principle both win —
    that only costs a duplicate (deterministic, content-keyed)
    execution, never a wrong result.  An expired lease counts as
    absent, which is how a crashed worker's item comes back.
    """
    metrics = get_metrics()
    key = lease_key(item)
    now = time.time()
    current = store.get(LEASE_KIND, key)
    if current is not None and current.get("expires", 0) > now:
        return False
    if current is not None:
        metrics.inc("search.lease.expired_taken")
    token = os.urandom(8).hex()
    store.put(
        LEASE_KIND,
        key,
        {
            "queue": queue_id,
            "item": item,
            "worker": worker_id,
            "token": token,
            "expires": now + ttl,
        },
    )
    check = store.get(LEASE_KIND, key)
    if check is None or check.get("token") != token:
        metrics.inc("search.lease.lost")
        return False
    metrics.inc("search.lease.acquired")
    return True


def _context_for(store, cache: Dict, queue_doc: Dict):
    qid = queue_doc["queue"]
    if qid not in cache:
        cache[qid] = store.get(
            CONTEXT_KIND, queue_doc["context_key"]
        )
    return cache[qid]


def service_once(
    store,
    contexts: Optional[Dict] = None,
    worker_id: str = "local",
    ttl: Optional[float] = None,
) -> int:
    """One scan over every open queue; returns items executed."""
    from repro.search.portfolio import _run_island

    if contexts is None:
        contexts = {}
    if ttl is None:
        ttl = lease_ttl()
    metrics = get_metrics()
    executed = 0
    for qkey in store.keys(QUEUE_KIND):
        queue_doc = store.get(QUEUE_KIND, qkey)
        if not queue_doc or queue_doc.get("status") != "open":
            continue
        qid = queue_doc["queue"]
        for ikey in store.keys(ITEM_KIND):
            doc = store.get(ITEM_KIND, ikey)
            if not doc or doc.get("queue") != qid:
                continue
            rkey = result_key(ikey)
            if store.get(RESULT_KIND, rkey) is not None:
                continue
            if not _acquire_lease(store, qid, ikey, worker_id, ttl):
                continue
            context = _context_for(store, contexts, queue_doc)
            if context is None:
                # The driver swept the queue between our scans.
                store.delete(LEASE_KIND, lease_key(ikey))
                continue
            outcome = _run_island(context, decode_task(doc["task"]))
            store.put(
                RESULT_KIND,
                rkey,
                {
                    "queue": qid,
                    "item": ikey,
                    "worker": worker_id,
                    "outcome": encode_outcome(outcome),
                },
            )
            store.delete(LEASE_KIND, lease_key(ikey))
            metrics.inc("search.worker.items")
            executed += 1
    return executed


def run_worker(
    store,
    poll: float = 0.5,
    idle_timeout: Optional[float] = None,
    max_items: Optional[int] = None,
    worker_id: Optional[str] = None,
) -> int:
    """Drain work queues until idle; returns total items executed.

    The loop services every open queue it can see, sleeping ``poll``
    seconds between empty scans.  It exits after ``idle_timeout``
    seconds without work (``None`` runs until killed) or once
    ``max_items`` items have been executed.
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    ttl = lease_ttl()
    contexts: Dict = {}
    total = 0
    idle_since = time.monotonic()
    while True:
        executed = service_once(
            store, contexts, worker_id=worker_id, ttl=ttl
        )
        total += executed
        if max_items is not None and total >= max_items:
            return total
        if executed:
            idle_since = time.monotonic()
            continue
        if (
            idle_timeout is not None
            and time.monotonic() - idle_since >= idle_timeout
        ):
            return total
        time.sleep(poll)
