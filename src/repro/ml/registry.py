"""Registry of learning engines — one per Table 3 row."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import ModelError
from repro.ml.base import Regressor
from repro.ml.boosting import AdaBoostRegressor, GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernel_ridge import KernelRidgeRegressor
from repro.ml.linear import (
    BayesianRidge,
    LarsRegressor,
    LassoRegressor,
    SGDRegressor,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.pls import PLSRegression
from repro.ml.trees import DecisionTreeRegressor

#: Table 3 engines, in the paper's row order.  Factories take a seed.
_ENGINES: Dict[str, Callable[[int], Regressor]] = {
    "Random Forest": lambda seed: RandomForestRegressor(
        n_estimators=100, max_features=0.7, rng=seed
    ),
    "Decision Tree": lambda seed: DecisionTreeRegressor(rng=seed),
    "K-Neighbors": lambda seed: KNeighborsRegressor(n_neighbors=5),
    "Bayesian Ridge": lambda seed: BayesianRidge(),
    "Partial least squares": lambda seed: PLSRegression(n_components=2),
    "Lasso": lambda seed: LassoRegressor(alpha=0.001),
    "Ada Boost": lambda seed: AdaBoostRegressor(
        n_estimators=50, max_depth=3, rng=seed
    ),
    "Least-angle": lambda seed: LarsRegressor(),
    "Gradient Boosting": lambda seed: GradientBoostingRegressor(
        n_estimators=100, learning_rate=0.1, max_depth=3, rng=seed
    ),
    "MLP neural network": lambda seed: MLPRegressor(
        hidden_layer_sizes=(100,), max_iter=60, rng=seed
    ),
    "Gaussian process": lambda seed: GaussianProcessRegressor(),
    "Kernel ridge": lambda seed: KernelRidgeRegressor(),
    "Stochastic Gradient Descent": lambda seed: SGDRegressor(
        max_iter=50, rng=seed
    ),
}


def default_engines() -> List[str]:
    """Engine names in the paper's Table 3 order."""
    return list(_ENGINES)


def make_engine(name: str, seed: int = 0) -> Regressor:
    """Instantiate a fresh engine by its Table 3 name."""
    if name not in _ENGINES:
        raise ModelError(
            f"unknown engine {name!r}; known: {sorted(_ENGINES)}"
        )
    return _ENGINES[name](seed)
