"""Train/test split helper."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def train_test_split(
    X,
    y,
    test_size: float = 0.5,
    rng: RngLike = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_test, y_train, y_test)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y row counts differ")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError("split leaves no training samples")
    order = ensure_rng(rng).permutation(n)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
