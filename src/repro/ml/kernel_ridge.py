"""Kernel ridge regression (RBF kernel)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.gaussian_process import _rbf


class KernelRidgeRegressor(Regressor):
    """Ridge regression in RBF feature space.

    ``gamma = 1 / n_features`` by default, as in sklearn — which, on
    unscaled inputs with very different feature magnitudes, washes most
    structure out of the kernel.
    """

    def __init__(self, alpha: float = 1.0, gamma: float = None):
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.gamma = gamma

    def _fit(self, X, y):
        gamma = self.gamma if self.gamma is not None else 1.0 / X.shape[1]
        self._length_scale = 1.0 / np.sqrt(2.0 * gamma)
        self._X = X
        K = _rbf(X, X, self._length_scale)
        K[np.diag_indices_from(K)] += self.alpha
        self._dual = np.linalg.solve(K, y)

    def _predict(self, X):
        Ks = _rbf(X, self._X, self._length_scale)
        return Ks @ self._dual
