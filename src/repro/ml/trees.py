"""CART regression tree.

Standard variance-reduction splitting with optional feature subsampling
(used by the ensemble engines).  The fitted tree is stored in flat arrays
so prediction is a vectorised level-by-level descent.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Regressor
from repro.utils.rng import RngLike, ensure_rng


class _TreeArrays:
    """Flat tree storage: children, split feature/threshold, leaf value."""

    def __init__(self):
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []

    def new_node(self, value: float) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return len(self.value) - 1

    def finalize(self):
        self.feature = np.asarray(self.feature, dtype=np.int64)
        self.threshold = np.asarray(self.threshold, dtype=np.float64)
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.value = np.asarray(self.value, dtype=np.float64)


def _best_split(X, y, features, min_samples_leaf):
    """Best (feature, threshold, sse_gain) over the candidate features."""
    n = y.size
    total_sum = y.sum()
    total_sq = float(y @ y)
    base_sse = total_sq - total_sum**2 / n
    best = (None, 0.0, 0.0)
    for j in features:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)[:-1]
        csq = np.cumsum(ys * ys)[:-1]
        left_n = np.arange(1, n)
        right_n = n - left_n
        sse = (
            (csq - csum**2 / left_n)
            + (total_sq - csq)
            - (total_sum - csum) ** 2 / right_n
        )
        valid = xs[1:] != xs[:-1]
        if min_samples_leaf > 1:
            valid &= (left_n >= min_samples_leaf) & (
                right_n >= min_samples_leaf
            )
        if not np.any(valid):
            continue
        sse = np.where(valid, sse, np.inf)
        k = int(np.argmin(sse))
        gain = base_sse - float(sse[k])
        if best[0] is None or gain > best[2]:
            threshold = 0.5 * (xs[k] + xs[k + 1])
            best = (j, threshold, gain)
    return best


class DecisionTreeRegressor(Regressor):
    """CART regressor (variance reduction, axis-aligned splits)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        rng: RngLike = 0,
    ):
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be in (0, 1]")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng

    def _fit(self, X, y):
        gen = ensure_rng(self.rng)
        d = X.shape[1]
        n_candidates = (
            d
            if self.max_features is None
            else max(1, int(round(self.max_features * d)))
        )
        tree = _TreeArrays()

        def grow(idx: np.ndarray, depth: int) -> int:
            ys = y[idx]
            node = tree.new_node(float(ys.mean()))
            if (
                idx.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(ys == ys[0])
            ):
                return node
            if n_candidates < d:
                features = gen.choice(d, size=n_candidates, replace=False)
            else:
                features = np.arange(d)
            j, threshold, gain = _best_split(
                X[idx], ys, features, self.min_samples_leaf
            )
            if j is None or gain <= 1e-12:
                return node
            mask = X[idx, j] <= threshold
            tree.feature[node] = j
            tree.threshold[node] = threshold
            left = grow(idx[mask], depth + 1)
            right = grow(idx[~mask], depth + 1)
            tree.left[node] = left
            tree.right[node] = right
            return node

        grow(np.arange(X.shape[0]), 0)
        tree.finalize()
        self._tree = tree

    def _predict(self, X):
        tree = self._tree
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = tree.feature[nodes] >= 0
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            go_left = (
                X[idx, tree.feature[cur]] <= tree.threshold[cur]
            )
            nodes[idx] = np.where(
                go_left, tree.left[cur], tree.right[cur]
            )
            active[idx] = tree.feature[nodes[idx]] >= 0
        return tree.value[nodes]

    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return int(self._tree.value.size)
