"""k-nearest-neighbours regression (brute force, Euclidean)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


class KNeighborsRegressor(Regressor):
    """Mean of the ``k`` nearest training targets."""

    def __init__(self, n_neighbors: int = 5):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors

    def _fit(self, X, y):
        self._X = X
        self._y = y

    def _predict(self, X):
        k = min(self.n_neighbors, self._X.shape[0])
        out = np.empty(X.shape[0])
        # Chunked distance computation keeps memory bounded.
        chunk = max(1, 2_000_000 // max(1, self._X.shape[0]))
        for start in range(0, X.shape[0], chunk):
            block = X[start : start + chunk]
            d2 = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self._X.T
                + np.sum(self._X**2, axis=1)[None, :]
            )
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            out[start : start + chunk] = self._y[nearest].mean(axis=1)
        return out
