"""Boosted tree ensembles: gradient boosting (LS loss) and AdaBoost.R2."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.trees import DecisionTreeRegressor
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


class GradientBoostingRegressor(Regressor):
    """Least-squares gradient boosting with shallow CART trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        rng: RngLike = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.rng = rng

    def _fit(self, X, y):
        self._init_value = float(y.mean())
        residual = y - self._init_value
        rngs = spawn_rngs(self.rng, self.n_estimators)
        self._trees = []
        for tree_rng in rngs:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, rng=tree_rng
            )
            tree.fit(X, residual)
            update = tree.predict(X)
            residual = residual - self.learning_rate * update
            self._trees.append(tree)

    def _predict(self, X):
        out = np.full(X.shape[0], self._init_value)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out


class AdaBoostRegressor(Regressor):
    """AdaBoost.R2 (Drucker 1997) with CART base learners.

    Prediction is the weighted *median* of the base learners, as in the
    original algorithm and sklearn.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 3,
        rng: RngLike = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.rng = rng

    def _fit(self, X, y):
        n = X.shape[0]
        gen = ensure_rng(self.rng)
        weights = np.full(n, 1.0 / n)
        self._trees = []
        self._betas = []
        for _ in range(self.n_estimators):
            idx = gen.choice(n, size=n, replace=True, p=weights)
            tree = DecisionTreeRegressor(max_depth=self.max_depth, rng=gen)
            tree.fit(X[idx], y[idx])
            pred = tree.predict(X)
            abs_err = np.abs(pred - y)
            max_err = abs_err.max()
            if max_err <= 0:
                self._trees.append(tree)
                self._betas.append(1e-12)
                break
            loss = abs_err / max_err  # linear loss
            avg_loss = float(loss @ weights)
            if avg_loss >= 0.5:
                if not self._trees:
                    self._trees.append(tree)
                    self._betas.append(1.0)
                break
            beta = avg_loss / (1.0 - avg_loss)
            weights = weights * beta ** (1.0 - loss)
            weights /= weights.sum()
            self._trees.append(tree)
            self._betas.append(beta)

    def _predict(self, X):
        preds = np.stack([t.predict(X) for t in self._trees], axis=1)
        log_w = np.log(1.0 / np.maximum(np.asarray(self._betas), 1e-12))
        if not np.any(log_w > 0):
            log_w = np.ones_like(log_w)
        order = np.argsort(preds, axis=1)
        sorted_preds = np.take_along_axis(preds, order, axis=1)
        sorted_w = log_w[order]
        cum = np.cumsum(sorted_w, axis=1)
        half = 0.5 * cum[:, -1:]
        pick = np.argmax(cum >= half, axis=1)
        return sorted_preds[np.arange(X.shape[0]), pick]
