"""The paper's naive estimation models (§4.1.2).

The naive area model predicts the accelerator area as the *sum* of the
component areas; the naive QoR model predicts SSIM as the *negative sum*
of the component WMEDs.  Both reduce to a signed sum over a subset of
feature columns — no learning involved (``fit`` is a no-op that only
records feature count).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.base import Regressor


class NaiveAdditiveModel(Regressor):
    """Signed sum over selected feature columns.

    ``columns=None`` sums all features.  ``sign=-1`` yields the paper's
    naive SSIM model (higher cumulative error => lower predicted quality).
    """

    def __init__(
        self, columns: Optional[Sequence[int]] = None, sign: float = 1.0
    ):
        super().__init__()
        if sign not in (-1.0, 1.0, -1, 1):
            raise ValueError("sign must be +1 or -1")
        self.columns = None if columns is None else list(columns)
        self.sign = float(sign)

    def _fit(self, X, y):
        if self.columns is not None:
            bad = [c for c in self.columns if not 0 <= c < X.shape[1]]
            if bad:
                raise ValueError(f"column indices out of range: {bad}")

    def _predict(self, X):
        cols = X if self.columns is None else X[:, self.columns]
        return self.sign * cols.sum(axis=1)
