"""Supervised learning engines for QoR / hardware-cost estimation.

Re-implements, against plain numpy, the scikit-learn regressors the paper
benchmarks in Table 3 (random forest, decision tree, k-NN, Bayesian ridge,
partial least squares, lasso, AdaBoost, least-angle regression, gradient
boosting, MLP, Gaussian process, kernel ridge, SGD) plus the two naive
additive models.  Model quality is judged by *fidelity* — pairwise order
agreement — per the paper's §2.3.
"""

from repro.ml.base import Regressor
from repro.ml.fidelity import fidelity, fidelity_matrix
from repro.ml.metrics import mean_absolute_error, r2_score, rmse
from repro.ml.model_selection import train_test_split
from repro.ml.linear import (
    BayesianRidge,
    LarsRegressor,
    LassoRegressor,
    LinearRegression,
    SGDRegressor,
)
from repro.ml.pls import PLSRegression
from repro.ml.trees import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.boosting import AdaBoostRegressor, GradientBoostingRegressor
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.kernel_ridge import KernelRidgeRegressor
from repro.ml.naive import NaiveAdditiveModel
from repro.ml.registry import default_engines, make_engine

__all__ = [
    "Regressor",
    "fidelity",
    "fidelity_matrix",
    "mean_absolute_error",
    "r2_score",
    "rmse",
    "train_test_split",
    "LinearRegression",
    "LassoRegressor",
    "BayesianRidge",
    "LarsRegressor",
    "SGDRegressor",
    "PLSRegression",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AdaBoostRegressor",
    "GradientBoostingRegressor",
    "KNeighborsRegressor",
    "MLPRegressor",
    "GaussianProcessRegressor",
    "KernelRidgeRegressor",
    "NaiveAdditiveModel",
    "default_engines",
    "make_engine",
]
