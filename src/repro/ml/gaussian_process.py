"""Gaussian-process regression with an RBF kernel.

Like sklearn's default configuration, the length scale is fixed (no
marginal-likelihood optimisation) and the nugget ``alpha`` is tiny, so the
posterior mean interpolates the training data — 100 % train fidelity and
poor test fidelity on this problem, matching the paper's Table 3 row.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


def _rbf(A: np.ndarray, B: np.ndarray, length_scale: float) -> np.ndarray:
    d2 = (
        np.sum(A**2, axis=1)[:, None]
        - 2.0 * A @ B.T
        + np.sum(B**2, axis=1)[None, :]
    )
    return np.exp(-0.5 * np.maximum(d2, 0.0) / length_scale**2)


class GaussianProcessRegressor(Regressor):
    """GP posterior mean with an RBF kernel.

    ``length_scale="median"`` (default) stands in for sklearn's
    marginal-likelihood optimisation: the scale is set to a fraction of
    the median pairwise training distance, which lets the posterior
    interpolate the training set (100 % train fidelity) while
    generalising only weakly — the paper's overfitting pattern.
    """

    def __init__(self, length_scale="median", alpha: float = 1e-10):
        super().__init__()
        if length_scale != "median" and length_scale <= 0:
            raise ValueError("length_scale must be positive or 'median'")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.length_scale = length_scale
        self.alpha = alpha

    def _resolve_scale(self, X: np.ndarray) -> float:
        if self.length_scale != "median":
            return float(self.length_scale)
        n = X.shape[0]
        take = min(n, 256)
        sub = X[:: max(1, n // take)][:take]
        d2 = (
            np.sum(sub**2, axis=1)[:, None]
            - 2.0 * sub @ sub.T
            + np.sum(sub**2, axis=1)[None, :]
        )
        dist = np.sqrt(np.maximum(d2[np.triu_indices_from(d2, k=1)], 0.0))
        median = float(np.median(dist))
        return max(median / 4.0, 1e-6)

    def _fit(self, X, y):
        self._X = X
        self._y_mean = float(y.mean())
        self._scale = self._resolve_scale(X)
        K = _rbf(X, X, self._scale)
        K[np.diag_indices_from(K)] += max(self.alpha, 1e-10)
        try:
            L = np.linalg.cholesky(K)
            self._alpha_vec = np.linalg.solve(
                L.T, np.linalg.solve(L, y - self._y_mean)
            )
        except np.linalg.LinAlgError:
            self._alpha_vec = np.linalg.lstsq(
                K, y - self._y_mean, rcond=None
            )[0]

    def _predict(self, X):
        Ks = _rbf(X, self._X, self._scale)
        return Ks @ self._alpha_vec + self._y_mean
