"""Scalar regression quality metrics."""

from __future__ import annotations

import numpy as np


def _pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute deviation."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 = perfect, can be negative)."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
